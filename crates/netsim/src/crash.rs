//! Deterministic crash-point injection for the *cloud process* itself.
//!
//! [`fault`](crate::fault) kills messages; this module kills the machine.
//! A [`CrashPlan`] names one crash point — "die after N applied records",
//! "tear the N-th WAL append at byte M", or "journal the N-th record fully
//! but die before applying it" — and a [`CrashInjector`] hands the cloud's
//! durability layer a verdict at every write. Like [`FaultPlan`]
//! (crate::fault::FaultPlan), a seeded constructor derives the point from
//! one SplitMix64 stream, so a `(seed, workload)` pair replays the exact
//! same crash. After the point fires the injector latches into the
//! *crashed* state: the process is dead until a restart harness rebuilds
//! the engine from disk and the injector is cleared or replaced.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::fault::SplitMix64;

/// Where in the write path the cloud dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Refuse the `n`-th write (0-based) before anything reaches the WAL:
    /// the first `n` writes journal and apply, then the machine vanishes.
    BeforeAppend(u64),
    /// Tear the `n`-th WAL append: only the first `byte` bytes of the
    /// frame reach disk, then the machine vanishes. Recovery must treat
    /// the partial frame as a torn tail.
    MidAppend {
        /// Index (0-based) of the journaled write to tear.
        record: u64,
        /// How many bytes of the frame survive (clamped to `len - 1`).
        byte: u64,
    },
    /// The `n`-th append reaches disk in full, but the machine dies
    /// before the mutation is applied — recovery must roll it forward.
    AfterAppend(u64),
}

/// A single planned crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    point: CrashPoint,
}

impl CrashPlan {
    /// A plan that crashes at exactly `point`.
    pub fn at(point: CrashPoint) -> Self {
        CrashPlan { point }
    }

    /// Derives a crash point from `seed`, landing on one of the first
    /// `horizon` writes (like `FaultPlan`, all randomness comes from one
    /// SplitMix64 stream; equal seeds give equal plans).
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC4A5_11F0_57A7_E5EE);
        let record = rng.next_u64() % horizon.max(1);
        let mode = rng.next_u64() % 3;
        let byte = rng.next_u64() % 64;
        let point = match mode {
            0 => CrashPoint::BeforeAppend(record),
            1 => CrashPoint::MidAppend { record, byte },
            _ => CrashPoint::AfterAppend(record),
        };
        CrashPlan { point }
    }

    /// The planned crash point.
    pub fn point(&self) -> CrashPoint {
        self.point
    }
}

/// What the durability layer must do with the write it is about to journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashVerdict {
    /// Journal and apply normally.
    Proceed,
    /// The machine is already gone: journal nothing, apply nothing.
    Refuse,
    /// Write only the first `n` bytes of the frame, then die.
    Torn(usize),
    /// Write the whole frame, then die before applying.
    DieAfterAppend,
}

/// Shared, thread-safe crash state consulted by the cloud's write path.
#[derive(Debug)]
pub struct CrashInjector {
    plan: CrashPlan,
    writes: AtomicU64,
    crashed: AtomicBool,
}

impl CrashInjector {
    /// A live injector armed with `plan`.
    pub fn new(plan: CrashPlan) -> Self {
        CrashInjector { plan, writes: AtomicU64::new(0), crashed: AtomicBool::new(false) }
    }

    /// Whether the crash point has fired (the process is "down").
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Number of writes that were allowed to journal in full.
    pub fn writes_allowed(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Consulted once per journaled write with the frame's on-disk length;
    /// counts the write and decides whether the machine survives it.
    pub fn on_append(&self, frame_len: usize) -> CrashVerdict {
        if self.crashed() {
            return CrashVerdict::Refuse;
        }
        let n = self.writes.load(Ordering::SeqCst);
        let verdict = match self.plan.point {
            CrashPoint::BeforeAppend(r) if n >= r => CrashVerdict::Refuse,
            CrashPoint::MidAppend { record, byte } if n == record => {
                CrashVerdict::Torn((byte as usize).min(frame_len.saturating_sub(1)))
            }
            CrashPoint::AfterAppend(r) if n == r => CrashVerdict::DieAfterAppend,
            _ => CrashVerdict::Proceed,
        };
        match verdict {
            CrashVerdict::Proceed => {
                self.writes.fetch_add(1, Ordering::SeqCst);
            }
            CrashVerdict::DieAfterAppend => {
                self.writes.fetch_add(1, Ordering::SeqCst);
                self.crashed.store(true, Ordering::SeqCst);
            }
            CrashVerdict::Refuse | CrashVerdict::Torn(_) => {
                self.crashed.store(true, Ordering::SeqCst);
            }
        }
        verdict
    }
}

/// A cluster-membership event: one node leaves or returns.
///
/// Where [`CrashPoint`] kills *the* cloud process, a [`NodeEvent`] kills one
/// node of a replicated cluster — the rest keep serving, and a rejoining
/// node is expected to resync from its peers' WALs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeEvent {
    /// Node `idx` vanishes: its in-memory engine is dropped, its durable
    /// state stays on disk.
    Kill(usize),
    /// Node `idx` restarts from its own disk and resyncs from live peers.
    Rejoin(usize),
    /// A brand-new node joins the ring (the cluster assigns its index);
    /// vnode ownership is recomputed and the newcomer pulls the key
    /// ranges it gained before serving quorums.
    AddNode,
    /// Node `idx` is decommissioned: surviving replicas pull the ranges
    /// they inherit, then the node leaves the ring for good. The cluster
    /// refuses the event if it would drop membership below the
    /// replication factor.
    RemoveNode(usize),
}

/// A deterministic schedule of [`NodeEvent`]s keyed by operation count.
///
/// The cluster ticks the companion [`NodeFailureInjector`] once per handled
/// request; every event whose op index has been reached fires exactly once,
/// in schedule order. Like [`CrashPlan`], a seeded constructor derives the
/// whole schedule from one SplitMix64 stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFailurePlan {
    events: Vec<(u64, NodeEvent)>,
}

impl NodeFailurePlan {
    /// A plan firing exactly the given `(op_index, event)` pairs. The list
    /// is sorted by op index (stable, so same-index events keep their
    /// relative order).
    pub fn at(mut events: Vec<(u64, NodeEvent)>) -> Self {
        events.sort_by_key(|(op, _)| *op);
        NodeFailurePlan { events }
    }

    /// An empty plan: the cluster never loses a node.
    pub fn none() -> Self {
        NodeFailurePlan { events: Vec::new() }
    }

    /// Derives `cycles` kill/rejoin pairs over `nodes` nodes from `seed`,
    /// landing on the first `horizon` operations. Each cycle kills one
    /// node and rejoins it a seeded number of ops later; equal seeds give
    /// equal plans.
    pub fn seeded(seed: u64, nodes: usize, cycles: usize, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x0DE7_EC7A_B1E0_FA11);
        let nodes = nodes.max(1) as u64;
        let horizon = horizon.max(2);
        let mut events = Vec::with_capacity(cycles * 2);
        for _ in 0..cycles {
            let victim = (rng.next_u64() % nodes) as usize;
            let kill_at = rng.next_u64() % (horizon - 1);
            let down_for = 1 + rng.next_u64() % (horizon - kill_at).max(1);
            events.push((kill_at, NodeEvent::Kill(victim)));
            events.push((kill_at + down_for, NodeEvent::Rejoin(victim)));
        }
        NodeFailurePlan::at(events)
    }

    /// Derives a full membership-churn storm from `seed`: kill/rejoin
    /// cycles interleaved with ring-membership changes (add a node,
    /// remove a node) over the first `horizon` operations. `cycles`
    /// counts scheduled disturbances; roughly one in three is a
    /// membership change, the rest are kill/rejoin pairs. Victim indices
    /// are drawn from the *initial* `nodes` — the cluster maps a
    /// `RemoveNode` of an already-removed or essential node to a no-op,
    /// so any seed yields a valid storm. Equal seeds give equal plans.
    pub fn seeded_churn(seed: u64, nodes: usize, cycles: usize, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xE1A5_71CC_1B57_E111);
        let nodes = nodes.max(1) as u64;
        let horizon = horizon.max(2);
        let mut events = Vec::with_capacity(cycles * 2);
        for _ in 0..cycles {
            let at = rng.next_u64() % (horizon - 1);
            match rng.next_u64() % 6 {
                0 => events.push((at, NodeEvent::AddNode)),
                1 => {
                    let victim = (rng.next_u64() % nodes) as usize;
                    events.push((at, NodeEvent::RemoveNode(victim)));
                }
                _ => {
                    let victim = (rng.next_u64() % nodes) as usize;
                    let down_for = 1 + rng.next_u64() % (horizon - at).max(1);
                    events.push((at, NodeEvent::Kill(victim)));
                    events.push((at + down_for, NodeEvent::Rejoin(victim)));
                }
            }
        }
        NodeFailurePlan::at(events)
    }

    /// The scheduled events, sorted by op index.
    pub fn events(&self) -> &[(u64, NodeEvent)] {
        &self.events
    }
}

/// Shared, thread-safe membership-event source the cluster ticks per op.
///
/// `on_op` counts the operation and returns every not-yet-fired event whose
/// op index has been reached, in schedule order — the caller executes the
/// kills/rejoins. Firing is exactly-once even under concurrent ticks.
#[derive(Debug)]
pub struct NodeFailureInjector {
    plan: NodeFailurePlan,
    ops: AtomicU64,
    cursor: AtomicU64,
}

impl NodeFailureInjector {
    /// A live injector armed with `plan`.
    pub fn new(plan: NodeFailurePlan) -> Self {
        NodeFailureInjector { plan, ops: AtomicU64::new(0), cursor: AtomicU64::new(0) }
    }

    /// Counts one cluster operation and drains the events it triggers.
    pub fn on_op(&self) -> Vec<NodeEvent> {
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        let mut fired = Vec::new();
        loop {
            let cur = self.cursor.load(Ordering::SeqCst) as usize;
            match self.plan.events.get(cur) {
                Some(&(op, event)) if op <= n => {
                    // Claim this event; lose the race → another thread fires it.
                    if self
                        .cursor
                        .compare_exchange(cur as u64, cur as u64 + 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        fired.push(event);
                    }
                }
                _ => break,
            }
        }
        fired
    }

    /// Operations ticked so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether every scheduled event has fired.
    pub fn exhausted(&self) -> bool {
        self.cursor.load(Ordering::SeqCst) as usize >= self.plan.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn before_append_counts_then_refuses() {
        let inj = CrashInjector::new(CrashPlan::at(CrashPoint::BeforeAppend(2)));
        assert_eq!(inj.on_append(10), CrashVerdict::Proceed);
        assert_eq!(inj.on_append(10), CrashVerdict::Proceed);
        assert_eq!(inj.on_append(10), CrashVerdict::Refuse);
        assert!(inj.crashed());
        assert_eq!(inj.on_append(10), CrashVerdict::Refuse, "stays dead");
        assert_eq!(inj.writes_allowed(), 2);
    }

    #[test]
    fn mid_append_tears_the_frame() {
        let inj = CrashInjector::new(CrashPlan::at(CrashPoint::MidAppend { record: 1, byte: 7 }));
        assert_eq!(inj.on_append(20), CrashVerdict::Proceed);
        assert_eq!(inj.on_append(20), CrashVerdict::Torn(7));
        assert!(inj.crashed());
    }

    #[test]
    fn torn_byte_clamped_below_frame_len() {
        let inj = CrashInjector::new(CrashPlan::at(CrashPoint::MidAppend { record: 0, byte: 999 }));
        assert_eq!(inj.on_append(12), CrashVerdict::Torn(11), "never a full frame");
    }

    #[test]
    fn after_append_dies_post_write() {
        let inj = CrashInjector::new(CrashPlan::at(CrashPoint::AfterAppend(0)));
        assert_eq!(inj.on_append(16), CrashVerdict::DieAfterAppend);
        assert!(inj.crashed());
        assert_eq!(inj.writes_allowed(), 1, "the frame did reach disk");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_varied() {
        let a = CrashPlan::seeded(42, 100);
        let b = CrashPlan::seeded(42, 100);
        assert_eq!(a, b);
        let modes: std::collections::HashSet<u8> = (0..64)
            .map(|s| match CrashPlan::seeded(s, 100).point() {
                CrashPoint::BeforeAppend(_) => 0,
                CrashPoint::MidAppend { .. } => 1,
                CrashPoint::AfterAppend(_) => 2,
            })
            .collect();
        assert_eq!(modes.len(), 3, "seeds cover all crash modes");
    }

    #[test]
    fn node_events_fire_once_in_order() {
        let plan = NodeFailurePlan::at(vec![(3, NodeEvent::Rejoin(1)), (1, NodeEvent::Kill(1))]);
        assert_eq!(plan.events(), &[(1, NodeEvent::Kill(1)), (3, NodeEvent::Rejoin(1))]);
        let inj = NodeFailureInjector::new(plan);
        assert!(inj.on_op().is_empty(), "op 0: nothing scheduled yet");
        assert_eq!(inj.on_op(), vec![NodeEvent::Kill(1)], "op 1: kill fires");
        assert!(inj.on_op().is_empty());
        assert_eq!(inj.on_op(), vec![NodeEvent::Rejoin(1)]);
        assert!(inj.exhausted());
        assert!(inj.on_op().is_empty(), "events fire exactly once");
    }

    #[test]
    fn node_events_catch_up_in_one_tick() {
        // Two events scheduled at op 0 both drain on the first tick.
        let plan = NodeFailurePlan::at(vec![(0, NodeEvent::Kill(2)), (0, NodeEvent::Rejoin(2))]);
        let inj = NodeFailureInjector::new(plan);
        assert_eq!(inj.on_op(), vec![NodeEvent::Kill(2), NodeEvent::Rejoin(2)]);
    }

    #[test]
    fn seeded_churn_plans_mix_membership_and_failures() {
        let a = NodeFailurePlan::seeded_churn(7, 5, 24, 200);
        assert_eq!(a, NodeFailurePlan::seeded_churn(7, 5, 24, 200), "deterministic");
        let mut kinds = std::collections::HashSet::new();
        for (_, e) in a.events() {
            kinds.insert(match e {
                NodeEvent::Kill(_) => 0u8,
                NodeEvent::Rejoin(_) => 1,
                NodeEvent::AddNode => 2,
                NodeEvent::RemoveNode(_) => 3,
            });
        }
        assert_eq!(kinds.len(), 4, "24 cycles cover all event kinds");
        let kills = a.events().iter().filter(|(_, e)| matches!(e, NodeEvent::Kill(_))).count();
        let rejoins = a.events().iter().filter(|(_, e)| matches!(e, NodeEvent::Rejoin(_))).count();
        assert_eq!(kills, rejoins, "every kill is paired with a rejoin");
    }

    #[test]
    fn seeded_node_plans_are_deterministic_and_paired() {
        let a = NodeFailurePlan::seeded(9, 5, 3, 100);
        assert_eq!(a, NodeFailurePlan::seeded(9, 5, 3, 100));
        assert_eq!(a.events().len(), 6, "3 cycles = 3 kills + 3 rejoins");
        let kills = a.events().iter().filter(|(_, e)| matches!(e, NodeEvent::Kill(_))).count();
        assert_eq!(kills, 3);
        for (op, _) in a.events() {
            assert!(*op <= 200, "events land near the horizon: {op}");
        }
    }
}
