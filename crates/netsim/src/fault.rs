//! Deterministic fault injection for the simulated channel.
//!
//! [`FaultyService`] wraps any [`CloudService`] and injects message loss,
//! transient remote failures, duplicate delivery, response corruption and
//! extra latency, per route, with configurable probabilities. All randomness
//! comes from one seeded [`SplitMix64`] stream and every call consumes a
//! fixed number of draws, so two runs with the same seed and workload inject
//! exactly the same faults — the property the resilience tests assert on.
//!
//! # Examples
//!
//! ```
//! use datablinder_netsim::prelude::*;
//!
//! let plan = FaultPlan::uniform(RouteFaults::none().with_drop(0.2));
//! let svc = FaultyService::new(
//!     |_: &str, p: &[u8]| -> Result<Vec<u8>, NetError> { Ok(p.to_vec()) },
//!     plan,
//!     42,
//! );
//! let ch = Channel::connect(svc, LatencyModel::instant());
//! let outcomes: Vec<bool> = (0..20).map(|_| ch.call("echo", b"x").is_ok()).collect();
//! assert!(outcomes.contains(&false), "some calls drop");
//! assert!(outcomes.contains(&true), "most calls survive");
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::{CloudService, NetError};

/// Sebastiano Vigna's SplitMix64 — tiny, seedable, and good enough for fault
/// dice. Implemented inline so `netsim` stays free of a `rand` dependency.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-route fault probabilities. All fields are independent probabilities in
/// `[0, 1]`; `delay_by` is the latency added when the delay die fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteFaults {
    /// P(message lost in transit) — surfaces as [`NetError::Timeout`]. Half
    /// the drops lose the request (the cloud never executes), half lose the
    /// response (the cloud *did* execute — the dangerous half for writes).
    pub drop: f64,
    /// P(transient remote failure before execution) — surfaces as
    /// [`NetError::Remote`].
    pub fail: f64,
    /// P(the network delivers the request twice) — the service executes
    /// twice, the caller sees the second response.
    pub duplicate: f64,
    /// P(response corrupted in transit and caught by framing) — surfaces as
    /// [`NetError::MalformedFrame`], which is safe to retry.
    pub corrupt: f64,
    /// P(response body replaced with well-framed garbage) — surfaces as an
    /// `Ok` full of junk the application must reject. Models a byzantine
    /// cloud rather than a lossy wire, so it is *not* retried away.
    pub garble: f64,
    /// P(extra latency added to the round trip).
    pub delay: f64,
    /// Latency added when the delay die fires.
    pub delay_by: Duration,
}

impl RouteFaults {
    /// No faults at all.
    pub fn none() -> Self {
        RouteFaults {
            drop: 0.0,
            fail: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            garble: 0.0,
            delay: 0.0,
            delay_by: Duration::ZERO,
        }
    }

    /// Sets the message-loss probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Sets the transient-remote-failure probability.
    pub fn with_fail(mut self, p: f64) -> Self {
        self.fail = p;
        self
    }

    /// Sets the duplicate-delivery probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Sets the detected-corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Sets the garbled-response (byzantine) probability.
    pub fn with_garble(mut self, p: f64) -> Self {
        self.garble = p;
        self
    }

    /// Sets the extra-latency probability and magnitude.
    pub fn with_delay(mut self, p: f64, by: Duration) -> Self {
        self.delay = p;
        self.delay_by = by;
        self
    }
}

impl Default for RouteFaults {
    fn default() -> Self {
        RouteFaults::none()
    }
}

/// Which faults apply to which routes.
///
/// Routes are matched by longest prefix among the registered overrides;
/// unmatched routes get the default. An empty plan injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    default: RouteFaults,
    overrides: Vec<(String, RouteFaults)>,
}

impl FaultPlan {
    /// No faults on any route.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The same faults on every route.
    pub fn uniform(faults: RouteFaults) -> Self {
        FaultPlan { default: faults, overrides: Vec::new() }
    }

    /// Adds a prefix-matched override, e.g. `"tactic/"` for all tactic
    /// traffic or `"doc/insert"` for one exact route.
    pub fn route(mut self, prefix: impl Into<String>, faults: RouteFaults) -> Self {
        self.overrides.push((prefix.into(), faults));
        self
    }

    /// The faults in effect for `route` (longest matching prefix wins).
    pub fn faults_for(&self, route: &str) -> RouteFaults {
        self.overrides
            .iter()
            .filter(|(prefix, _)| route.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|(_, faults)| *faults)
            .unwrap_or(self.default)
    }
}

/// Counters for faults actually injected (not probabilities — events).
#[derive(Debug, Default)]
pub struct FaultStats {
    drops: AtomicU64,
    failures: AtomicU64,
    duplicates: AtomicU64,
    corruptions: AtomicU64,
    garbles: AtomicU64,
    delays: AtomicU64,
}

impl FaultStats {
    /// Messages lost in transit.
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Injected transient remote failures.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Requests delivered (and executed) twice.
    pub fn duplicates(&self) -> u64 {
        self.duplicates.load(Ordering::Relaxed)
    }

    /// Responses corrupted detectably.
    pub fn corruptions(&self) -> u64 {
        self.corruptions.load(Ordering::Relaxed)
    }

    /// Responses replaced with well-framed garbage.
    pub fn garbles(&self) -> u64 {
        self.garbles.load(Ordering::Relaxed)
    }

    /// Round trips that got extra latency.
    pub fn delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }

    /// Point-in-time copy, for determinism comparisons.
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            drops: self.drops(),
            failures: self.failures(),
            duplicates: self.duplicates(),
            corruptions: self.corruptions(),
            garbles: self.garbles(),
            delays: self.delays(),
        }
    }
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// See [`FaultStats::drops`].
    pub drops: u64,
    /// See [`FaultStats::failures`].
    pub failures: u64,
    /// See [`FaultStats::duplicates`].
    pub duplicates: u64,
    /// See [`FaultStats::corruptions`].
    pub corruptions: u64,
    /// See [`FaultStats::garbles`].
    pub garbles: u64,
    /// See [`FaultStats::delays`].
    pub delays: u64,
}

/// A [`CloudService`] decorator that injects faults per a [`FaultPlan`].
///
/// Every `handle` call consumes exactly seven dice rolls from the seeded
/// stream regardless of which faults fire, so fault sequences depend only on
/// (seed, call order) — never on which earlier faults happened to trigger.
pub struct FaultyService<S> {
    inner: S,
    plan: FaultPlan,
    rng: Mutex<SplitMix64>,
    stats: FaultStats,
    injected_nanos: AtomicU64,
}

impl<S: CloudService> FaultyService<S> {
    /// Wraps `inner`, injecting faults per `plan`, seeded with `seed`.
    pub fn new(inner: S, plan: FaultPlan, seed: u64) -> Self {
        FaultyService {
            inner,
            plan,
            rng: Mutex::new(SplitMix64::new(seed)),
            stats: FaultStats::default(),
            injected_nanos: AtomicU64::new(0),
        }
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S> std::fmt::Debug for FaultyService<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyService").field("plan", &self.plan).field("stats", &self.stats).finish()
    }
}

impl<S: CloudService> CloudService for FaultyService<S> {
    fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        // A traced envelope carries the real route inside; fault plans are
        // keyed on that inner route, so peek through the envelope (the
        // inner service still does the authoritative unwrap itself).
        let faults = if route == datablinder_obs::trace::TRACED_ROUTE {
            match datablinder_obs::trace::decode_traced(payload) {
                Ok((_, inner_route, _)) => self.plan.faults_for(inner_route),
                Err(_) => self.plan.faults_for(route),
            }
        } else {
            self.plan.faults_for(route)
        };

        // Draw every die up front so the stream position after this call is
        // independent of which faults fire.
        let (r_drop, r_drop_phase, r_fail, r_dup, r_corrupt, r_garble, r_delay) = {
            let mut rng = self.rng.lock();
            (
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
            )
        };

        if r_delay < faults.delay {
            self.stats.delays.fetch_add(1, Ordering::Relaxed);
            self.injected_nanos.fetch_add(faults.delay_by.as_nanos() as u64, Ordering::Relaxed);
        }

        let dropped = r_drop < faults.drop;
        if dropped && r_drop_phase < 0.5 {
            // Request lost before reaching the cloud: nothing executes.
            self.stats.drops.fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Timeout);
        }

        if r_fail < faults.fail {
            self.stats.failures.fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Remote("injected transient failure".into()));
        }

        let mut result = self.inner.handle(route, payload);
        if r_dup < faults.duplicate {
            // The network delivered the request twice. Both executions hit
            // the cloud state; the caller sees the second response.
            self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
            result = self.inner.handle(route, payload);
        }

        if dropped && r_drop_phase >= 0.5 {
            // Response lost on the way back: the cloud executed but the
            // gateway cannot know — the case idempotency tokens exist for.
            self.stats.drops.fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Timeout);
        }

        match result {
            Ok(body) => {
                if r_corrupt < faults.corrupt {
                    self.stats.corruptions.fetch_add(1, Ordering::Relaxed);
                    return Err(NetError::MalformedFrame);
                }
                if r_garble < faults.garble {
                    self.stats.garbles.fetch_add(1, Ordering::Relaxed);
                    return Ok(vec![0xFF; body.len().max(8)]);
                }
                Ok(body)
            }
            err => err,
        }
    }

    fn take_injected_delay(&self) -> Duration {
        // Drain our own injected latency plus anything a nested wrapper
        // accumulated.
        Duration::from_nanos(self.injected_nanos.swap(0, Ordering::Relaxed)) + self.inner.take_injected_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Channel, LatencyModel};

    fn echo(_: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        Ok(payload.to_vec())
    }

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mean: f64 = (0..1000).map(|_| a.next_f64()).sum::<f64>() / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} should be near 0.5");
    }

    #[test]
    fn plan_longest_prefix_wins() {
        let plan = FaultPlan::uniform(RouteFaults::none().with_drop(0.1))
            .route("tactic/", RouteFaults::none().with_drop(0.2))
            .route("tactic/mitra/", RouteFaults::none().with_drop(0.3));
        assert_eq!(plan.faults_for("doc/get").drop, 0.1);
        assert_eq!(plan.faults_for("tactic/ore/x:y/search").drop, 0.2);
        assert_eq!(plan.faults_for("tactic/mitra/x:y/insert").drop, 0.3);
    }

    #[test]
    fn fault_sequence_is_deterministic_per_seed() {
        let run = |seed: u64| -> (Vec<bool>, FaultStatsSnapshot) {
            let svc =
                FaultyService::new(echo, FaultPlan::uniform(RouteFaults::none().with_drop(0.3).with_fail(0.2)), seed);
            let outcomes = (0..100).map(|i| svc.handle("r", &[i as u8]).is_ok()).collect();
            (outcomes, svc.stats().snapshot())
        };
        let (o1, s1) = run(99);
        let (o2, s2) = run(99);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
        let (o3, _) = run(100);
        assert_ne!(o1, o3, "different seed, different faults");
    }

    #[test]
    fn duplicate_delivery_executes_twice() {
        let calls = AtomicU64::new(0);
        let svc = FaultyService::new(
            move |_: &str, p: &[u8]| -> Result<Vec<u8>, NetError> {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(vec![calls.load(Ordering::Relaxed) as u8, p[0]])
            },
            FaultPlan::uniform(RouteFaults::none().with_duplicate(1.0)),
            1,
        );
        // The caller gets the *second* execution's response.
        assert_eq!(svc.handle("r", &[9]).unwrap(), vec![2, 9]);
        assert_eq!(svc.stats().duplicates(), 1);
    }

    #[test]
    fn injected_delay_is_drained_and_charged() {
        let svc = FaultyService::new(
            echo,
            FaultPlan::uniform(RouteFaults::none().with_delay(1.0, Duration::from_millis(3))),
            1,
        );
        let ch = Channel::connect(svc, LatencyModel::instant());
        ch.call("r", b"x").unwrap();
        assert_eq!(ch.metrics().virtual_time(), Duration::from_millis(3));
        // Drained: the next call charges its own delay only.
        ch.call("r", b"x").unwrap();
        assert_eq!(ch.metrics().virtual_time(), Duration::from_millis(6));
    }

    #[test]
    fn delay_plus_deadline_times_out() {
        let svc = FaultyService::new(
            echo,
            FaultPlan::uniform(RouteFaults::none().with_delay(1.0, Duration::from_millis(10))),
            1,
        );
        let ch = Channel::connect(svc, LatencyModel::instant());
        let err = ch.call_with_deadline("r", b"x", Some(Duration::from_millis(2)));
        assert_eq!(err, Err(NetError::Timeout));
        assert_eq!(ch.metrics().virtual_time(), Duration::from_millis(2));
    }

    #[test]
    fn garble_returns_ok_garbage() {
        let svc = FaultyService::new(echo, FaultPlan::uniform(RouteFaults::none().with_garble(1.0)), 1);
        let out = svc.handle("r", b"hello").unwrap();
        assert_eq!(out, vec![0xFF; 8]);
        assert_eq!(svc.stats().garbles(), 1);
    }

    #[test]
    fn corrupt_returns_malformed_frame() {
        let svc = FaultyService::new(echo, FaultPlan::uniform(RouteFaults::none().with_corrupt(1.0)), 1);
        assert_eq!(svc.handle("r", b"hello"), Err(NetError::MalformedFrame));
        assert_eq!(svc.stats().corruptions(), 1);
    }

    #[test]
    fn fault_free_plan_is_transparent() {
        let svc = FaultyService::new(echo, FaultPlan::none(), 1);
        for i in 0..50u8 {
            assert_eq!(svc.handle("r", &[i]).unwrap(), vec![i]);
        }
        assert_eq!(svc.stats().snapshot(), FaultStatsSnapshot::default());
    }
}
