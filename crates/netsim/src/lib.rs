//! Simulated gateway↔cloud transport.
//!
//! The original evaluation ran the gateway on a private OpenStack cloud and
//! the cloud components on a public provider. We substitute (per DESIGN.md)
//! an in-process channel that:
//!
//! * serializes every request/response through a real wire framing
//!   (length-prefixed routes and payloads, via `bytes`), so serialization
//!   cost is paid like on a real network,
//! * meters round trips and bytes in both directions,
//! * charges a configurable [`LatencyModel`] to a virtual clock (and can
//!   optionally really sleep, for wall-clock-faithful runs).
//!
//! Because the paper's evaluation compares *relative* overheads
//! (S_A vs S_B vs S_C), a deterministic simulated channel preserves the
//! comparison while making results reproducible.
//!
//! # Examples
//!
//! ```
//! use datablinder_netsim::{Channel, CloudService, LatencyModel, NetError};
//!
//! struct Echo;
//! impl CloudService for Echo {
//!     fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
//!         assert_eq!(route, "echo");
//!         Ok(payload.to_vec())
//!     }
//! }
//!
//! let ch = Channel::connect(Echo, LatencyModel::lan());
//! assert_eq!(ch.call("echo", b"ping").unwrap(), b"ping");
//! assert_eq!(ch.metrics().round_trips(), 1);
//! ```

#![warn(missing_docs)]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Buf, BufMut, BytesMut};

pub mod crash;
pub mod fault;
pub mod prelude;
pub mod resilient;
pub mod tcp;
pub mod transport;

pub use crash::{CrashInjector, CrashPlan, CrashPoint, CrashVerdict, NodeEvent, NodeFailureInjector, NodeFailurePlan};
pub use fault::{FaultPlan, FaultStats, FaultStatsSnapshot, FaultyService, RouteFaults};
pub use resilient::{
    breaker_gauge, BreakerConfig, BreakerState, CircuitBreaker, ResilienceConfig, ResilientChannel, RetryPolicy,
};
pub use tcp::{CloudServer, FrameDecoder, FrameError, ServerConfig, TcpChannel, TcpConfig};
pub use transport::Transport;

/// Errors crossing the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No handler for the route.
    UnknownRoute(String),
    /// The remote handler failed; the message crossed the wire.
    Remote(String),
    /// A frame could not be decoded.
    MalformedFrame,
    /// The request or response was lost, or the response missed the caller's
    /// deadline. The caller cannot tell whether the remote side executed.
    Timeout,
    /// The circuit breaker is open; the call was failed fast without
    /// touching the network.
    CircuitOpen,
    /// Too few replicas answered to satisfy the requested quorum. Unlike
    /// [`NetError::Timeout`], the cluster *did* respond — it simply could
    /// not gather enough durable acks. Retryable: replicas may rejoin.
    Unavailable(String),
    /// The connection to the remote side dropped (dial failure, reset, or
    /// close mid-conversation). Like [`NetError::Timeout`], the caller
    /// cannot tell whether the remote side executed — retries must ride
    /// the idempotency envelope. Retryable: the next attempt reconnects.
    Disconnected(String),
    /// A frame exceeded the configured size limit; the offending side
    /// closed the connection rather than allocate unboundedly. Not
    /// retryable — the same request would be oversized again.
    FrameTooLarge(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownRoute(r) => write!(f, "unknown route: {r}"),
            NetError::Remote(e) => write!(f, "remote error: {e}"),
            NetError::MalformedFrame => write!(f, "malformed frame"),
            NetError::Timeout => write!(f, "timed out"),
            NetError::CircuitOpen => write!(f, "circuit breaker open"),
            NetError::Unavailable(m) => write!(f, "quorum unavailable: {m}"),
            NetError::Disconnected(m) => write!(f, "disconnected: {m}"),
            NetError::FrameTooLarge(m) => write!(f, "frame too large: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

/// The cloud-side request handler.
pub trait CloudService: Send + Sync {
    /// Handles one request; the returned bytes travel back to the gateway.
    ///
    /// # Errors
    ///
    /// Any [`NetError`]; [`NetError::Remote`] for application failures.
    fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError>;

    /// Drains latency injected by fault wrappers during the last `handle`
    /// call, to be charged to the channel's clock on top of the model cost.
    /// Plain services have none.
    fn take_injected_delay(&self) -> Duration {
        Duration::ZERO
    }
}

impl<F> CloudService for F
where
    F: Fn(&str, &[u8]) -> Result<Vec<u8>, NetError> + Send + Sync,
{
    fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self(route, payload)
    }
}

/// Latency and bandwidth model charged per round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed round-trip time in microseconds.
    pub rtt_micros: u64,
    /// Per-byte cost in nanoseconds (inverse bandwidth), both directions.
    pub per_byte_nanos: u64,
    /// Whether `call` really sleeps (wall-clock mode) or only charges the
    /// virtual clock (fast deterministic mode, the default).
    pub real_sleep: bool,
}

impl LatencyModel {
    /// Zero-cost channel (pure function-call dispatch).
    pub fn instant() -> Self {
        LatencyModel { rtt_micros: 0, per_byte_nanos: 0, real_sleep: false }
    }

    /// Data-center LAN: 200 µs RTT, ~10 Gbit/s.
    pub fn lan() -> Self {
        LatencyModel { rtt_micros: 200, per_byte_nanos: 1, real_sleep: false }
    }

    /// Gateway to a nearby public-cloud region: 2 ms RTT, ~2 Gbit/s — the
    /// shape of the paper's OpenStack-to-public-cloud deployment
    /// (private datacenter to an in-country provider).
    pub fn metro() -> Self {
        LatencyModel { rtt_micros: 2_000, per_byte_nanos: 4, real_sleep: false }
    }

    /// Long-haul WAN: 10 ms RTT, ~1 Gbit/s.
    pub fn wan() -> Self {
        LatencyModel { rtt_micros: 10_000, per_byte_nanos: 8, real_sleep: false }
    }

    fn cost(&self, bytes: usize) -> Duration {
        Duration::from_micros(self.rtt_micros) + Duration::from_nanos(self.per_byte_nanos * bytes as u64)
    }
}

/// Traffic counters for one channel.
#[derive(Debug, Default)]
pub struct ChannelMetrics {
    round_trips: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    virtual_nanos: AtomicU64,
    attempts: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_half_opens: AtomicU64,
}

impl ChannelMetrics {
    /// Completed request/response pairs.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Bytes sent gateway → cloud (framed size).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes received cloud → gateway (framed size).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Total simulated network time charged.
    pub fn virtual_time(&self) -> Duration {
        Duration::from_nanos(self.virtual_nanos.load(Ordering::Relaxed))
    }

    /// Calls issued through a [`ResilientChannel`], including retries and
    /// attempts that never completed (dropped, timed out, breaker-rejected).
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Attempts that were re-issues of an earlier failed attempt.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Calls that ended in [`NetError::Timeout`] (lost in transit or past
    /// their deadline).
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Times the circuit breaker tripped closed/half-open → open.
    pub fn breaker_opens(&self) -> u64 {
        self.breaker_opens.load(Ordering::Relaxed)
    }

    /// Times the circuit breaker admitted a half-open probe after cooldown.
    pub fn breaker_half_opens(&self) -> u64 {
        self.breaker_half_opens.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of all counters, e.g. for determinism checks.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            round_trips: self.round_trips(),
            bytes_sent: self.bytes_sent(),
            bytes_received: self.bytes_received(),
            virtual_nanos: self.virtual_nanos.load(Ordering::Relaxed),
            attempts: self.attempts(),
            retries: self.retries(),
            timeouts: self.timeouts(),
            breaker_opens: self.breaker_opens(),
            breaker_half_opens: self.breaker_half_opens(),
        }
    }

    /// Resets all counters.
    pub fn reset(&self) {
        self.round_trips.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.virtual_nanos.store(0, Ordering::Relaxed);
        self.attempts.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.breaker_opens.store(0, Ordering::Relaxed);
        self.breaker_half_opens.store(0, Ordering::Relaxed);
    }

    pub(crate) fn record_attempt(&self) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_breaker_open(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_breaker_half_open(&self) {
        self.breaker_half_opens.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`ChannelMetrics`].
///
/// Two runs of the same seeded workload must produce equal snapshots; the
/// resilience tests compare them with `==`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`ChannelMetrics::round_trips`].
    pub round_trips: u64,
    /// See [`ChannelMetrics::bytes_sent`].
    pub bytes_sent: u64,
    /// See [`ChannelMetrics::bytes_received`].
    pub bytes_received: u64,
    /// Simulated network time charged, in nanoseconds.
    pub virtual_nanos: u64,
    /// See [`ChannelMetrics::attempts`].
    pub attempts: u64,
    /// See [`ChannelMetrics::retries`].
    pub retries: u64,
    /// See [`ChannelMetrics::timeouts`].
    pub timeouts: u64,
    /// See [`ChannelMetrics::breaker_opens`].
    pub breaker_opens: u64,
    /// See [`ChannelMetrics::breaker_half_opens`].
    pub breaker_half_opens: u64,
}

/// A gateway-side handle to a cloud service. Cloning shares the service,
/// metrics and model.
#[derive(Clone)]
pub struct Channel {
    service: Arc<dyn CloudService>,
    model: LatencyModel,
    metrics: Arc<ChannelMetrics>,
}

impl Channel {
    /// Connects to `service` with the given latency model.
    pub fn connect<S: CloudService + 'static>(service: S, model: LatencyModel) -> Self {
        Channel::from_arc(Arc::new(service), model)
    }

    /// Connects to an already-shared service — keep the other handle to
    /// inspect fault stats or cloud state after the channel takes ownership.
    pub fn from_arc(service: Arc<dyn CloudService>, model: LatencyModel) -> Self {
        Channel { service, model, metrics: Arc::new(ChannelMetrics::default()) }
    }

    /// Performs one round trip: frames the request, "transmits" both ways,
    /// charges latency, decodes the response.
    ///
    /// # Errors
    ///
    /// Propagates handler errors and frame decoding failures.
    pub fn call(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.call_with_deadline(route, payload, None)
    }

    /// Like [`Channel::call`] but gives up once the round trip would exceed
    /// `deadline` of simulated time.
    ///
    /// Two timeout shapes exist: the service layer (a fault wrapper) may lose
    /// the message outright and report [`NetError::Timeout`], in which case
    /// the caller waits out its full deadline; or the response arrives but
    /// the model cost plus injected delay exceeds the deadline, in which case
    /// the bytes crossed (and count as a round trip) yet the caller has
    /// already given up. Either way only `deadline` — never the full cost —
    /// is charged to the clock.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] on a lost message or missed deadline, plus
    /// everything [`Channel::call`] returns.
    pub fn call_with_deadline(
        &self,
        route: &str,
        payload: &[u8],
        deadline: Option<Duration>,
    ) -> Result<Vec<u8>, NetError> {
        let frame = encode_request(route, payload);
        self.metrics.bytes_sent.fetch_add(frame.len() as u64, Ordering::Relaxed);

        // The wire: decode on the "cloud side" from the serialized frame.
        let (decoded_route, decoded_payload) = decode_request(&frame)?;
        let result = self.service.handle(&decoded_route, &decoded_payload);
        let injected = self.service.take_injected_delay();

        if matches!(result, Err(NetError::Timeout)) {
            // Lost in transit: no response bytes, no round trip. The caller
            // waits out its deadline (or one bare send cost when unbounded).
            let wait = deadline.unwrap_or_else(|| self.model.cost(frame.len())) + injected;
            self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            self.charge(wait);
            return Err(NetError::Timeout);
        }

        let response = encode_response(&result);
        self.metrics.bytes_received.fetch_add(response.len() as u64, Ordering::Relaxed);
        self.metrics.round_trips.fetch_add(1, Ordering::Relaxed);

        let cost = self.model.cost(frame.len() + response.len()) + injected;
        if let Some(limit) = deadline {
            if cost > limit {
                // The response exists — the cloud did the work — but it
                // arrived after the caller stopped listening.
                self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                self.charge(limit);
                return Err(NetError::Timeout);
            }
        }
        self.charge(cost);

        decode_response(&response)
    }

    /// Advances the channel clock by `delta` without any traffic. Retry
    /// backoff pauses and test-driven cooldown waits go through here.
    pub fn advance(&self, delta: Duration) {
        self.charge(delta);
    }

    fn charge(&self, cost: Duration) {
        self.metrics.virtual_nanos.fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
        if self.model.real_sleep && !cost.is_zero() {
            std::thread::sleep(cost);
        }
    }

    /// Traffic counters.
    pub fn metrics(&self) -> &ChannelMetrics {
        &self.metrics
    }

    /// Shared handle to the traffic counters (e.g. to keep after the channel
    /// moves into an engine).
    pub fn metrics_handle(&self) -> Arc<ChannelMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The configured latency model.
    pub fn model(&self) -> LatencyModel {
        self.model
    }
}

impl std::fmt::Debug for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel").field("model", &self.model).field("round_trips", &self.metrics.round_trips()).finish()
    }
}

/// Encodes one request body: `route_len: u32 | route | payload_len: u32 |
/// payload` (big-endian lengths). This is the byte layout every transport
/// puts on its wire — the simulated [`Channel`] and the TCP frames of
/// [`crate::tcp`] carry identical request bytes, which is what makes the
/// differential transport suite's byte-for-byte comparison meaningful.
pub fn encode_request(route: &str, payload: &[u8]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(8 + route.len() + payload.len());
    buf.put_u32(route.len() as u32);
    buf.put_slice(route.as_bytes());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    buf.to_vec()
}

/// Decodes an [`encode_request`] body back into `(route, payload)`.
///
/// # Errors
///
/// [`NetError::MalformedFrame`] on truncation or non-UTF-8 routes.
pub fn decode_request(frame: &[u8]) -> Result<(String, Vec<u8>), NetError> {
    let mut buf = frame;
    if buf.remaining() < 4 {
        return Err(NetError::MalformedFrame);
    }
    let rlen = buf.get_u32() as usize;
    if buf.remaining() < rlen + 4 {
        return Err(NetError::MalformedFrame);
    }
    let route = String::from_utf8(buf[..rlen].to_vec()).map_err(|_| NetError::MalformedFrame)?;
    buf.advance(rlen);
    let plen = buf.get_u32() as usize;
    if buf.remaining() < plen {
        return Err(NetError::MalformedFrame);
    }
    Ok((route, buf[..plen].to_vec()))
}

/// Encodes one response body: `tag: u8 | len: u32 | bytes`, where tag 0 is
/// success (bytes = the payload) and tags 1–8 map onto [`NetError`]
/// variants (bytes = the error message, possibly empty). Shared by every
/// transport, like [`encode_request`].
pub fn encode_response(result: &Result<Vec<u8>, NetError>) -> Vec<u8> {
    let mut buf = BytesMut::new();
    match result {
        Ok(payload) => {
            buf.put_u8(0);
            buf.put_u32(payload.len() as u32);
            buf.put_slice(payload);
        }
        Err(e) => {
            let (tag, msg) = match e {
                NetError::UnknownRoute(r) => (1u8, r.clone()),
                NetError::Remote(m) => (2, m.clone()),
                NetError::MalformedFrame => (3, String::new()),
                NetError::Timeout => (4, String::new()),
                NetError::CircuitOpen => (5, String::new()),
                NetError::Unavailable(m) => (6, m.clone()),
                NetError::Disconnected(m) => (7, m.clone()),
                NetError::FrameTooLarge(m) => (8, m.clone()),
            };
            buf.put_u8(tag);
            let msg = msg.into_bytes();
            buf.put_u32(msg.len() as u32);
            buf.put_slice(&msg);
        }
    }
    buf.to_vec()
}

/// Decodes an [`encode_response`] body back into the handler result.
///
/// # Errors
///
/// The decoded error itself, or [`NetError::MalformedFrame`] on
/// truncation or an unknown tag.
pub fn decode_response(response: &[u8]) -> Result<Vec<u8>, NetError> {
    let mut buf = response;
    if buf.remaining() < 5 {
        return Err(NetError::MalformedFrame);
    }
    let tag = buf.get_u8();
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(NetError::MalformedFrame);
    }
    let body = buf[..len].to_vec();
    match tag {
        0 => Ok(body),
        1 => Err(NetError::UnknownRoute(String::from_utf8_lossy(&body).into_owned())),
        2 => Err(NetError::Remote(String::from_utf8_lossy(&body).into_owned())),
        3 => Err(NetError::MalformedFrame),
        4 => Err(NetError::Timeout),
        5 => Err(NetError::CircuitOpen),
        6 => Err(NetError::Unavailable(String::from_utf8_lossy(&body).into_owned())),
        7 => Err(NetError::Disconnected(String::from_utf8_lossy(&body).into_owned())),
        8 => Err(NetError::FrameTooLarge(String::from_utf8_lossy(&body).into_owned())),
        _ => Err(NetError::MalformedFrame),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_channel(model: LatencyModel) -> Channel {
        Channel::connect(
            |route: &str, payload: &[u8]| -> Result<Vec<u8>, NetError> {
                match route {
                    "echo" => Ok(payload.to_vec()),
                    "fail" => Err(NetError::Remote("boom".into())),
                    other => Err(NetError::UnknownRoute(other.to_string())),
                }
            },
            model,
        )
    }

    #[test]
    fn round_trip_and_metrics() {
        let ch = echo_channel(LatencyModel::instant());
        assert_eq!(ch.call("echo", b"hello").unwrap(), b"hello");
        assert_eq!(ch.metrics().round_trips(), 1);
        // request frame: 4 + 4 (route) + 4 + 5 = 17; response: 1 + 4 + 5 = 10
        assert_eq!(ch.metrics().bytes_sent(), 17);
        assert_eq!(ch.metrics().bytes_received(), 10);
        assert_eq!(ch.metrics().virtual_time(), Duration::ZERO);
    }

    #[test]
    fn remote_errors_propagate() {
        let ch = echo_channel(LatencyModel::instant());
        assert_eq!(ch.call("fail", b""), Err(NetError::Remote("boom".into())));
        assert_eq!(ch.call("nope", b""), Err(NetError::UnknownRoute("nope".into())));
        // Errors still count as round trips (they crossed the wire).
        assert_eq!(ch.metrics().round_trips(), 2);
    }

    #[test]
    fn latency_charged_to_virtual_clock() {
        let ch = echo_channel(LatencyModel::wan());
        ch.call("echo", &[0u8; 1000]).unwrap();
        let t = ch.metrics().virtual_time();
        assert!(t >= Duration::from_micros(10_000), "rtt charged: {t:?}");
        assert!(t >= Duration::from_micros(10_000) + Duration::from_nanos(8 * 1000), "bandwidth charged");
    }

    #[test]
    fn unicode_and_binary_safe() {
        let ch = echo_channel(LatencyModel::instant());
        let payload: Vec<u8> = (0..=255).collect();
        assert_eq!(ch.call("echo", &payload).unwrap(), payload);
    }

    #[test]
    fn frame_decode_rejects_garbage() {
        assert_eq!(decode_request(&[]), Err(NetError::MalformedFrame));
        assert_eq!(decode_request(&[0, 0, 0, 10, b'a']), Err(NetError::MalformedFrame));
        assert!(decode_response(&[9, 0, 0, 0, 0]).is_err());
        assert_eq!(decode_response(&[]), Err(NetError::MalformedFrame));
    }

    #[test]
    fn model_cost_scales_with_bytes_and_rtt() {
        let metro = LatencyModel::metro();
        assert_eq!(metro.cost(0), Duration::from_micros(2_000));
        assert_eq!(metro.cost(1000), Duration::from_micros(2_000) + Duration::from_nanos(4_000));
        assert!(LatencyModel::wan().cost(0) > LatencyModel::metro().cost(0));
        assert!(LatencyModel::metro().cost(0) > LatencyModel::lan().cost(0));
        assert_eq!(LatencyModel::instant().cost(1 << 20), Duration::ZERO);
    }

    #[test]
    fn real_sleep_actually_sleeps() {
        let model = LatencyModel { rtt_micros: 2_000, per_byte_nanos: 0, real_sleep: true };
        let ch = echo_channel(model);
        let start = std::time::Instant::now();
        ch.call("echo", b"x").unwrap();
        assert!(start.elapsed() >= Duration::from_micros(2_000));
    }

    #[test]
    fn metrics_reset() {
        let ch = echo_channel(LatencyModel::lan());
        ch.call("echo", b"x").unwrap();
        assert_ne!(ch.metrics().round_trips(), 0);
        ch.metrics().reset();
        assert_eq!(ch.metrics().round_trips(), 0);
        assert_eq!(ch.metrics().bytes_sent(), 0);
    }

    #[test]
    fn clone_shares_metrics() {
        let ch = echo_channel(LatencyModel::instant());
        let ch2 = ch.clone();
        ch.call("echo", b"x").unwrap();
        assert_eq!(ch2.metrics().round_trips(), 1);
    }

    #[test]
    fn missed_deadline_times_out_and_charges_only_the_deadline() {
        let ch = echo_channel(LatencyModel::wan()); // 10 ms RTT
        let deadline = Duration::from_millis(1);
        let err = ch.call_with_deadline("echo", b"hello", Some(deadline));
        assert_eq!(err, Err(NetError::Timeout));
        // The response crossed the wire (the cloud did the work)...
        assert_eq!(ch.metrics().round_trips(), 1);
        assert_eq!(ch.metrics().timeouts(), 1);
        // ...but the caller only waited out its deadline.
        assert_eq!(ch.metrics().virtual_time(), deadline);
    }

    #[test]
    fn generous_deadline_behaves_like_plain_call() {
        let ch = echo_channel(LatencyModel::wan());
        let ok = ch.call_with_deadline("echo", b"hello", Some(Duration::from_secs(1)));
        assert_eq!(ok.unwrap(), b"hello");
        assert_eq!(ch.metrics().timeouts(), 0);
        assert!(ch.metrics().virtual_time() >= Duration::from_micros(10_000));
    }

    #[test]
    fn service_timeout_is_a_lost_message() {
        let ch = Channel::connect(
            |_: &str, _: &[u8]| -> Result<Vec<u8>, NetError> { Err(NetError::Timeout) },
            LatencyModel::instant(),
        );
        let err = ch.call_with_deadline("echo", b"x", Some(Duration::from_millis(5)));
        assert_eq!(err, Err(NetError::Timeout));
        // A lost message never completes a round trip and returns no bytes.
        assert_eq!(ch.metrics().round_trips(), 0);
        assert_eq!(ch.metrics().bytes_received(), 0);
        assert_eq!(ch.metrics().timeouts(), 1);
        assert_eq!(ch.metrics().virtual_time(), Duration::from_millis(5));
    }

    #[test]
    fn advance_moves_the_clock_without_traffic() {
        let ch = echo_channel(LatencyModel::instant());
        ch.advance(Duration::from_micros(42));
        assert_eq!(ch.metrics().virtual_time(), Duration::from_micros(42));
        assert_eq!(ch.metrics().round_trips(), 0);
    }

    #[test]
    fn new_error_variants_cross_the_wire() {
        let timeout = encode_response(&Err(NetError::Timeout));
        assert_eq!(decode_response(&timeout), Err(NetError::Timeout));
        let open = encode_response(&Err(NetError::CircuitOpen));
        assert_eq!(decode_response(&open), Err(NetError::CircuitOpen));
        let unavail = encode_response(&Err(NetError::Unavailable("1/2 acks".into())));
        assert_eq!(decode_response(&unavail), Err(NetError::Unavailable("1/2 acks".into())));
        let gone = encode_response(&Err(NetError::Disconnected("reset".into())));
        assert_eq!(decode_response(&gone), Err(NetError::Disconnected("reset".into())));
        let big = encode_response(&Err(NetError::FrameTooLarge("9 > 8".into())));
        assert_eq!(decode_response(&big), Err(NetError::FrameTooLarge("9 > 8".into())));
    }

    #[test]
    fn snapshot_round_trips_all_counters() {
        let ch = echo_channel(LatencyModel::lan());
        ch.call("echo", b"x").unwrap();
        let snap = ch.metrics().snapshot();
        assert_eq!(snap.round_trips, 1);
        assert_eq!(snap, ch.metrics().snapshot());
        ch.metrics().reset();
        assert_eq!(ch.metrics().snapshot(), MetricsSnapshot::default());
    }
}
