//! One-import vocabulary for integration tests and benches that exercise the
//! simulated network: channels, latency models, fault injection and the
//! resilience layer.
//!
//! ```
//! use datablinder_netsim::prelude::*;
//! ```

pub use crate::crash::{
    CrashInjector, CrashPlan, CrashPoint, CrashVerdict, NodeEvent, NodeFailureInjector, NodeFailurePlan,
};
pub use crate::fault::{FaultPlan, FaultStats, FaultStatsSnapshot, FaultyService, RouteFaults};
pub use crate::resilient::{
    BreakerConfig, BreakerState, CircuitBreaker, ResilienceConfig, ResilientChannel, RetryPolicy,
};
pub use crate::tcp::{CloudServer, FrameDecoder, FrameError, ServerConfig, TcpChannel, TcpConfig};
pub use crate::transport::Transport;
pub use crate::{Channel, ChannelMetrics, CloudService, LatencyModel, MetricsSnapshot, NetError};
