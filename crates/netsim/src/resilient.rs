//! Retries, deadlines and circuit breaking over any [`Transport`].
//!
//! [`ResilientChannel`] exposes the same `call` API as [`Channel`] but
//! absorbs transient faults: it retries retryable errors with exponential
//! backoff and deterministic seeded jitter, applies a per-call deadline, and
//! fails fast through a [`CircuitBreaker`] while the remote side looks dead.
//! All waiting — backoff included — goes through [`Transport::advance`]: a
//! simulated channel charges its virtual clock, so simulated time reflects
//! what a real client would have endured; a TCP channel really sleeps.
//!
//! What is safe to retry lives here; *whether* a retried write re-executes
//! is the cloud's problem, solved by idempotency tokens one layer up (see
//! DESIGN.md §Resilience).
//!
//! # Examples
//!
//! ```
//! use datablinder_netsim::prelude::*;
//!
//! let plan = FaultPlan::uniform(RouteFaults::none().with_drop(0.3));
//! let svc = FaultyService::new(
//!     |_: &str, p: &[u8]| -> Result<Vec<u8>, NetError> { Ok(p.to_vec()) },
//!     plan,
//!     7,
//! );
//! let ch = ResilientChannel::connect(svc, LatencyModel::lan(), ResilienceConfig::default());
//! for i in 0..50u8 {
//!     assert_eq!(ch.call("echo", &[i]).unwrap(), vec![i]); // drops retried away
//! }
//! assert!(ch.metrics().attempts() > ch.metrics().round_trips());
//! ```

use std::sync::Arc;
use std::time::Duration;

use datablinder_obs::trace::{self, TraceCtx};
use datablinder_obs::Recorder;
use parking_lot::Mutex;

use crate::fault::SplitMix64;
use crate::transport::Transport;
use crate::{Channel, ChannelMetrics, CloudService, LatencyModel, NetError};

/// When and how often to retry a failed call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total tries per call, first attempt included. `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a seeded
    /// uniform draw from `[1 - jitter, 1]`.
    pub jitter: f64,
    /// Whether [`NetError::Remote`] failures are retried. Off by default:
    /// a remote *application* error usually reproduces on retry, whereas
    /// transport faults (timeout, corruption) usually do not.
    pub retry_remote: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(50),
            jitter: 0.5,
            retry_remote: false,
        }
    }
}

impl RetryPolicy {
    /// One attempt, no retries.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Whether `err` is worth retrying under this policy.
    ///
    /// Timeouts, detected corruption, dropped connections and breaker
    /// rejections are transport conditions that a retry (after
    /// backoff/cooldown) may clear. Unknown routes and oversized frames are
    /// deterministic bugs; remote failures are configurable.
    pub fn is_retryable(&self, err: &NetError) -> bool {
        match err {
            NetError::Timeout
            | NetError::MalformedFrame
            | NetError::CircuitOpen
            | NetError::Unavailable(_)
            | NetError::Disconnected(_) => true,
            NetError::Remote(_) => self.retry_remote,
            NetError::UnknownRoute(_) | NetError::FrameTooLarge(_) => false,
        }
    }

    /// The pause before attempt `attempt + 1`, given that `attempt` (1-based)
    /// just failed: `min(base · 2^(attempt-1), max)`, scaled by seeded jitter.
    pub(crate) fn backoff_for(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self.base_backoff.saturating_mul(1u32 << exp.min(31));
        let capped = raw.min(self.max_backoff);
        let scale = 1.0 - self.jitter.clamp(0.0, 1.0) * rng.next_f64();
        Duration::from_nanos((capped.as_nanos() as f64 * scale) as u64)
    }
}

/// Circuit breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transport failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 5, cooldown: Duration::from_millis(100) }
    }
}

/// The breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive transport failures are counted.
    Closed,
    /// Calls fail fast until the cooldown elapses.
    Open,
    /// One probe is in flight; its outcome closes or re-opens the breaker.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    open_until: Duration,
}

/// Closed → open after N consecutive transport failures → half-open probe
/// after a cooldown → closed on probe success (open again on probe failure).
///
/// Time is whatever clock the caller passes in — the [`ResilientChannel`]
/// feeds it the channel's virtual clock, keeping breaker behaviour
/// deterministic in simulation.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_until: Duration::ZERO,
            }),
        }
    }

    /// Asks to place a call at time `now`. `Ok(true)` means the call is the
    /// half-open probe (the breaker just transitioned); `Ok(false)` a normal
    /// admission; `Err(remaining)` a fast-fail with the cooldown left.
    pub fn admit(&self, now: Duration) -> Result<bool, Duration> {
        let mut g = self.inner.lock();
        match g.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(false),
            BreakerState::Open => {
                if now >= g.open_until {
                    g.state = BreakerState::HalfOpen;
                    Ok(true)
                } else {
                    Err(g.open_until - now)
                }
            }
        }
    }

    /// Cooldown left before a half-open probe would be admitted, if open.
    /// Never mutates state (unlike [`CircuitBreaker::admit`]).
    pub fn remaining_cooldown(&self, now: Duration) -> Option<Duration> {
        let g = self.inner.lock();
        match g.state {
            BreakerState::Open if g.open_until > now => Some(g.open_until - now),
            _ => None,
        }
    }

    /// Records a successful call: closes the breaker, clears the streak.
    /// Returns `true` when this actually moved the breaker (it was open or
    /// half-open) — the close transitions observability counts.
    pub fn on_success(&self) -> bool {
        let mut g = self.inner.lock();
        let moved = g.state != BreakerState::Closed;
        g.state = BreakerState::Closed;
        g.consecutive_failures = 0;
        moved
    }

    /// Records a transport failure at time `now`. Returns `true` when this
    /// failure tripped the breaker open (threshold reached, or a half-open
    /// probe failed).
    pub fn on_failure(&self, now: Duration) -> bool {
        let mut g = self.inner.lock();
        g.consecutive_failures = g.consecutive_failures.saturating_add(1);
        let trips = match g.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => g.consecutive_failures >= self.config.failure_threshold.max(1),
            BreakerState::Open => false,
        };
        if trips {
            g.state = BreakerState::Open;
            g.open_until = now + self.config.cooldown;
        }
        trips
    }

    /// The current position.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }
}

/// Everything a [`ResilientChannel`] needs to know.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Retry schedule and error classification.
    pub retry: RetryPolicy,
    /// Circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// Per-call deadline in simulated time; `None` waits forever.
    pub deadline: Option<Duration>,
    /// Seed for the backoff jitter stream.
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            deadline: None,
            seed: 0x5EED_CAB1E,
        }
    }
}

/// A [`Transport`] wrapped with retries, deadlines and a circuit breaker.
///
/// Exposes the same `call(route, payload)` shape as [`Channel`]. Works over
/// any transport — the simulated [`Channel`] or a real
/// [`TcpChannel`](crate::tcp::TcpChannel) — with identical retry, deadline,
/// breaker and tracing behaviour. Cloning shares the underlying transport,
/// metrics, breaker and jitter stream.
#[derive(Clone)]
pub struct ResilientChannel {
    transport: Arc<dyn Transport>,
    policy: RetryPolicy,
    deadline: Option<Duration>,
    breaker: Arc<CircuitBreaker>,
    jitter: Arc<Mutex<SplitMix64>>,
    obs: Recorder,
}

impl ResilientChannel {
    /// Wraps an existing simulated channel.
    pub fn new(channel: Channel, config: ResilienceConfig) -> Self {
        ResilientChannel::over(Arc::new(channel), config)
    }

    /// Wraps any transport.
    pub fn over(transport: Arc<dyn Transport>, config: ResilienceConfig) -> Self {
        ResilientChannel {
            transport,
            policy: config.retry,
            deadline: config.deadline,
            breaker: Arc::new(CircuitBreaker::new(config.breaker)),
            jitter: Arc::new(Mutex::new(SplitMix64::new(config.seed))),
            obs: Recorder::default(),
        }
    }

    /// Attaches an observability recorder (disabled by default); clones of
    /// this channel made *after* the call share it.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
    }

    /// Builder form of [`ResilientChannel::set_recorder`].
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.obs = recorder;
        self
    }

    /// The attached observability recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Connects to `service` and wraps the channel in one step.
    pub fn connect<S: CloudService + 'static>(service: S, model: LatencyModel, config: ResilienceConfig) -> Self {
        ResilientChannel::new(Channel::connect(service, model), config)
    }

    /// Calls with the configured deadline, retrying per policy.
    ///
    /// # Errors
    ///
    /// The last attempt's error once retries are exhausted, or immediately
    /// for non-retryable errors ([`NetError::Remote`], unknown routes).
    pub fn call(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.call_with_deadline(route, payload, self.deadline)
    }

    /// Calls with an explicit per-call deadline (overriding the configured
    /// one), retrying per policy.
    ///
    /// # Errors
    ///
    /// As [`ResilientChannel::call`].
    pub fn call_with_deadline(
        &self,
        route: &str,
        payload: &[u8],
        deadline: Option<Duration>,
    ) -> Result<Vec<u8>, NetError> {
        let metrics = self.transport.metrics();
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        // A trace installed by the caller (the gateway route span) makes
        // this call — and every attempt under it — part of that trace.
        let ambient = trace::current();
        // Span durations are measured on the channel's virtual clock so they
        // include simulated latency, timeouts and backoff sleeps.
        let vt0 = if self.obs.is_enabled() { Some(metrics.virtual_time()) } else { None };
        let mut call_guard = vt0.map(|_| self.obs.span("channel.call"));
        loop {
            attempt += 1;
            metrics.record_attempt();
            self.obs.count("channel.call.attempts", 1);

            let outcome = match self.breaker.admit(metrics.virtual_time()) {
                Ok(probe) => {
                    if probe {
                        metrics.record_breaker_half_open();
                        self.obs.count("channel.breaker.transitions", 1);
                        self.obs.gauge_set("channel.breaker.state", breaker_gauge(BreakerState::HalfOpen));
                    }
                    let result = self.attempt_once(route, payload, deadline, ambient);
                    match &result {
                        Ok(_) => self.note_success(),
                        Err(e) if is_transport_failure(e) => {
                            if self.breaker.on_failure(metrics.virtual_time()) {
                                metrics.record_breaker_open();
                                self.obs.count("channel.breaker.transitions", 1);
                                self.obs.gauge_set("channel.breaker.state", breaker_gauge(BreakerState::Open));
                            }
                        }
                        // The remote side answered — it is alive. Application
                        // failures must not starve the route.
                        Err(_) => self.note_success(),
                    }
                    result
                }
                Err(_remaining) => Err(NetError::CircuitOpen),
            };

            match outcome {
                Ok(body) => {
                    finish_call_guard(call_guard.as_mut(), vt0, metrics, true, None);
                    return Ok(body);
                }
                Err(err) => {
                    if attempt >= max_attempts || !self.policy.is_retryable(&err) {
                        finish_call_guard(call_guard.as_mut(), vt0, metrics, false, Some(&err));
                        return Err(err);
                    }
                    metrics.record_retry();
                    self.obs.count("channel.call.retries", 1);
                    let mut pause = self.policy.backoff_for(attempt, &mut self.jitter.lock());
                    if let Some(remaining) = self.breaker.remaining_cooldown(metrics.virtual_time()) {
                        // No point re-knocking on an open breaker: stretch
                        // the pause to the cooldown so the next attempt can
                        // be the half-open probe.
                        pause = pause.max(remaining);
                    }
                    self.obs.count("channel.backoff.sleeps", 1);
                    self.obs.count("channel.backoff.nanos", pause.as_nanos() as u64);
                    self.transport.advance(pause);
                }
            }
        }
    }

    /// Reports a successful call to the breaker, counting the transition if
    /// the breaker was not already closed.
    fn note_success(&self) {
        if self.breaker.on_success() {
            self.obs.count("channel.breaker.transitions", 1);
        }
        self.obs.gauge_set("channel.breaker.state", breaker_gauge(BreakerState::Closed));
    }

    /// One attempt over the wire. Under an ambient trace the request is
    /// wrapped in the [`trace::TRACED_ROUTE`] envelope — so the remote
    /// service joins the trace — and a quiet per-attempt span (no counters,
    /// virtual-clock duration, error detail) is recorded. With no ambient
    /// trace the frame on the wire is byte-identical to before tracing
    /// existed.
    fn attempt_once(
        &self,
        route: &str,
        payload: &[u8],
        deadline: Option<Duration>,
        ambient: Option<TraceCtx>,
    ) -> Result<Vec<u8>, NetError> {
        let Some(ambient) = ambient else {
            return self.transport.call_with_deadline(route, payload, deadline);
        };
        let va0 = self.transport.metrics().virtual_time();
        let mut guard = self.obs.quiet_span("channel.attempt");
        // Propagate even when this channel's recorder is disabled: the
        // trace belongs to the caller, not to us.
        let ctx = guard.ctx().unwrap_or(ambient);
        let framed = trace::encode_traced(ctx, route, payload);
        let result = self.transport.call_with_deadline(trace::TRACED_ROUTE, &framed, deadline);
        guard.set_duration(self.transport.metrics().virtual_time().saturating_sub(va0));
        if let Err(e) = &result {
            guard.fail();
            guard.set_detail(&e.to_string());
        }
        result
    }

    /// Traffic and resilience counters (shared with the inner transport).
    pub fn metrics(&self) -> &ChannelMetrics {
        self.transport.metrics()
    }

    /// The wrapped transport.
    pub fn transport(&self) -> &dyn Transport {
        &*self.transport
    }

    /// The breaker's current position.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// The retry policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Advances the transport clock (simulated or real), e.g. to let a
    /// breaker cooldown elapse in tests.
    pub fn advance(&self, delta: Duration) {
        self.transport.advance(delta);
    }
}

impl std::fmt::Debug for ResilientChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientChannel")
            .field("policy", &self.policy)
            .field("deadline", &self.deadline)
            .field("breaker", &self.breaker.state())
            .finish()
    }
}

/// Gauge encoding of a breaker position (`channel.breaker.state`):
/// closed = 0, open = 1, half-open = 2.
pub fn breaker_gauge(state: BreakerState) -> i64 {
    match state {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    }
}

fn is_transport_failure(err: &NetError) -> bool {
    // Only evidence that the *path* is unhealthy counts toward the breaker.
    // Remote/UnknownRoute/Unavailable mean the other side answered, and
    // FrameTooLarge is the caller's own deterministic bug.
    matches!(err, NetError::Timeout | NetError::MalformedFrame | NetError::Disconnected(_))
}

/// Closes the per-call span guard with the virtual-clock duration and
/// outcome. The guard carries the `channel.call` counters and histogram, so
/// this replicates exactly what `record_op("channel.call", …)` used to do.
fn finish_call_guard(
    guard: Option<&mut datablinder_obs::SpanGuard>,
    vt0: Option<Duration>,
    metrics: &ChannelMetrics,
    ok: bool,
    err: Option<&NetError>,
) {
    if let (Some(guard), Some(vt0)) = (guard, vt0) {
        guard.set_duration(metrics.virtual_time().saturating_sub(vt0));
        guard.set_ok(ok);
        if let Some(e) = err {
            guard.set_detail(&e.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyService, RouteFaults};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        let mut rng = SplitMix64::new(1);
        assert_eq!(policy.backoff_for(1, &mut rng), Duration::from_micros(500));
        assert_eq!(policy.backoff_for(2, &mut rng), Duration::from_micros(1000));
        assert_eq!(policy.backoff_for(3, &mut rng), Duration::from_micros(2000));
        assert_eq!(policy.backoff_for(30, &mut rng), Duration::from_millis(50), "capped at max_backoff");
    }

    #[test]
    fn jitter_shrinks_backoff_deterministically() {
        let policy = RetryPolicy { jitter: 0.5, ..RetryPolicy::default() };
        let a = policy.backoff_for(1, &mut SplitMix64::new(3));
        let b = policy.backoff_for(1, &mut SplitMix64::new(3));
        assert_eq!(a, b, "same seed, same jitter");
        assert!(a <= Duration::from_micros(500));
        assert!(a >= Duration::from_micros(250), "jitter scales into [0.5, 1]·base: {a:?}");
    }

    #[test]
    fn classification() {
        let policy = RetryPolicy::default();
        assert!(policy.is_retryable(&NetError::Timeout));
        assert!(policy.is_retryable(&NetError::MalformedFrame));
        assert!(policy.is_retryable(&NetError::CircuitOpen));
        assert!(policy.is_retryable(&NetError::Unavailable("1/2 acks".into())));
        assert!(!policy.is_retryable(&NetError::Remote("app bug".into())));
        assert!(!policy.is_retryable(&NetError::UnknownRoute("x".into())));
        let lenient = RetryPolicy { retry_remote: true, ..policy };
        assert!(lenient.is_retryable(&NetError::Remote("blip".into())));
    }

    #[test]
    fn breaker_state_machine() {
        let b = CircuitBreaker::new(BreakerConfig { failure_threshold: 3, cooldown: Duration::from_millis(10) });
        let t0 = Duration::ZERO;
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert!(b.on_failure(t0), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(t0), Err(Duration::from_millis(10)));
        assert_eq!(b.remaining_cooldown(Duration::from_millis(4)), Some(Duration::from_millis(6)));

        // Cooldown elapses: one probe admitted.
        assert_eq!(b.admit(Duration::from_millis(10)), Ok(true));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe fails → straight back to open.
        assert!(b.on_failure(Duration::from_millis(10)));
        assert_eq!(b.state(), BreakerState::Open);

        // Second probe succeeds → closed, streak cleared.
        assert_eq!(b.admit(Duration::from_millis(20)), Ok(true));
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_failure(Duration::from_millis(20)), "streak restarted");
    }

    #[test]
    fn success_resets_failure_streak() {
        let b = CircuitBreaker::new(BreakerConfig { failure_threshold: 2, cooldown: Duration::from_millis(1) });
        b.on_failure(Duration::ZERO);
        b.on_success();
        assert!(!b.on_failure(Duration::ZERO), "streak was reset");
        assert!(b.on_failure(Duration::ZERO));
    }

    #[test]
    fn retries_absorb_transient_drops() {
        let plan = FaultPlan::uniform(RouteFaults::none().with_drop(0.4));
        let svc = FaultyService::new(|_: &str, p: &[u8]| -> Result<Vec<u8>, NetError> { Ok(p.to_vec()) }, plan, 11);
        let ch = ResilientChannel::connect(
            svc,
            LatencyModel::lan(),
            ResilienceConfig {
                retry: RetryPolicy { max_attempts: 10, ..RetryPolicy::default() },
                ..Default::default()
            },
        );
        for i in 0..100u8 {
            assert_eq!(ch.call("echo", &[i]).unwrap(), vec![i]);
        }
        let m = ch.metrics();
        assert!(m.attempts() > m.round_trips(), "attempts {} > round trips {}", m.attempts(), m.round_trips());
        assert!(m.retries() > 0);
        assert!(m.timeouts() > 0);
        assert!(m.virtual_time() > Duration::ZERO, "backoff charged to the clock");
    }

    #[test]
    fn non_retryable_error_returns_immediately() {
        let svc = |_: &str, _: &[u8]| -> Result<Vec<u8>, NetError> { Err(NetError::Remote("bug".into())) };
        let ch = ResilientChannel::connect(svc, LatencyModel::instant(), ResilienceConfig::default());
        assert_eq!(ch.call("r", b"x"), Err(NetError::Remote("bug".into())));
        assert_eq!(ch.metrics().attempts(), 1, "no retries for application errors");
    }

    #[test]
    fn breaker_opens_fast_fails_and_recovers() {
        // Service: times out for the first 4 deliveries, then echoes.
        let deliveries = AtomicU64::new(0);
        let svc = move |_: &str, p: &[u8]| -> Result<Vec<u8>, NetError> {
            if deliveries.fetch_add(1, Ordering::Relaxed) < 4 {
                Err(NetError::Timeout)
            } else {
                Ok(p.to_vec())
            }
        };
        let config = ResilienceConfig {
            retry: RetryPolicy::none(),
            breaker: BreakerConfig { failure_threshold: 3, cooldown: Duration::from_millis(50) },
            deadline: Some(Duration::from_millis(1)),
            ..Default::default()
        };
        let ch = ResilientChannel::connect(svc, LatencyModel::instant(), config);

        // Three timeouts trip the breaker...
        for _ in 0..3 {
            assert_eq!(ch.call("r", b"x"), Err(NetError::Timeout));
        }
        assert_eq!(ch.breaker_state(), BreakerState::Open);
        assert_eq!(ch.metrics().breaker_opens(), 1);

        // ...now calls fail fast without touching the wire.
        let sent_before = ch.metrics().bytes_sent();
        assert_eq!(ch.call("r", b"x"), Err(NetError::CircuitOpen));
        assert_eq!(ch.metrics().bytes_sent(), sent_before, "fast-fail sent nothing");

        // After the cooldown the half-open probe goes through. The 4th
        // delivery still times out, re-opening; the probe after that heals.
        ch.advance(Duration::from_millis(50));
        assert_eq!(ch.call("r", b"x"), Err(NetError::Timeout));
        assert_eq!(ch.breaker_state(), BreakerState::Open);
        assert_eq!(ch.metrics().breaker_opens(), 2);

        ch.advance(Duration::from_millis(50));
        assert_eq!(ch.call("r", b"x").unwrap(), b"x");
        assert_eq!(ch.breaker_state(), BreakerState::Closed);
        assert_eq!(ch.metrics().breaker_half_opens(), 2);
    }

    #[test]
    fn retry_waits_out_breaker_cooldown() {
        // Always-timing-out service; generous retries. The breaker opens
        // mid-retry-loop and the backoff stretches to its cooldown, so the
        // retry loop keeps attempting (as probes) rather than burning all
        // attempts on instant CircuitOpen fast-fails.
        let svc = |_: &str, _: &[u8]| -> Result<Vec<u8>, NetError> { Err(NetError::Timeout) };
        let config = ResilienceConfig {
            retry: RetryPolicy { max_attempts: 6, jitter: 0.0, ..RetryPolicy::default() },
            breaker: BreakerConfig { failure_threshold: 2, cooldown: Duration::from_millis(30) },
            deadline: Some(Duration::from_millis(1)),
            ..Default::default()
        };
        let ch = ResilientChannel::connect(svc, LatencyModel::instant(), config);
        assert_eq!(ch.call("r", b"x"), Err(NetError::Timeout));
        let m = ch.metrics();
        assert_eq!(m.attempts(), 6);
        // Attempts after the breaker opened were half-open probes, not
        // CircuitOpen fast-fails.
        assert!(m.breaker_half_opens() >= 3, "probes: {}", m.breaker_half_opens());
        assert!(m.virtual_time() >= Duration::from_millis(60), "cooldowns waited out: {:?}", m.virtual_time());
    }

    #[test]
    fn recorder_tracks_retries_and_breaker_transitions() {
        // Times out for the first 4 deliveries, then echoes — same shape as
        // breaker_opens_fast_fails_and_recovers, now checked via the recorder.
        let deliveries = AtomicU64::new(0);
        let svc = move |_: &str, p: &[u8]| -> Result<Vec<u8>, NetError> {
            if deliveries.fetch_add(1, Ordering::Relaxed) < 4 {
                Err(NetError::Timeout)
            } else {
                Ok(p.to_vec())
            }
        };
        let config = ResilienceConfig {
            retry: RetryPolicy::none(),
            breaker: BreakerConfig { failure_threshold: 3, cooldown: Duration::from_millis(50) },
            deadline: Some(Duration::from_millis(1)),
            ..Default::default()
        };
        let rec = Recorder::new();
        let ch = ResilientChannel::connect(svc, LatencyModel::instant(), config).with_recorder(rec.clone());

        for _ in 0..3 {
            let _ = ch.call("r", b"x");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counter("channel.call.attempts"), 3);
        assert_eq!(snap.counter("channel.breaker.transitions"), 1, "closed -> open");
        assert_eq!(snap.gauge("channel.breaker.state"), Some(breaker_gauge(BreakerState::Open)));

        // Fast-fail while open, probe fails (open again), probe heals.
        let _ = ch.call("r", b"x");
        ch.advance(Duration::from_millis(50));
        let _ = ch.call("r", b"x");
        ch.advance(Duration::from_millis(50));
        assert_eq!(ch.call("r", b"x").unwrap(), b"x");

        let snap = rec.snapshot();
        // open, half-open, open (probe failed), half-open, closed = 5 total.
        assert_eq!(snap.counter("channel.breaker.transitions"), 5);
        assert_eq!(snap.gauge("channel.breaker.state"), Some(breaker_gauge(BreakerState::Closed)));
        assert_eq!(snap.counter("channel.call.errors"), 5);
        assert_eq!(snap.counter("channel.call.count"), 6);
        assert!(snap.histogram("channel.call.latency").is_some());
    }

    #[test]
    fn ambient_trace_wraps_attempts_in_the_envelope() {
        // Under a trace, the wire carries TRACED_ROUTE with the real route
        // inside, and per-attempt quiet spans join the caller's tree.
        let svc = |route: &str, payload: &[u8]| -> Result<Vec<u8>, NetError> {
            assert_eq!(route, trace::TRACED_ROUTE);
            let (ctx, inner, body) = trace::decode_traced(payload).expect("traced envelope");
            assert_ne!(ctx.trace_id, 0);
            assert_eq!(inner, "echo");
            Ok(body.to_vec())
        };
        let rec = Recorder::new();
        let ch = ResilientChannel::connect(svc, LatencyModel::instant(), ResilienceConfig::default())
            .with_recorder(rec.clone());
        {
            let _root = rec.span("gateway.op");
            assert_eq!(ch.call("echo", b"ping").unwrap(), b"ping");
        }
        let spans = rec.spans().recent();
        let root = spans.iter().find(|s| s.route == "gateway.op").unwrap();
        let call = spans.iter().find(|s| s.route == "channel.call").unwrap();
        let attempt = spans.iter().find(|s| s.route == "channel.attempt").unwrap();
        assert_eq!(call.parent_id, root.span_id, "call nests under the caller's span");
        assert_eq!(attempt.parent_id, call.span_id, "attempt nests under the call");
        assert!(spans.iter().all(|s| s.trace_id == root.trace_id), "one trace");
        let snap = rec.snapshot();
        assert_eq!(snap.counter("channel.call.count"), 1);
        assert_eq!(snap.counter("channel.attempt.count"), 0, "attempt spans are quiet");
    }

    #[test]
    fn untraced_calls_stay_unwrapped_on_the_wire() {
        // No ambient trace: the frame is byte-identical to pre-tracing
        // behavior even with an enabled recorder attached.
        let svc = |route: &str, p: &[u8]| -> Result<Vec<u8>, NetError> {
            assert_eq!(route, "echo", "no envelope without a trace");
            Ok(p.to_vec())
        };
        let ch = ResilientChannel::connect(svc, LatencyModel::instant(), ResilienceConfig::default())
            .with_recorder(Recorder::new());
        assert_eq!(ch.call("echo", b"ping").unwrap(), b"ping");
    }

    #[test]
    fn traced_faults_target_the_inner_route() {
        // A fault plan keyed on the inner route still fires when the wire
        // carries the traced envelope.
        let plan = FaultPlan::none().route("echo", RouteFaults::none().with_fail(1.0));
        let svc = FaultyService::new(|_: &str, p: &[u8]| -> Result<Vec<u8>, NetError> { Ok(p.to_vec()) }, plan, 5);
        let rec = Recorder::new();
        let ch = ResilientChannel::connect(
            svc,
            LatencyModel::instant(),
            ResilienceConfig { retry: RetryPolicy::none(), ..Default::default() },
        )
        .with_recorder(rec.clone());
        let _root = rec.span("gateway.op");
        let err = ch.call("echo", b"x");
        assert_eq!(err, Err(NetError::Remote("injected transient failure".into())));
    }

    #[test]
    fn recorder_counts_backoff_sleeps() {
        let plan = FaultPlan::uniform(RouteFaults::none().with_drop(0.4));
        let svc = FaultyService::new(|_: &str, p: &[u8]| -> Result<Vec<u8>, NetError> { Ok(p.to_vec()) }, plan, 11);
        let rec = Recorder::new();
        let ch = ResilientChannel::connect(
            svc,
            LatencyModel::lan(),
            ResilienceConfig {
                retry: RetryPolicy { max_attempts: 10, ..RetryPolicy::default() },
                ..Default::default()
            },
        )
        .with_recorder(rec.clone());
        for i in 0..100u8 {
            assert_eq!(ch.call("echo", &[i]).unwrap(), vec![i]);
        }
        let snap = rec.snapshot();
        let m = ch.metrics();
        assert_eq!(snap.counter("channel.call.attempts"), m.attempts());
        assert_eq!(snap.counter("channel.call.retries"), m.retries());
        assert_eq!(snap.counter("channel.backoff.sleeps"), m.retries(), "every retry backed off");
        assert!(snap.counter("channel.backoff.nanos") > 0);
    }

    #[test]
    fn clone_shares_breaker_and_metrics() {
        let svc = |_: &str, _: &[u8]| -> Result<Vec<u8>, NetError> { Err(NetError::Timeout) };
        let config = ResilienceConfig {
            retry: RetryPolicy::none(),
            breaker: BreakerConfig { failure_threshold: 1, cooldown: Duration::from_secs(1) },
            deadline: Some(Duration::from_millis(1)),
            ..Default::default()
        };
        let ch = ResilientChannel::connect(svc, LatencyModel::instant(), config);
        let ch2 = ch.clone();
        let _ = ch.call("r", b"x");
        assert_eq!(ch2.breaker_state(), BreakerState::Open);
        assert_eq!(ch2.metrics().attempts(), 1);
    }
}
