//! Real TCP wire transport: a length-prefixed, CRC-framed binary protocol
//! carrying the same route/payload request and tagged-response encodings the
//! in-process [`Channel`](crate::Channel) serializes — so the two transports
//! are byte-identical above the framing layer.
//!
//! # Frame layout
//!
//! Both directions use one frame shape:
//!
//! ```text
//! +-----------+------------------+--------------+-----------------+
//! | len: u32  | corr_id: u64     | body         | crc32: u32      |
//! | (8+|body|)| big-endian       | len-8 bytes  | over corr||body |
//! +-----------+------------------+--------------+-----------------+
//! ```
//!
//! * `len` counts the correlation id plus the body (not itself, not the
//!   CRC). A peer announcing `len` past the configured limit is cut off
//!   before any allocation of that size ([`FrameError::TooLarge`]).
//! * `corr_id` matches responses to requests: the client pipelines many
//!   requests per connection and the id says which reply is whose. The
//!   server echoes the request's id on its response. Id `0` is reserved
//!   for connection-level errors — on receiving it the client fails every
//!   in-flight call and drops the connection.
//! * request bodies are [`encode_request`](crate::encode_request) bytes
//!   (`route`/`payload` framing); response bodies are
//!   [`encode_response`](crate::encode_response) bytes (status tag + body),
//!   exactly as the simulated channel puts them on its wire.
//! * `crc32` is the same IEEE polynomial the durability WAL frames use;
//!   a mismatch rejects the frame and kills the connection rather than
//!   delivering corrupt bytes upward.
//!
//! The client side is [`TcpChannel`] (an implementation of
//! [`Transport`](crate::transport::Transport) — wrap it in a
//! [`ResilientChannel`](crate::ResilientChannel) for retries, deadlines and
//! circuit breaking); the server side is [`CloudServer`], a worker-pool
//! accept loop feeding any [`CloudService`] — the `datablinder-cloudd`
//! binary wires it to a real cloud engine.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::transport::Transport;
use crate::{decode_request, decode_response, encode_request, encode_response, ChannelMetrics, CloudService, NetError};

/// Correlation id reserved for connection-level error frames.
pub const CONN_ERROR_CORR: u64 = 0;

/// Default cap on one frame's `len` field: 8 MiB.
pub const DEFAULT_MAX_FRAME: u32 = 8 * 1024 * 1024;

/// Route answered by the server itself (payload echo), bypassing the
/// service — a liveness probe that works against any deployment.
pub const PING_ROUTE: &str = "sys/ping";

// --------------------------------------------------------------- CRC-32

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) — the polynomial the kvstore WAL frames use.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ----------------------------------------------------------- frame codec

/// Why a byte stream stopped decoding. Either way the connection is
/// unusable: framing state is lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The announced length exceeds the configured cap; the peer is cut
    /// off before any oversized allocation.
    TooLarge {
        /// The announced `len` field.
        announced: u64,
        /// The configured cap.
        max: u64,
    },
    /// The announced length cannot hold a correlation id.
    Runt(u32),
    /// The CRC over `corr_id || body` does not match.
    BadCrc,
}

impl FrameError {
    /// The [`NetError`] this surfaces as on the calling side.
    pub fn into_net(self) -> NetError {
        match self {
            FrameError::TooLarge { announced, max } => {
                NetError::FrameTooLarge(format!("{announced} byte frame exceeds {max} byte limit"))
            }
            FrameError::Runt(_) | FrameError::BadCrc => NetError::MalformedFrame,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { announced, max } => write!(f, "frame of {announced} bytes exceeds limit {max}"),
            FrameError::Runt(len) => write!(f, "frame length {len} cannot hold a correlation id"),
            FrameError::BadCrc => write!(f, "frame crc mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Correlation id matching this frame to its request (or
    /// [`CONN_ERROR_CORR`] for connection-level errors).
    pub corr_id: u64,
    /// Opaque body: request or response encoding.
    pub body: Vec<u8>,
}

/// Encodes one wire frame: `len || corr_id || body || crc32`.
pub fn encode_wire_frame(corr_id: u64, body: &[u8]) -> Vec<u8> {
    let len = 8 + body.len();
    let mut out = Vec::with_capacity(4 + len + 4);
    out.extend_from_slice(&(len as u32).to_be_bytes());
    out.extend_from_slice(&corr_id.to_be_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(&out[4..]).to_be_bytes());
    out
}

/// Incremental frame decoder, tolerant of arbitrary read boundaries: feed
/// it whatever `read()` returned and take complete frames out. Splitting
/// one valid byte stream at any boundaries yields the same frames as
/// decoding it in one piece (the split/coalesce proptests pin this).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames.
    consumed: usize,
    max_frame: u32,
}

impl FrameDecoder {
    /// A decoder enforcing `max_frame` as the `len` cap.
    pub fn new(max_frame: u32) -> Self {
        FrameDecoder { buf: Vec::new(), consumed: 0, max_frame }
    }

    /// Appends raw bytes from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, keeping the buffer
        // bounded by one frame plus one read.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Takes the next complete frame, or `Ok(None)` when more bytes are
    /// needed (every strict prefix of a valid frame lands here).
    ///
    /// # Errors
    ///
    /// [`FrameError`] on an oversized announcement, a runt length or a CRC
    /// mismatch. The stream is unusable afterwards; close the connection.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len > self.max_frame {
            return Err(FrameError::TooLarge { announced: len as u64, max: self.max_frame as u64 });
        }
        if len < 8 {
            return Err(FrameError::Runt(len));
        }
        let total = 4 + len as usize + 4;
        if avail.len() < total {
            return Ok(None);
        }
        let covered = &avail[4..4 + len as usize];
        let stored = u32::from_be_bytes([
            avail[4 + len as usize],
            avail[5 + len as usize],
            avail[6 + len as usize],
            avail[7 + len as usize],
        ]);
        if crc32(covered) != stored {
            return Err(FrameError::BadCrc);
        }
        let corr_id = u64::from_be_bytes(covered[..8].try_into().expect("len >= 8"));
        let body = covered[8..].to_vec();
        self.consumed += total;
        Ok(Some(Frame { corr_id, body }))
    }

    /// Bytes buffered but not yet consumed by a returned frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }
}

// ---------------------------------------------------------------- client

/// Client-side knobs for [`TcpChannel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// Frame `len` cap, both directions.
    pub max_frame: u32,
    /// Timeout establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Whether to set `TCP_NODELAY` (on by default: the protocol is
    /// request/response and Nagle only adds latency).
    pub nodelay: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig { max_frame: DEFAULT_MAX_FRAME, connect_timeout: Duration::from_secs(2), nodelay: true }
    }
}

type ReplySender = mpsc::Sender<Result<Vec<u8>, NetError>>;

/// One live connection: a writer handle, the in-flight request table and
/// the reader thread draining responses into it.
struct Conn {
    writer: Mutex<TcpStream>,
    /// Clone of the stream kept for shutdown.
    stream: TcpStream,
    pending: Mutex<HashMap<u64, ReplySender>>,
    dead: AtomicBool,
}

impl Conn {
    /// Marks the connection dead and fails every in-flight call with `err`.
    fn fail_all(&self, err: &NetError) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let drained: Vec<ReplySender> = self.pending.lock().drain().map(|(_, tx)| tx).collect();
        for tx in drained {
            let _ = tx.send(Err(err.clone()));
        }
    }
}

/// A pipelining TCP client for the [`crate::tcp`] wire protocol: one
/// connection, many requests in flight at once, responses matched by
/// correlation id. Connects lazily and reconnects transparently after a
/// drop — in-flight calls on the dropped connection surface
/// [`NetError::Disconnected`] (transient; a
/// [`ResilientChannel`](crate::ResilientChannel) retry reconnects, and the
/// idempotency envelope keeps retried writes single-apply).
///
/// Implements [`Transport`], so the whole gateway stack — resilience,
/// tracing envelope, engines — runs over it unchanged.
pub struct TcpChannel {
    addr: SocketAddr,
    config: TcpConfig,
    metrics: Arc<ChannelMetrics>,
    conn: Mutex<Option<Arc<Conn>>>,
    corr: AtomicU64,
}

impl TcpChannel {
    /// A channel to `addr` (lazily connected on first call).
    ///
    /// # Errors
    ///
    /// Address resolution failure.
    pub fn connect<A: ToSocketAddrs>(addr: A, config: TcpConfig) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        Ok(TcpChannel {
            addr,
            config,
            metrics: Arc::new(ChannelMetrics::default()),
            conn: Mutex::new(None),
            corr: AtomicU64::new(1),
        })
    }

    /// The remote address this channel dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drops the current connection (if any); the next call reconnects.
    pub fn disconnect(&self) {
        if let Some(conn) = self.conn.lock().take() {
            conn.fail_all(&NetError::Disconnected("connection closed locally".into()));
        }
    }

    /// The live (or freshly dialed) connection.
    fn ensure_conn(&self) -> Result<Arc<Conn>, NetError> {
        let mut slot = self.conn.lock();
        if let Some(conn) = slot.as_ref() {
            if !conn.dead.load(Ordering::SeqCst) {
                return Ok(Arc::clone(conn));
            }
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
            .map_err(|e| NetError::Disconnected(format!("connect {}: {e}", self.addr)))?;
        if self.config.nodelay {
            let _ = stream.set_nodelay(true);
        }
        let reader = stream.try_clone().map_err(|e| NetError::Disconnected(format!("clone stream: {e}")))?;
        let writer = stream.try_clone().map_err(|e| NetError::Disconnected(format!("clone stream: {e}")))?;
        let conn = Arc::new(Conn {
            writer: Mutex::new(writer),
            stream,
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
        });
        let thread_conn = Arc::clone(&conn);
        let thread_metrics = Arc::clone(&self.metrics);
        let max_frame = self.config.max_frame;
        std::thread::Builder::new()
            .name("tcpchannel-reader".into())
            .spawn(move || reader_loop(thread_conn, reader, thread_metrics, max_frame))
            .map_err(|e| NetError::Disconnected(format!("spawn reader: {e}")))?;
        *slot = Some(Arc::clone(&conn));
        Ok(conn)
    }

    /// Sends one request without waiting for its response — the pipelining
    /// primitive. Call [`PendingReply::wait`] to collect the reply; any
    /// number of submissions may be outstanding per connection.
    ///
    /// # Errors
    ///
    /// [`NetError::FrameTooLarge`] when the framed request would exceed the
    /// configured cap (nothing is sent); [`NetError::Disconnected`] when
    /// dialing or writing fails.
    pub fn submit(&self, route: &str, payload: &[u8]) -> Result<PendingReply, NetError> {
        let body = encode_request(route, payload);
        if body.len() as u64 + 8 > self.config.max_frame as u64 {
            return Err(NetError::FrameTooLarge(format!(
                "{} byte request exceeds {} byte frame limit",
                body.len() + 8,
                self.config.max_frame
            )));
        }
        let conn = self.ensure_conn()?;
        let corr = self.corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        conn.pending.lock().insert(corr, tx);
        let frame = encode_wire_frame(corr, &body);
        let write = {
            let mut w = conn.writer.lock();
            w.write_all(&frame).and_then(|()| w.flush())
        };
        if let Err(e) = write {
            conn.pending.lock().remove(&corr);
            let err = NetError::Disconnected(format!("write: {e}"));
            conn.fail_all(&err);
            return Err(err);
        }
        self.metrics.bytes_sent.fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(PendingReply { corr, rx, conn, metrics: Arc::clone(&self.metrics), started: Instant::now() })
    }
}

impl std::fmt::Debug for TcpChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpChannel").field("addr", &self.addr).field("config", &self.config).finish()
    }
}

impl Transport for TcpChannel {
    fn call_with_deadline(&self, route: &str, payload: &[u8], deadline: Option<Duration>) -> Result<Vec<u8>, NetError> {
        self.submit(route, payload)?.wait(deadline)
    }

    fn advance(&self, delta: Duration) {
        // A real transport waits in real time; the clock metric still
        // advances so breaker cooldowns observe the pause.
        self.metrics.virtual_nanos.fetch_add(delta.as_nanos() as u64, Ordering::Relaxed);
        if !delta.is_zero() {
            std::thread::sleep(delta);
        }
    }

    fn metrics(&self) -> &ChannelMetrics {
        &self.metrics
    }
}

/// A response not yet collected (returned by [`TcpChannel::submit`]).
pub struct PendingReply {
    corr: u64,
    rx: mpsc::Receiver<Result<Vec<u8>, NetError>>,
    conn: Arc<Conn>,
    metrics: Arc<ChannelMetrics>,
    started: Instant,
}

impl PendingReply {
    /// The correlation id riding the wire for this request.
    pub fn corr_id(&self) -> u64 {
        self.corr
    }

    /// Blocks until the response arrives (or `deadline` elapses), then
    /// decodes it. Wall time spent waiting is charged to the channel's
    /// clock metric.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] past the deadline (the request may still
    /// execute remotely), [`NetError::Disconnected`] when the connection
    /// died first, plus whatever error the response itself carries.
    pub fn wait(self, deadline: Option<Duration>) -> Result<Vec<u8>, NetError> {
        let received = match deadline {
            Some(limit) => match self.rx.recv_timeout(limit) {
                Ok(r) => Some(r),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    Some(Err(NetError::Disconnected("connection lost".into())))
                }
            },
            None => match self.rx.recv() {
                Ok(r) => Some(r),
                Err(_) => Some(Err(NetError::Disconnected("connection lost".into()))),
            },
        };
        let result = match received {
            Some(Ok(body)) => {
                self.metrics.round_trips.fetch_add(1, Ordering::Relaxed);
                decode_response(&body)
            }
            Some(Err(e)) => Err(e),
            None => {
                // Late responses to this id are dropped by the reader.
                self.conn.pending.lock().remove(&self.corr);
                self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                Err(NetError::Timeout)
            }
        };
        self.metrics.virtual_nanos.fetch_add(self.started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }
}

/// Drains response frames into the pending table until the stream dies.
fn reader_loop(conn: Arc<Conn>, mut stream: TcpStream, metrics: Arc<ChannelMetrics>, max_frame: u32) {
    let mut decoder = FrameDecoder::new(max_frame);
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => return conn.fail_all(&NetError::Disconnected("connection closed by peer".into())),
            Ok(n) => n,
            Err(e) => return conn.fail_all(&NetError::Disconnected(format!("read: {e}"))),
        };
        metrics.bytes_received.fetch_add(n as u64, Ordering::Relaxed);
        decoder.extend(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    if frame.corr_id == CONN_ERROR_CORR {
                        // Connection-level error: the server is telling us
                        // why it is about to hang up.
                        let err = match decode_response(&frame.body) {
                            Err(e) => e,
                            Ok(_) => NetError::MalformedFrame,
                        };
                        return conn.fail_all(&err);
                    }
                    // An id we no longer track (timed-out caller) is dropped.
                    let tx = conn.pending.lock().remove(&frame.corr_id);
                    if let Some(tx) = tx {
                        let _ = tx.send(Ok(frame.body));
                    }
                }
                Ok(None) => break,
                Err(e) => return conn.fail_all(&e.into_net()),
            }
        }
    }
}

// ---------------------------------------------------------------- server

/// Server-side knobs for [`CloudServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads serving connections (each connection is owned by one
    /// worker at a time; its pipelined requests execute sequentially, so
    /// responses leave in request order).
    pub workers: usize,
    /// Frame `len` cap, both directions.
    pub max_frame: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 4, max_frame: DEFAULT_MAX_FRAME }
    }
}

/// A TCP server exposing a [`CloudService`] over the [`crate::tcp`] wire
/// protocol: an accept loop hands connections to a fixed worker pool; each
/// worker decodes frames, dispatches `route`/`payload` to the service and
/// writes the response frame under the request's correlation id. Requests
/// on one connection are served in arrival order (pipelined responses stay
/// ordered); different connections proceed in parallel across workers.
///
/// `sys/ping` ([`PING_ROUTE`]) is answered by the server itself with a
/// payload echo. Oversized or corrupt frames are answered with a
/// connection-level error frame (correlation id [`CONN_ERROR_CORR`]) and
/// the connection is closed — never an unbounded allocation.
pub struct CloudServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    kill_after: Arc<AtomicI64>,
    served: Arc<AtomicU64>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl CloudServer {
    /// Binds `addr` (use port 0 for an ephemeral pick, then read
    /// [`CloudServer::local_addr`]) and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Socket bind/configure failures.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<dyn CloudService>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let kill_after = Arc::new(AtomicI64::new(-1));
        let served = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::new();
        for i in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let kill_after = Arc::clone(&kill_after);
            let served = Arc::clone(&served);
            let max_frame = config.max_frame;
            workers.push(std::thread::Builder::new().name(format!("cloudd-worker-{i}")).spawn(move || loop {
                let next = rx.lock().recv();
                match next {
                    Ok(stream) => serve_conn(stream, &*service, &shutdown, &kill_after, &served, max_frame),
                    Err(_) => return,
                }
            })?);
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_conns = Arc::clone(&conns);
        let accept = std::thread::Builder::new().name("cloudd-accept".into()).spawn(move || {
            while !accept_shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        if let Ok(clone) = stream.try_clone() {
                            accept_conns.lock().push(clone);
                        }
                        if tx.send(stream).is_err() {
                            return;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            // Dropping `tx` here retires idle workers.
        })?;

        Ok(CloudServer { addr: local, shutdown, conns, kill_after, served, accept: Some(accept), workers })
    }

    /// The bound address (including the kernel-picked ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served (responses written or deliberately dropped).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Abruptly severs every live connection (the listener keeps
    /// accepting). From the client's side this is a server crash mid-
    /// conversation: in-flight calls fail with a transient
    /// [`NetError::Disconnected`] and the next call reconnects.
    pub fn kill_connections(&self) {
        let mut conns = self.conns.lock();
        for stream in conns.drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Deterministic crash injection: after `n` more requests are applied,
    /// the serving connection closes *before* writing that request's
    /// response — the request executed, the ack is lost. `n = 0` kills on
    /// the next request. The classic retry-ambiguity the idempotency
    /// envelope exists for; disarmed after firing once.
    pub fn kill_after_applies(&self, n: u64) {
        self.kill_after.store(n as i64, Ordering::SeqCst);
    }

    /// Stops accepting, severs connections and joins the threads.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.kill_connections();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for CloudServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for CloudServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudServer").field("addr", &self.addr).field("served", &self.served()).finish()
    }
}

/// Serves one connection to completion: frames in, responses out, in
/// request order.
fn serve_conn(
    mut stream: TcpStream,
    service: &dyn CloudService,
    shutdown: &AtomicBool,
    kill_after: &AtomicI64,
    served: &AtomicU64,
    max_frame: u32,
) {
    let _ = stream.set_nodelay(true);
    // A finite read timeout lets the worker observe shutdown even if the
    // peer holds the connection open silently.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut decoder = FrameDecoder::new(max_frame);
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => return,
        };
        decoder.extend(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    if !respond(&mut stream, service, kill_after, served, max_frame, &frame) {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Tell the peer why, then hang up: a framing error
                    // poisons the stream.
                    let body = encode_response(&Err(e.into_net()));
                    let _ = stream.write_all(&encode_wire_frame(CONN_ERROR_CORR, &body));
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
        }
    }
}

/// Handles one request frame; `false` means the connection must close.
fn respond(
    stream: &mut TcpStream,
    service: &dyn CloudService,
    kill_after: &AtomicI64,
    served: &AtomicU64,
    max_frame: u32,
    frame: &Frame,
) -> bool {
    let result = match decode_request(&frame.body) {
        Ok((route, payload)) => {
            if route == PING_ROUTE {
                Ok(payload)
            } else {
                service.handle(&route, &payload)
            }
        }
        Err(e) => Err(e),
    };
    served.fetch_add(1, Ordering::Relaxed);

    // Armed crash point: the request above was applied; drop its ack.
    let fired = kill_after.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| (v >= 0).then(|| v - 1));
    if fired == Ok(0) {
        return false;
    }

    let mut body = encode_response(&result);
    if body.len() as u64 + 8 > max_frame as u64 {
        // Clamp instead of shipping a frame the client must reject.
        body = encode_response(&Err(NetError::FrameTooLarge(format!(
            "{} byte response exceeds {} byte frame limit",
            body.len() + 8,
            max_frame
        ))));
    }
    stream.write_all(&encode_wire_frame(frame.corr_id, &body)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_frame_round_trips() {
        let frame = encode_wire_frame(42, b"hello");
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.extend(&frame);
        let got = dec.next_frame().unwrap().unwrap();
        assert_eq!(got, Frame { corr_id: 42, body: b"hello".to_vec() });
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn strict_prefixes_need_more_bytes() {
        let frame = encode_wire_frame(7, b"payload");
        for cut in 0..frame.len() {
            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
            dec.extend(&frame[..cut]);
            assert_eq!(dec.next_frame().unwrap(), None, "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn corrupt_crc_rejected() {
        let mut frame = encode_wire_frame(7, b"payload");
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.extend(&frame);
        assert_eq!(dec.next_frame(), Err(FrameError::BadCrc));
    }

    #[test]
    fn oversized_announcement_rejected_before_buffering() {
        let mut dec = FrameDecoder::new(64);
        dec.extend(&1_000_000u32.to_be_bytes());
        assert_eq!(dec.next_frame(), Err(FrameError::TooLarge { announced: 1_000_000, max: 64 }));
    }

    #[test]
    fn runt_length_rejected() {
        let mut dec = FrameDecoder::new(64);
        dec.extend(&3u32.to_be_bytes());
        assert_eq!(dec.next_frame(), Err(FrameError::Runt(3)));
    }

    #[test]
    fn crc32_known_vector() {
        // Same IEEE polynomial as the kvstore WAL framing.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
