//! The gateway↔cloud hop as a trait.
//!
//! Everything above the wire — [`ResilientChannel`](crate::ResilientChannel)
//! retries, deadlines, the circuit breaker, the `obs/traced` envelope, the
//! gateway engines — speaks to the cloud through one request/response
//! operation. [`Transport`] names that operation so two very different
//! implementations can sit under the same stack:
//!
//! * [`Channel`] — the deterministic in-process simulation (seeded faults,
//!   crash injection, a virtual clock). Every fault/crash/storm suite runs
//!   over it unchanged.
//! * [`TcpChannel`](crate::tcp::TcpChannel) — a real socket to a
//!   `datablinder-cloudd` server, speaking the length-prefixed CRC-framed
//!   protocol of [`crate::tcp`], with many pipelined requests in flight per
//!   connection.
//!
//! The differential transport suite (`crates/core/tests/
//! transport_differential.rs`) holds the two to byte-identical behaviour.

use std::time::Duration;

use crate::{Channel, ChannelMetrics, NetError};

/// One request/response hop between the gateway and the cloud.
///
/// Implementations must be safe to share across threads: concurrent calls
/// may be in flight at once (the shared-gateway deployment pipelines many
/// requests through one transport).
pub trait Transport: Send + Sync {
    /// Performs one round trip, giving up after `deadline` if set.
    ///
    /// # Errors
    ///
    /// Any [`NetError`]; transient transport conditions ([`NetError::Timeout`],
    /// [`NetError::Disconnected`]) are worth retrying one layer up.
    fn call_with_deadline(&self, route: &str, payload: &[u8], deadline: Option<Duration>) -> Result<Vec<u8>, NetError>;

    /// Performs one round trip with no deadline.
    ///
    /// # Errors
    ///
    /// As [`Transport::call_with_deadline`].
    fn call(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.call_with_deadline(route, payload, None)
    }

    /// Waits out `delta`: simulated transports charge their virtual clock,
    /// real transports actually sleep. Retry backoff goes through here.
    fn advance(&self, delta: Duration);

    /// Traffic counters for this transport. The clock readable through
    /// [`ChannelMetrics::virtual_time`] must move monotonically with
    /// traffic and [`Transport::advance`] — the circuit breaker uses it as
    /// its time source.
    fn metrics(&self) -> &ChannelMetrics;
}

impl Transport for Channel {
    fn call_with_deadline(&self, route: &str, payload: &[u8], deadline: Option<Duration>) -> Result<Vec<u8>, NetError> {
        Channel::call_with_deadline(self, route, payload, deadline)
    }

    fn advance(&self, delta: Duration) {
        Channel::advance(self, delta);
    }

    fn metrics(&self) -> &ChannelMetrics {
        Channel::metrics(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyModel;
    use std::sync::Arc;

    #[test]
    fn channel_is_a_transport() {
        let ch = Channel::connect(
            |_: &str, p: &[u8]| -> Result<Vec<u8>, NetError> { Ok(p.to_vec()) },
            LatencyModel::instant(),
        );
        let t: Arc<dyn Transport> = Arc::new(ch);
        assert_eq!(t.call("echo", b"x").unwrap(), b"x");
        assert_eq!(t.metrics().round_trips(), 1);
        t.advance(Duration::from_micros(5));
        assert_eq!(t.metrics().virtual_time(), Duration::from_micros(5));
    }
}
