//! Live-socket tests for the TCP transport: pipelining and correlation,
//! oversized-frame handling, connection kills and reconnects — everything
//! ISSUE 9 calls the "client/server protocol layer" rigor, run against a
//! real loopback [`CloudServer`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use datablinder_netsim::tcp::{crc32, encode_wire_frame, Frame, CONN_ERROR_CORR, PING_ROUTE};
use datablinder_netsim::{
    decode_response, encode_request, CloudServer, FrameDecoder, NetError, ResilienceConfig, ResilientChannel,
    RetryPolicy, ServerConfig, TcpChannel, TcpConfig, Transport,
};

/// Echo service with a controllable failure route.
fn echo_service() -> Arc<dyn datablinder_netsim::CloudService> {
    Arc::new(|route: &str, payload: &[u8]| -> Result<Vec<u8>, NetError> {
        match route {
            "echo" => Ok(payload.to_vec()),
            "rev" => Ok(payload.iter().rev().copied().collect()),
            "fail" => Err(NetError::Remote("boom".into())),
            other => Err(NetError::UnknownRoute(other.to_string())),
        }
    })
}

fn server() -> CloudServer {
    CloudServer::bind("127.0.0.1:0", echo_service(), ServerConfig::default()).expect("bind loopback")
}

fn client(server: &CloudServer) -> TcpChannel {
    TcpChannel::connect(server.local_addr(), TcpConfig::default()).expect("resolve loopback")
}

/// Reads frames off a raw socket until `n` have arrived.
fn read_frames(stream: &mut TcpStream, n: usize) -> Vec<Frame> {
    let mut decoder = FrameDecoder::new(8 * 1024 * 1024);
    let mut frames = Vec::new();
    let mut buf = [0u8; 4096];
    while frames.len() < n {
        let got = stream.read(&mut buf).expect("read");
        assert_ne!(got, 0, "server closed early after {} frames", frames.len());
        decoder.extend(&buf[..got]);
        while let Some(frame) = decoder.next_frame().expect("well-formed response stream") {
            frames.push(frame);
        }
    }
    frames
}

#[test]
fn ping_round_trip() {
    let srv = server();
    let ch = client(&srv);
    assert_eq!(ch.call(PING_ROUTE, b"are you there").unwrap(), b"are you there");
    assert_eq!(ch.metrics().round_trips(), 1);
    assert!(ch.metrics().bytes_sent() > 0);
    assert!(ch.metrics().bytes_received() > 0);
}

#[test]
fn routes_and_errors_cross_the_wire_typed() {
    let srv = server();
    let ch = client(&srv);
    assert_eq!(ch.call("echo", b"x").unwrap(), b"x");
    assert_eq!(ch.call("rev", b"abc").unwrap(), b"cba");
    assert_eq!(ch.call("fail", b""), Err(NetError::Remote("boom".into())));
    assert_eq!(ch.call("nope", b""), Err(NetError::UnknownRoute("nope".into())));
}

#[test]
fn pipelined_requests_come_back_in_order_with_matching_corr_ids() {
    // Raw socket: write N request frames before reading a single byte of
    // response. The server must answer all of them, in request order, each
    // under its own correlation id.
    let srv = server();
    let mut stream = TcpStream::connect(srv.local_addr()).unwrap();
    let n = 64u64;
    let mut blob = Vec::new();
    for i in 0..n {
        let body = encode_request("echo", format!("req-{i}").as_bytes());
        blob.extend_from_slice(&encode_wire_frame(i + 1, &body));
    }
    stream.write_all(&blob).unwrap();

    let frames = read_frames(&mut stream, n as usize);
    for (idx, frame) in frames.iter().enumerate() {
        assert_eq!(frame.corr_id, idx as u64 + 1, "responses arrive in request order");
        let body = decode_response(&frame.body).expect("success response");
        assert_eq!(body, format!("req-{idx}").as_bytes());
    }
}

#[test]
fn tcp_channel_pipelines_and_correlates_out_of_order_waits() {
    let srv = server();
    let ch = client(&srv);
    // Submit everything before collecting anything.
    let pending: Vec<_> = (0..32u32).map(|i| ch.submit("echo", &i.to_be_bytes()).expect("submit")).collect();
    // Collect in reverse — correlation, not arrival order, must pair
    // replies with requests.
    for (i, reply) in pending.into_iter().enumerate().rev() {
        assert_eq!(reply.wait(Some(Duration::from_secs(5))).unwrap(), (i as u32).to_be_bytes());
    }
    assert_eq!(ch.metrics().round_trips(), 32);
}

#[test]
fn concurrent_callers_share_one_connection() {
    let srv = server();
    let ch = Arc::new(client(&srv));
    let mut handles = Vec::new();
    for t in 0..8u8 {
        let ch = Arc::clone(&ch);
        handles.push(std::thread::spawn(move || {
            for i in 0..50u8 {
                let payload = [t, i];
                assert_eq!(ch.call("echo", &payload).unwrap(), payload);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(ch.metrics().round_trips(), 8 * 50);
}

#[test]
fn oversized_request_rejected_locally_without_sending() {
    let srv = server();
    let ch = TcpChannel::connect(srv.local_addr(), TcpConfig { max_frame: 256, ..TcpConfig::default() }).unwrap();
    let err = ch.call("echo", &[0u8; 1024]);
    assert!(matches!(err, Err(NetError::FrameTooLarge(_))), "got {err:?}");
    assert_eq!(ch.metrics().bytes_sent(), 0, "nothing hit the wire");
    // The channel is still usable for well-sized requests.
    assert_eq!(ch.call("echo", b"small").unwrap(), b"small");
}

#[test]
fn oversized_frame_closes_connection_with_typed_error() {
    // A server with a small frame cap: announcing a huge frame draws a
    // corr-0 FrameTooLarge error frame, then the connection closes — no
    // unbounded allocation server-side.
    let srv =
        CloudServer::bind("127.0.0.1:0", echo_service(), ServerConfig { max_frame: 256, workers: 2 }).expect("bind");
    let mut stream = TcpStream::connect(srv.local_addr()).unwrap();
    stream.write_all(&(1_000_000u32).to_be_bytes()).unwrap();

    let frames = read_frames(&mut stream, 1);
    assert_eq!(frames[0].corr_id, CONN_ERROR_CORR);
    let err = decode_response(&frames[0].body).unwrap_err();
    assert!(matches!(err, NetError::FrameTooLarge(_)), "got {err:?}");
    // And the server hangs up.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no bytes after the error frame");
}

#[test]
fn corrupt_crc_closes_connection_with_typed_error() {
    let srv = server();
    let mut stream = TcpStream::connect(srv.local_addr()).unwrap();
    let mut frame = encode_wire_frame(1, &encode_request("echo", b"x"));
    let mid = frame.len() / 2;
    frame[mid] ^= 0x55;
    stream.write_all(&frame).unwrap();

    let frames = read_frames(&mut stream, 1);
    assert_eq!(frames[0].corr_id, CONN_ERROR_CORR);
    assert_eq!(decode_response(&frames[0].body), Err(NetError::MalformedFrame));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
}

#[test]
fn killed_connection_surfaces_disconnected_then_reconnects() {
    let srv = server();
    let ch = client(&srv);
    assert_eq!(ch.call("echo", b"before").unwrap(), b"before");

    srv.kill_connections();
    // The in-flight-free client notices on its next call: either the write
    // fails or the reader already marked the connection dead. Eventually a
    // fresh dial succeeds because the listener never stopped.
    let mut saw_disconnect = false;
    for _ in 0..10 {
        match ch.call("echo", b"after") {
            Ok(body) => {
                assert_eq!(body, b"after");
                assert!(saw_disconnect || ch.metrics().round_trips() >= 2, "reconnected");
                return;
            }
            Err(NetError::Disconnected(_)) => saw_disconnect = true,
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    panic!("never reconnected after kill_connections");
}

#[test]
fn resilient_channel_retries_across_a_kill() {
    // The full stack: ResilientChannel::over(TcpChannel) absorbs the kill
    // with a retry, exactly as it absorbs netsim's injected drops.
    let srv = server();
    let tcp = Arc::new(client(&srv));
    let ch = ResilientChannel::over(
        tcp,
        ResilienceConfig {
            retry: RetryPolicy { max_attempts: 5, ..RetryPolicy::default() },
            ..ResilienceConfig::default()
        },
    );
    assert_eq!(ch.call("echo", b"warm").unwrap(), b"warm");
    srv.kill_connections();
    assert_eq!(ch.call("echo", b"healed").unwrap(), b"healed", "retry reconnects transparently");
    assert!(ch.metrics().attempts() >= 2 || ch.metrics().round_trips() >= 2);
}

#[test]
fn deadline_elapsing_yields_timeout() {
    // A service that stalls long enough for a 10ms deadline to pass.
    let slow: Arc<dyn datablinder_netsim::CloudService> = Arc::new(|_: &str, p: &[u8]| -> Result<Vec<u8>, NetError> {
        std::thread::sleep(Duration::from_millis(300));
        Ok(p.to_vec())
    });
    let srv = CloudServer::bind("127.0.0.1:0", slow, ServerConfig::default()).unwrap();
    let ch = client(&srv);
    let err = ch.call_with_deadline("slow", b"x", Some(Duration::from_millis(10)));
    assert_eq!(err, Err(NetError::Timeout));
    assert_eq!(ch.metrics().timeouts(), 1);
    // The late response is dropped, not misdelivered to the next call.
    assert_eq!(ch.call_with_deadline("slow", b"next", Some(Duration::from_secs(5))).unwrap(), b"next");
}

#[test]
fn server_counts_served_requests() {
    let srv = server();
    let ch = client(&srv);
    for i in 0..5u8 {
        ch.call("echo", &[i]).unwrap();
    }
    assert_eq!(srv.served(), 5);
}

#[test]
fn crc32_matches_wal_polynomial() {
    // Pin the polynomial so the wire and the WAL never drift apart.
    assert_eq!(crc32(b""), 0);
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}
