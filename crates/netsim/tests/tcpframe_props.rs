//! Property tests for the TCP frame codec, mirroring the strict-prefix
//! discipline of `tests/proto_props.rs`: every strict prefix of a valid
//! frame is "need more bytes", corruption is rejected without panicking,
//! and decoding is invariant under how the byte stream is chunked across
//! `read()` boundaries.

use datablinder_netsim::tcp::{encode_wire_frame, Frame, DEFAULT_MAX_FRAME};
use datablinder_netsim::{FrameDecoder, FrameError};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = (u64, Vec<u8>)> {
    (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..512))
}

/// Decodes `bytes` in one shot, draining every complete frame.
fn decode_one_shot(bytes: &[u8]) -> Result<Vec<Frame>, FrameError> {
    let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
    dec.extend(bytes);
    let mut frames = Vec::new();
    while let Some(f) = dec.next_frame()? {
        frames.push(f);
    }
    Ok(frames)
}

/// Decodes `bytes` split at the given cut points, draining after each push —
/// the shape of a socket read loop with arbitrary packet boundaries.
fn decode_chunked(bytes: &[u8], cuts: &[usize]) -> Result<Vec<Frame>, FrameError> {
    let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
    let mut frames = Vec::new();
    let mut last = 0;
    let mut offsets: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    offsets.sort_unstable();
    for off in offsets.into_iter().chain(std::iter::once(bytes.len())) {
        if off < last {
            continue;
        }
        dec.extend(&bytes[last..off]);
        last = off;
        while let Some(f) = dec.next_frame()? {
            frames.push(f);
        }
    }
    Ok(frames)
}

proptest! {
    #[test]
    fn round_trip((corr, body) in arb_frame()) {
        let encoded = encode_wire_frame(corr, &body);
        let frames = decode_one_shot(&encoded).expect("valid frame decodes");
        prop_assert_eq!(frames, vec![Frame { corr_id: corr, body }]);
    }

    #[test]
    fn every_strict_prefix_is_incomplete((corr, body) in arb_frame()) {
        let encoded = encode_wire_frame(corr, &body);
        for cut in 0..encoded.len() {
            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
            dec.extend(&encoded[..cut]);
            // Never an error, never a frame: strictly "need more bytes".
            prop_assert_eq!(dec.next_frame(), Ok(None), "prefix len {}", cut);
        }
    }

    #[test]
    fn single_byte_corruption_never_panics_or_misdelivers(
        (corr, body) in arb_frame(),
        pos in any::<usize>(),
        flip in 1..=255u8,
    ) {
        let mut encoded = encode_wire_frame(corr, &body);
        let pos = pos % encoded.len();
        encoded[pos] ^= flip;
        // Corruption may surface as an error (length/CRC) or as a frame —
        // but a delivered frame must never be the original (the CRC over
        // corr||body would have had to collide with a flipped bit, which a
        // single-bit-error-detecting CRC rules out), unless the corrupted
        // byte produced an identical encoding, which a XOR with a nonzero
        // mask cannot.
        if let Ok(frames) = decode_one_shot(&encoded) {
            prop_assert!(
                frames != vec![Frame { corr_id: corr, body: body.clone() }],
                "corrupted stream decoded to the original frame"
            );
        } // Err(_) — rejected — is the expected outcome.
    }

    #[test]
    fn chunking_is_invisible(
        frames in proptest::collection::vec(arb_frame(), 1..8),
        cuts in proptest::collection::vec(any::<usize>(), 0..32),
    ) {
        let mut stream = Vec::new();
        for (corr, body) in &frames {
            stream.extend_from_slice(&encode_wire_frame(*corr, body));
        }
        let one_shot = decode_one_shot(&stream).expect("valid stream");
        let chunked = decode_chunked(&stream, &cuts).expect("valid stream, chunked");
        prop_assert_eq!(one_shot.clone(), chunked);
        let expect: Vec<Frame> =
            frames.into_iter().map(|(corr_id, body)| Frame { corr_id, body }).collect();
        prop_assert_eq!(one_shot, expect);
    }

    #[test]
    fn trailing_garbage_after_valid_frames_is_contained(
        (corr, body) in arb_frame(),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        // A valid frame followed by garbage: the frame comes out intact;
        // the garbage either waits for more bytes or errors — never panics.
        let mut stream = encode_wire_frame(corr, &body);
        stream.extend_from_slice(&garbage);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.extend(&stream);
        prop_assert_eq!(dec.next_frame(), Ok(Some(Frame { corr_id: corr, body })));
        let _ = dec.next_frame(); // any Result is fine; no panic, no bogus original
    }
}
