//! Cluster-wide snapshot federation: folding per-node [`Snapshot`]s into
//! one [`ClusterSnapshot`] with per-node breakouts and a merged view.
//!
//! Federation is lossless where it can be: histograms merge through their
//! raw buckets (see [`HistogramSummary::to_histogram`]), counters and span
//! totals sum, EWMAs combine weighted by sample count, and ledger cells
//! with the same `(field, op)` key keep the worst observation. Traced
//! spans concatenate — they carry process-unique ids, so trees recorded
//! across different nodes reassemble without renumbering.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::snapshot::{EwmaSummary, HistogramSummary, LedgerEntry, Snapshot};

/// A federated view over every recorder in a cluster: the per-node
/// snapshots (each carrying its node label) plus the merged whole.
#[derive(Debug, Clone, Default)]
pub struct ClusterSnapshot {
    /// Per-node snapshots, in cluster slot order.
    pub nodes: Vec<Snapshot>,
    /// Everything folded together (see [`merge_snapshots`]).
    pub merged: Snapshot,
}

impl ClusterSnapshot {
    /// Federates `nodes` into per-node breakouts plus a merged view.
    pub fn federate(nodes: Vec<Snapshot>) -> Self {
        let merged = merge_snapshots(&nodes);
        ClusterSnapshot { nodes, merged }
    }

    /// The snapshot labelled `label`, if any node carries it.
    pub fn node(&self, label: &str) -> Option<&Snapshot> {
        self.nodes.iter().find(|s| s.label.as_deref() == Some(label))
    }

    /// Renders the federation as one JSON document:
    /// `{"nodes":[…],"merged":{…}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"nodes\":[");
        for (i, node) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&node.to_json());
        }
        out.push_str("],\"merged\":");
        out.push_str(&self.merged.to_json());
        out.push('}');
        out
    }

    /// Parses a federation back from its [`ClusterSnapshot::to_json`] form.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field.
    pub fn from_json(text: &str) -> Result<ClusterSnapshot, String> {
        let doc = Json::parse(text)?;
        let mut nodes = Vec::new();
        for node in doc.get("nodes").and_then(Json::as_array).unwrap_or(&[]) {
            nodes.push(Snapshot::from_value(node)?);
        }
        let merged = match doc.get("merged") {
            Some(m) => Snapshot::from_value(m)?,
            None => Snapshot::default(),
        };
        Ok(ClusterSnapshot { nodes, merged })
    }
}

/// Folds `snapshots` into one: counters/gauges/span totals summed by name,
/// histograms merged through raw buckets, EWMAs weighted by samples,
/// ledger cells keyed by `(field, op)` keeping the worst observation, and
/// traced spans concatenated. The merged snapshot carries no label.
pub fn merge_snapshots(snapshots: &[Snapshot]) -> Snapshot {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, i64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, HistogramSummary> = BTreeMap::new();
    let mut ewmas: BTreeMap<String, EwmaSummary> = BTreeMap::new();
    let mut ledger: BTreeMap<(String, String), LedgerEntry> = BTreeMap::new();
    let mut merged = Snapshot::default();
    for snap in snapshots {
        for (name, value) in &snap.counters {
            *counters.entry(name.clone()).or_default() += value;
        }
        for (name, value) in &snap.gauges {
            *gauges.entry(name.clone()).or_default() += value;
        }
        for h in &snap.histograms {
            match histograms.get_mut(&h.name) {
                Some(existing) => {
                    let mut folded = existing.to_histogram();
                    folded.merge(&h.to_histogram());
                    *existing = HistogramSummary::of(&h.name, &folded);
                }
                None => {
                    histograms.insert(h.name.clone(), h.clone());
                }
            }
        }
        for e in &snap.ewmas {
            match ewmas.get_mut(&e.name) {
                Some(existing) => {
                    let total = existing.samples + e.samples;
                    if total > 0 {
                        existing.nanos =
                            (existing.nanos * existing.samples as f64 + e.nanos * e.samples as f64) / total as f64;
                    }
                    existing.samples = total;
                }
                None => {
                    ewmas.insert(e.name.clone(), e.clone());
                }
            }
        }
        for e in &snap.ledger {
            let key = (e.field.clone(), e.op.clone());
            match ledger.get_mut(&key) {
                Some(existing) => {
                    existing.count += e.count;
                    existing.declared = existing.declared.min(e.declared);
                    if e.observed > existing.observed {
                        existing.observed = e.observed;
                        existing.tactic = e.tactic.clone();
                    }
                }
                None => {
                    ledger.insert(key, e.clone());
                }
            }
        }
        merged.trace_spans.extend(snap.trace_spans.iter().cloned());
        merged.spans_recorded += snap.spans_recorded;
        merged.spans_dropped += snap.spans_dropped;
    }
    merged.counters = counters.into_iter().collect();
    merged.gauges = gauges.into_iter().collect();
    merged.histograms = histograms.into_values().collect();
    merged.ewmas = ewmas.into_values().collect();
    merged.ledger = ledger.into_values().collect();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use std::time::Duration;

    fn node_snapshot(label: &str, micros: u64) -> Snapshot {
        let r = Recorder::new();
        r.set_label(label);
        r.record_op("cloud.apply", None, None, Duration::from_micros(micros), true);
        r.count("cloud.wal.appends", 2);
        r.ewma_observe("cloud.apply.ewma", Duration::from_micros(micros));
        r.ledger().record("subject", "equality", "mitra", 2, 2);
        r.snapshot()
    }

    #[test]
    fn merged_counters_and_histograms_equal_union() {
        let a = node_snapshot("node0", 100);
        let b = node_snapshot("node1", 900);
        let merged = merge_snapshots(&[a.clone(), b.clone()]);
        assert_eq!(merged.counter("cloud.apply.count"), 2);
        assert_eq!(merged.counter("cloud.wal.appends"), 4);
        let h = merged.histogram("cloud.apply.latency").unwrap();
        assert_eq!(h.count, 2);
        // The merged histogram must equal recording the union directly.
        let mut union = crate::histogram::LatencyHistogram::new();
        union.record(Duration::from_micros(100));
        union.record(Duration::from_micros(900));
        assert_eq!(h, &HistogramSummary::of("cloud.apply.latency", &union));
        let e = merged.ewma("cloud.apply.ewma").unwrap();
        assert_eq!(e.samples, 2);
        assert!((e.nanos - 500_000.0).abs() < 1.0, "sample-weighted mean: {}", e.nanos);
        assert_eq!(merged.ledger.len(), 1, "same (field, op) cells fold");
        assert_eq!(merged.ledger[0].count, 2);
        assert_eq!(merged.spans_recorded, a.spans_recorded + b.spans_recorded);
    }

    #[test]
    fn federation_json_round_trips() {
        let fed = ClusterSnapshot::federate(vec![node_snapshot("node0", 10), node_snapshot("node1", 20)]);
        let back = ClusterSnapshot::from_json(&fed.to_json()).unwrap();
        assert_eq!(back.nodes.len(), 2);
        assert_eq!(back.node("node1").unwrap().counter("cloud.apply.count"), 1);
        assert!(back.node("node9").is_none());
        assert_eq!(back.merged.counter("cloud.apply.count"), 2);
        assert_eq!(back.merged.histogram("cloud.apply.latency").unwrap().count, 2);
    }
}
