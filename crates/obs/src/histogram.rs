//! Log-linear latency histograms (HdrHistogram-style, fixed memory).
//!
//! [`LatencyHistogram`] is the single-threaded accumulator (promoted here
//! from `datablinder-workload`, which re-exports it); [`AtomicHistogram`]
//! shares its bucket math but records lock-free from any thread, for the
//! metrics registry's hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of sub-buckets per power-of-two bucket (resolution ~1/32).
const SUB_BUCKETS: usize = 32;
/// Covers 1 ns .. ~2^40 ns (~18 minutes).
const BUCKETS: usize = 40;

/// A latency histogram with bounded error (~3%) and fixed memory.
///
/// # Examples
///
/// ```
/// use datablinder_obs::histogram::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.50) >= Duration::from_millis(2));
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u128,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; BUCKETS * SUB_BUCKETS], total: 0, sum_nanos: 0, max_nanos: 0 }
    }

    fn index(nanos: u64) -> usize {
        if nanos < SUB_BUCKETS as u64 {
            return nanos as usize;
        }
        let bucket = 63 - nanos.leading_zeros() as usize - SUB_BUCKETS.trailing_zeros() as usize;
        let sub = (nanos >> bucket) as usize; // in [SUB_BUCKETS, 2*SUB_BUCKETS)
        let idx = bucket * SUB_BUCKETS + (sub - SUB_BUCKETS) + SUB_BUCKETS;
        idx.min(BUCKETS * SUB_BUCKETS - 1)
    }

    fn value_of(idx: usize) -> u64 {
        if idx < SUB_BUCKETS {
            return idx as u64;
        }
        let bucket = (idx - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = (idx - SUB_BUCKETS) % SUB_BUCKETS + SUB_BUCKETS;
        (sub as u64) << bucket
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[Self::index(nanos)] += 1;
        self.total += 1;
        self.sum_nanos += nanos as u128;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// The non-empty buckets as `(index, count)` pairs — a sparse, lossless
    /// serialization of the distribution (the federation wire format).
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i as u32, c)).collect()
    }

    /// Rebuilds a histogram from [`LatencyHistogram::nonzero_buckets`]
    /// output plus the exact sum and max. Out-of-range indices are ignored.
    pub fn from_buckets(buckets: &[(u32, u64)], sum_nanos: u64, max_nanos: u64) -> Self {
        let mut h = LatencyHistogram::new();
        for &(idx, count) in buckets {
            if let Some(slot) = h.counts.get_mut(idx as usize) {
                *slot += count;
                h.total += count;
            }
        }
        h.sum_nanos = sum_nanos as u128;
        h.max_nanos = max_nanos;
        h
    }

    /// Sum of all recorded nanoseconds (saturating at `u64::MAX`).
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.min(u64::MAX as u128) as u64
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_nanos / self.total as u128) as u64)
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// The value at quantile `q` in `[0, 1]` (upper bucket bound).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return Duration::ZERO;
        }
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_nanos(Self::value_of(idx));
            }
        }
        self.max()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(0.5))
            .field("p99", &self.percentile(0.99))
            .finish()
    }
}

/// A thread-safe histogram with the same bucket layout as
/// [`LatencyHistogram`]: every bucket is an atomic counter, so concurrent
/// recorders never lock. [`AtomicHistogram::snapshot`] materialises a
/// point-in-time [`LatencyHistogram`] for percentile queries.
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    /// Sum of nanoseconds; u64 overflows after ~584 years of recorded time.
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: (0..BUCKETS * SUB_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Records one sample (lock-free).
    pub fn record(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[LatencyHistogram::index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of samples so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// A point-in-time copy. Buckets are read individually, so a snapshot
    /// taken while recorders run is approximate (never torn per bucket).
    pub fn snapshot(&self) -> LatencyHistogram {
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total = counts.iter().sum();
        LatencyHistogram {
            counts,
            total,
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed) as u128,
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.percentile(0.99), Duration::ZERO);
    }

    #[test]
    fn percentiles_ordered() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        let p50 = h.percentile(0.50);
        let p75 = h.percentile(0.75);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p75 && p75 <= p99);
        // ~3% relative error bound.
        let p50us = p50.as_micros() as f64;
        assert!((p50us - 500.0).abs() / 500.0 < 0.05, "p50 = {p50us}");
    }

    #[test]
    fn mean_exact() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(300));
        assert_eq!(h.mean(), Duration::from_nanos(200));
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_millis(1));
        b.record(Duration::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_millis(100));
    }

    #[test]
    fn buckets_round_trip_losslessly() {
        let mut h = LatencyHistogram::new();
        for i in [1u64, 5, 5, 900, 12_345, 1_000_000] {
            h.record(Duration::from_nanos(i));
        }
        let rebuilt = LatencyHistogram::from_buckets(&h.nonzero_buckets(), h.sum_nanos(), h.max().as_nanos() as u64);
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.mean(), h.mean());
        assert_eq!(rebuilt.max(), h.max());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(rebuilt.percentile(q), h.percentile(q));
        }
    }

    #[test]
    fn index_monotone_and_bounded() {
        let mut prev = 0usize;
        for shift in 0..40u32 {
            let v = 1u64 << shift;
            let idx = LatencyHistogram::index(v);
            assert!(idx >= prev, "index must be monotone at 2^{shift}");
            assert!(idx < BUCKETS * SUB_BUCKETS);
            prev = idx;
            // bucket value bound: value_of(index(v)) <= v
            assert!(LatencyHistogram::value_of(idx) <= v);
        }
        // Saturation at huge values instead of overflow.
        let _ = LatencyHistogram::index(u64::MAX);
    }

    #[test]
    fn relative_error_bounded() {
        for v in [100u64, 999, 12_345, 1_000_000, 123_456_789] {
            let idx = LatencyHistogram::index(v);
            let lo = LatencyHistogram::value_of(idx);
            assert!(lo <= v);
            let err = (v - lo) as f64 / v as f64;
            assert!(err < 0.05, "error {err} at {v}");
        }
    }

    #[test]
    fn atomic_matches_sequential() {
        let a = AtomicHistogram::new();
        let mut s = LatencyHistogram::new();
        for i in 1..=500u64 {
            a.record(Duration::from_micros(i));
            s.record(Duration::from_micros(i));
        }
        let snap = a.snapshot();
        assert_eq!(snap.count(), s.count());
        assert_eq!(snap.mean(), s.mean());
        assert_eq!(snap.max(), s.max());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(snap.percentile(q), s.percentile(q));
        }
    }

    #[test]
    fn atomic_concurrent_exact_total() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        let threads = 8u64;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(Duration::from_nanos(1 + (i ^ t) % 1_000_000));
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), threads * per_thread, "no sample lost or double-counted");
    }
}
