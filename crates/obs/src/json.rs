//! Minimal JSON support: string escaping for the snapshot writer and a
//! small recursive-descent parser used by tests (and the verify smoke
//! run) to prove emitted snapshots are well-formed — this workspace has
//! no JSON dependency to lean on.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r') {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed for metric names;
                            // unpaired surrogates map to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| "bad utf8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&out).unwrap(), Json::Str("a\"b\\c\nd\u{1}".into()));
    }

    #[test]
    fn parses_nested_document() {
        let doc =
            r#"{"counters": [{"name": "gateway.insert.count", "value": 42}], "ok": true, "x": null, "f": -1.5e2}"#;
        let v = Json::parse(doc).unwrap();
        let counters = v.get("counters").unwrap().as_array().unwrap();
        assert_eq!(counters[0].get("name").unwrap().as_str(), Some("gateway.insert.count"));
        assert_eq!(counters[0].get("value").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(-150.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse(" { } ").unwrap(), Json::Obj(vec![]));
    }
}
