//! The leakage audit ledger: observed leakage per field and operation.
//!
//! The SoK on protected database search argues leakage must be accounted
//! per *executed* query, not per scheme on paper. The ledger does exactly
//! that: every instrumented operation records which tactic ran against
//! which field and the leakage level that execution exercised, alongside
//! the level the schema *declared* admissible for the field. A run's
//! observed leakage envelope then falls out of [`LeakageLedger::entries`],
//! and any operation that leaked beyond its declaration out of
//! [`LeakageLedger::violations`].
//!
//! Levels are the Fuller et al. scale encoded as `u8` (1 = Structure …
//! 5 = Order), matching `datablinder_core::model::LeakageLevel as u8` —
//! kept numeric here so this crate stays dependency-free.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::snapshot::LedgerEntry;

/// Human-readable name of a leakage level code (1–5).
pub fn level_name(level: u8) -> &'static str {
    match level {
        1 => "Structure",
        2 => "Identifiers",
        3 => "Predicates",
        4 => "Equalities",
        5 => "Order",
        _ => "Unknown",
    }
}

#[derive(Debug, Clone)]
struct Cell {
    tactic: String,
    observed: u8,
    declared: u8,
    count: u64,
}

/// The ledger: one cell per `(field, operation)` pair, tracking the worst
/// leakage observed across executions.
#[derive(Default)]
pub struct LeakageLedger {
    cells: Mutex<BTreeMap<(String, String), Cell>>,
}

impl LeakageLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        LeakageLedger::default()
    }

    /// Records one executed operation: `op` is the high-level operation
    /// name (`insert`, `equality`, `range`, `boolean`, `aggregate`),
    /// `observed` the leakage level that execution exercised and
    /// `declared` the strongest level the field's protection class admits
    /// (both on the 1–5 scale). Repeated records max-merge `observed`.
    pub fn record(&self, field: &str, op: &str, tactic: &str, observed: u8, declared: u8) {
        let mut cells = self.cells.lock().expect("ledger lock");
        let cell = cells.entry((field.to_string(), op.to_string())).or_insert_with(|| Cell {
            tactic: tactic.to_string(),
            observed,
            declared,
            count: 0,
        });
        if observed > cell.observed {
            cell.observed = observed;
            cell.tactic = tactic.to_string();
        }
        cell.declared = cell.declared.max(declared);
        cell.count += 1;
    }

    /// Every cell, sorted by field then operation.
    pub fn entries(&self) -> Vec<LedgerEntry> {
        self.cells
            .lock()
            .expect("ledger lock")
            .iter()
            .map(|((field, op), c)| LedgerEntry {
                field: field.clone(),
                op: op.clone(),
                tactic: c.tactic.clone(),
                observed: c.observed,
                declared: c.declared,
                count: c.count,
            })
            .collect()
    }

    /// Cells whose observed leakage exceeds the declared admissible level
    /// — executed operations that over-leaked.
    pub fn violations(&self) -> Vec<LedgerEntry> {
        self.entries().into_iter().filter(|e| e.observed > e.declared).collect()
    }

    /// Whether any cell over-leaked.
    pub fn is_clean(&self) -> bool {
        self.violations().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_max_merges() {
        let l = LeakageLedger::new();
        l.record("subject", "equality", "mitra", 2, 2);
        l.record("subject", "equality", "mitra", 2, 2);
        l.record("subject", "equality", "det", 4, 2); // worse tactic ran later
        let e = &l.entries()[0];
        assert_eq!(e.count, 3);
        assert_eq!(e.observed, 4);
        assert_eq!(e.tactic, "det", "tactic tracks the worst observation");
    }

    #[test]
    fn violations_flag_over_leaking_ops() {
        let l = LeakageLedger::new();
        l.record("subject", "equality", "mitra", 2, 2);
        assert!(l.is_clean());
        l.record("status", "boolean", "ope", 5, 3);
        let v = l.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].field, "status");
        assert_eq!(level_name(v[0].observed), "Order");
        assert_eq!(level_name(v[0].declared), "Predicates");
        assert!(!l.is_clean());
    }

    #[test]
    fn level_names_cover_scale() {
        assert_eq!(level_name(1), "Structure");
        assert_eq!(level_name(5), "Order");
        assert_eq!(level_name(9), "Unknown");
    }
}
