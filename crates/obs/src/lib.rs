//! End-to-end observability for the DataBlinder reproduction, built from
//! scratch on `std` alone (DESIGN.md §11):
//!
//! * [`span`] — structured spans with a ring-buffered in-memory sink,
//! * [`metrics`] — sharded atomic counters, gauges, log-linear latency
//!   histograms and EWMAs behind a named registry,
//! * [`ledger`] — the leakage audit ledger: observed leakage per field
//!   and executed operation vs the declared protection class,
//! * [`snapshot`] — point-in-time views renderable as JSON or aligned
//!   text tables,
//! * [`json`] — the minimal writer/parser backing snapshot emission and
//!   the verify smoke run,
//! * [`recorder`] — the single cloneable [`Recorder`] handle instrumented
//!   layers hold; disabled (the default) it costs one atomic load per
//!   instrumentation point,
//! * [`trace`] — causal trace contexts: span trees spanning recorders and
//!   (via the [`trace::TRACED_ROUTE`] envelope) the simulated wire,
//! * [`federation`] — folding per-node snapshots into one cluster view,
//! * [`prometheus`] — Prometheus/OpenMetrics text exposition.
//!
//! # Examples
//!
//! ```
//! use datablinder_obs::Recorder;
//! use std::time::Duration;
//!
//! let rec = Recorder::new();
//! let t = rec.start();
//! // ... do the work being measured ...
//! rec.finish_route("gateway.insert", t, true);
//! rec.ledger().record("subject", "equality", "mitra", 2, 2);
//!
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("gateway.insert.count"), 1);
//! assert!(snap.to_json().contains("gateway.insert.count"));
//! assert!(rec.ledger().is_clean());
//! ```

#![warn(missing_docs)]
pub mod federation;
pub mod histogram;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod prometheus;
pub mod recorder;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use federation::{merge_snapshots, ClusterSnapshot};
pub use histogram::{AtomicHistogram, LatencyHistogram};
pub use json::Json;
pub use ledger::{level_name, LeakageLedger};
pub use metrics::{Counter, Ewma, Gauge, MetricsRegistry};
pub use prometheus::{render_exposition, render_multi_exposition};
pub use recorder::{Recorder, SpanGuard};
pub use snapshot::{EwmaSummary, HistogramSummary, LedgerEntry, Snapshot};
pub use span::{Span, SpanOutcome, SpanSink};
pub use trace::{render_trace_timeline, TraceCtx, TRACED_ROUTE};
