//! End-to-end observability for the DataBlinder reproduction, built from
//! scratch on `std` alone (DESIGN.md §11):
//!
//! * [`span`] — structured spans with a ring-buffered in-memory sink,
//! * [`metrics`] — sharded atomic counters, gauges, log-linear latency
//!   histograms and EWMAs behind a named registry,
//! * [`ledger`] — the leakage audit ledger: observed leakage per field
//!   and executed operation vs the declared protection class,
//! * [`snapshot`] — point-in-time views renderable as JSON or aligned
//!   text tables,
//! * [`json`] — the minimal writer/parser backing snapshot emission and
//!   the verify smoke run,
//! * [`recorder`] — the single cloneable [`Recorder`] handle instrumented
//!   layers hold; disabled (the default) it costs one atomic load per
//!   instrumentation point.
//!
//! # Examples
//!
//! ```
//! use datablinder_obs::Recorder;
//! use std::time::Duration;
//!
//! let rec = Recorder::new();
//! let t = rec.start();
//! // ... do the work being measured ...
//! rec.finish_route("gateway.insert", t, true);
//! rec.ledger().record("subject", "equality", "mitra", 2, 2);
//!
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("gateway.insert.count"), 1);
//! assert!(snap.to_json().contains("gateway.insert.count"));
//! assert!(rec.ledger().is_clean());
//! ```

#![warn(missing_docs)]
pub mod histogram;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod recorder;
pub mod snapshot;
pub mod span;

pub use histogram::{AtomicHistogram, LatencyHistogram};
pub use json::Json;
pub use ledger::{level_name, LeakageLedger};
pub use metrics::{Counter, Ewma, Gauge, MetricsRegistry};
pub use recorder::Recorder;
pub use snapshot::{EwmaSummary, HistogramSummary, LedgerEntry, Snapshot};
pub use span::{Span, SpanOutcome, SpanSink};
