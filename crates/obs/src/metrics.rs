//! The metrics registry: named counters, gauges, histograms and EWMAs.
//!
//! Naming convention: `subsystem.route.metric`, e.g.
//! `gateway.insert.latency` or `channel.breaker.transitions` (DESIGN.md
//! §11). The registry hands out `Arc` handles; the handles themselves are
//! lock-free on the hot path (sharded atomic counters, atomic histogram
//! buckets, CAS'd EWMA cells) — only the name lookup takes a read lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

use crate::histogram::AtomicHistogram;
use crate::snapshot::{EwmaSummary, HistogramSummary, Snapshot};

/// Shards per counter: enough to keep 8–16 hammering threads off each
/// other's cache lines without bloating every counter.
const SHARDS: usize = 16;

/// One cache line per shard so concurrent increments don't false-share.
#[repr(align(64))]
struct Shard(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a fixed shard assigned round-robin at first use.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// A monotonically increasing counter, sharded to avoid contention.
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter { shards: std::array::from_fn(|_| Shard(AtomicU64::new(0))) }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        let idx = MY_SHARD.with(|s| *s);
        self.shards[idx].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A settable instantaneous value (e.g. breaker state, queue depth).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Smoothing factor for [`Ewma`]: each sample contributes 20%, so the
/// average tracks the last ~10–20 observations.
pub const EWMA_ALPHA: f64 = 0.2;

/// An exponentially weighted moving average of nanosecond latencies,
/// stored as `f64` bits in one atomic cell (CAS update loop).
#[derive(Default)]
pub struct Ewma {
    bits: AtomicU64,
    samples: AtomicU64,
}

impl Ewma {
    /// An empty average.
    pub fn new() -> Self {
        Ewma { bits: AtomicU64::new(0f64.to_bits()), samples: AtomicU64::new(0) }
    }

    /// Folds one latency sample into the average. The first sample seeds
    /// the average directly.
    pub fn observe(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as f64;
        let first = self.samples.fetch_add(1, Ordering::Relaxed) == 0;
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(current);
            let new = if first { nanos } else { EWMA_ALPHA * nanos + (1.0 - EWMA_ALPHA) * old };
            match self.bits.compare_exchange_weak(current, new.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The smoothed latency in nanoseconds (0.0 before any sample).
    pub fn nanos(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }
}

/// The named-instrument registry. Lookups take a read lock and clone an
/// `Arc`; instrument updates are lock-free. Instruments are never removed,
/// so a handle stays valid for the registry's lifetime.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
    ewmas: RwLock<BTreeMap<String, Arc<Ewma>>>,
}

/// Lock recovery: instrument maps hold plain `Arc`s, so a panic while a
/// guard was held cannot leave a half-written invariant — recording must
/// never panic just because some *other* recorder thread died.
fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = read_lock(map).get(name) {
        return found.clone();
    }
    write_lock(map).entry(name.to_string()).or_default().clone()
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        get_or_insert(&self.histograms, name)
    }

    /// The EWMA named `name`, created on first use.
    pub fn ewma(&self, name: &str) -> Arc<Ewma> {
        get_or_insert(&self.ewmas, name)
    }

    /// Point-in-time values of every registered instrument, sorted by
    /// name. The ledger and span fields of the returned [`Snapshot`] are
    /// empty; [`crate::Recorder::snapshot`] fills them in.
    pub fn snapshot(&self) -> Snapshot {
        let counters = read_lock(&self.counters).iter().map(|(n, c)| (n.clone(), c.get())).collect();
        let gauges = read_lock(&self.gauges).iter().map(|(n, g)| (n.clone(), g.get())).collect();
        let histograms =
            read_lock(&self.histograms).iter().map(|(n, h)| HistogramSummary::of(n, &h.snapshot())).collect();
        let ewmas = read_lock(&self.ewmas)
            .iter()
            .map(|(n, e)| EwmaSummary { name: n.clone(), nanos: e.nanos(), samples: e.samples() })
            .collect();
        Snapshot { counters, gauges, histograms, ewmas, ..Snapshot::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_basics() {
        let r = MetricsRegistry::new();
        let c = r.counter("a.b.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("a.b.count").get(), 5, "same handle by name");
        let g = r.gauge("a.b.state");
        g.set(2);
        g.add(-3);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn concurrent_counter_hammering_exact_total() {
        let r = Arc::new(MetricsRegistry::new());
        let threads = 8u64;
        let per_thread = 50_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let c = r.counter("hammer.total");
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(r.counter("hammer.total").get(), threads * per_thread);
    }

    #[test]
    fn ewma_converges_to_steady_state() {
        let e = Ewma::new();
        e.observe(Duration::from_nanos(1_000_000));
        assert_eq!(e.nanos(), 1_000_000.0, "first sample seeds");
        for _ in 0..100 {
            e.observe(Duration::from_nanos(2_000));
        }
        assert!(e.nanos() < 10_000.0, "converged near 2µs: {}", e.nanos());
        assert_eq!(e.samples(), 101);
    }

    #[test]
    fn poisoned_registry_keeps_recording() {
        let r = Arc::new(MetricsRegistry::new());
        r.counter("hammer.total").inc();
        let poisoner = r.clone();
        let result = std::thread::spawn(move || {
            let _guard = poisoner.counters.write().unwrap();
            panic!("recorder thread dies holding the registry lock");
        })
        .join();
        assert!(result.is_err());
        assert!(r.counters.read().is_err(), "lock really is poisoned");
        r.counter("hammer.total").inc();
        r.counter("hammer.fresh").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("hammer.total"), 2);
        assert_eq!(snap.counter("hammer.fresh"), 1);
    }

    #[test]
    fn snapshot_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.counter("z.last").inc();
        r.counter("a.first").add(2);
        r.histogram("h.lat").record(Duration::from_micros(10));
        r.ewma("e.lat").observe(Duration::from_micros(5));
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a.first".into(), 2), ("z.last".into(), 1)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].count, 1);
        assert_eq!(s.ewmas[0].samples, 1);
    }
}
