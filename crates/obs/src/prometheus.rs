//! Prometheus / OpenMetrics text exposition for snapshots.
//!
//! Every family is prefixed `datablinder_` with dots mapped to
//! underscores; the `# HELP` line carries the *original* dot-separated
//! instrument name, which is what lets the metric-name registry check
//! (`scripts/check_metrics.sh` + `docs/METRICS.md`) round-trip the
//! exposition back to source literals. Multi-node expositions distinguish
//! samples with a `node="…"` label taken from each snapshot's recorder
//! label. Histograms render as summaries (quantiles in seconds, plus
//! `_sum`/`_count`); EWMAs render as gauges in seconds.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::snapshot::Snapshot;

/// Exposition family-name prefix.
pub const PROMETHEUS_PREFIX: &str = "datablinder_";

/// Maps a dot-separated instrument name onto a Prometheus family name:
/// `gateway.insert.count` → `datablinder_gateway_insert_count`.
pub fn family_name(name: &str) -> String {
    let mut out = String::with_capacity(PROMETHEUS_PREFIX.len() + name.len());
    out.push_str(PROMETHEUS_PREFIX);
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn label_suffix(node: Option<&str>, extra: Option<(&str, &str)>) -> String {
    let mut pairs = Vec::new();
    if let Some(n) = node {
        pairs.push(format!("node=\"{}\"", n.replace('"', "'")));
    }
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders one snapshot as Prometheus text exposition.
pub fn render_exposition(snapshot: &Snapshot) -> String {
    render_multi_exposition(std::slice::from_ref(snapshot))
}

/// Renders many snapshots (e.g. every node of a cluster) as one
/// exposition: one `# HELP`/`# TYPE` header per family, one sample per
/// snapshot carrying that instrument, distinguished by the `node` label.
pub fn render_multi_exposition(snapshots: &[Snapshot]) -> String {
    // family -> (help dot-name, type, rendered sample lines)
    let mut families: BTreeMap<String, (String, &'static str, Vec<String>)> = BTreeMap::new();
    let mut add = |name: &str, kind: &'static str, lines: Vec<String>| {
        let family = family_name(name);
        let entry = families.entry(family).or_insert_with(|| (name.to_string(), kind, Vec::new()));
        entry.2.extend(lines);
    };
    for snap in snapshots {
        let node = snap.label.as_deref();
        for (name, value) in &snap.counters {
            add(name, "counter", vec![format!("{}{} {value}", family_name(name), label_suffix(node, None))]);
        }
        for (name, value) in &snap.gauges {
            add(name, "gauge", vec![format!("{}{} {value}", family_name(name), label_suffix(node, None))]);
        }
        for h in &snap.histograms {
            let family = family_name(&h.name);
            let mut lines = Vec::with_capacity(5);
            for (q, nanos) in [("0.5", h.p50_nanos), ("0.9", h.p90_nanos), ("0.99", h.p99_nanos)] {
                lines.push(format!("{family}{} {:.9}", label_suffix(node, Some(("quantile", q))), nanos as f64 / 1e9));
            }
            lines.push(format!("{family}_sum{} {:.9}", label_suffix(node, None), h.sum_nanos as f64 / 1e9));
            lines.push(format!("{family}_count{} {}", label_suffix(node, None), h.count));
            add(&h.name, "summary", lines);
        }
        for e in &snap.ewmas {
            add(
                &e.name,
                "gauge",
                vec![format!("{}{} {:.9}", family_name(&e.name), label_suffix(node, None), e.nanos / 1e9)],
            );
        }
    }
    let mut out = String::with_capacity(4096);
    for (family, (dot_name, kind, lines)) in &families {
        let _ = writeln!(out, "# HELP {family} {dot_name}");
        let _ = writeln!(out, "# TYPE {family} {kind}");
        for line in lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// The dot-separated instrument names carried on `# HELP` lines of an
/// exposition — the reverse mapping the registry check builds on.
pub fn help_names(exposition: &str) -> Vec<String> {
    exposition
        .lines()
        .filter_map(|l| l.strip_prefix("# HELP "))
        .filter_map(|rest| rest.split_once(' '))
        .map(|(_, dot_name)| dot_name.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use std::time::Duration;

    #[test]
    fn family_names_sanitize() {
        assert_eq!(family_name("gateway.insert.count"), "datablinder_gateway_insert_count");
        assert_eq!(family_name("cluster.node.3.ops"), "datablinder_cluster_node_3_ops");
    }

    #[test]
    fn exposition_renders_all_kinds_and_help_round_trips() {
        let r = Recorder::new();
        r.set_label("node0");
        r.record_op("gateway.insert", None, None, Duration::from_micros(120), true);
        r.record_op("gateway.insert", None, None, Duration::from_micros(300), false);
        r.gauge_set("channel.breaker.state", 1);
        r.ewma_observe("cloud.apply.ewma", Duration::from_micros(5));
        let text = render_exposition(&r.snapshot());
        assert!(text.contains("# TYPE datablinder_gateway_insert_count counter"), "{text}");
        assert!(text.contains("datablinder_gateway_insert_count{node=\"node0\"} 2"), "{text}");
        assert!(text.contains("datablinder_gateway_insert_errors{node=\"node0\"} 1"), "{text}");
        assert!(text.contains("# TYPE datablinder_gateway_insert_latency summary"), "{text}");
        assert!(text.contains("quantile=\"0.99\""), "{text}");
        assert!(text.contains("datablinder_gateway_insert_latency_count{node=\"node0\"} 2"), "{text}");
        assert!(text.contains("# TYPE datablinder_channel_breaker_state gauge"), "{text}");
        let names = help_names(&text);
        for expected in [
            "gateway.insert.count",
            "gateway.insert.errors",
            "gateway.insert.latency",
            "channel.breaker.state",
            "cloud.apply.ewma",
        ] {
            assert!(names.iter().any(|n| n == expected), "HELP carries {expected}: {names:?}");
        }
    }

    #[test]
    fn multi_node_samples_share_one_family_header() {
        let mk = |label: &str| {
            let r = Recorder::new();
            r.set_label(label);
            r.count("cloud.wal.appends", 3);
            r.snapshot()
        };
        let text = render_multi_exposition(&[mk("node0"), mk("node1")]);
        assert_eq!(text.matches("# HELP datablinder_cloud_wal_appends").count(), 1, "{text}");
        assert!(text.contains("datablinder_cloud_wal_appends{node=\"node0\"} 3"), "{text}");
        assert!(text.contains("datablinder_cloud_wal_appends{node=\"node1\"} 3"), "{text}");
    }
}
