//! The [`Recorder`]: the one handle instrumented code holds.
//!
//! A recorder bundles a metrics registry, a span sink and a leakage
//! ledger behind a single enabled flag. Disabled recorders (the default
//! everywhere) cost one relaxed atomic load per instrumentation point —
//! no clock reads, no name lookups, no allocation — which is what lets
//! every layer carry instrumentation unconditionally.
//!
//! Since the tracing layer landed, a recorder also participates in causal
//! traces: [`Recorder::span`] opens a [`SpanGuard`] that becomes a child
//! of whatever trace context is installed on the thread (or a new root),
//! installs its own context for the guard's lifetime, and on drop emits a
//! tree-positioned [`Span`]. Root guards additionally feed the **slow-op
//! ring**: when [`Recorder::set_slow_op_threshold`] is armed, any root
//! operation at or past the threshold captures its *entire* span tree —
//! including spans recorded by other recorders on the same thread — into
//! a bounded ring readable via [`Recorder::slow_ops`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::ledger::LeakageLedger;
use crate::metrics::MetricsRegistry;
use crate::snapshot::Snapshot;
use crate::span::{Span, SpanOutcome, SpanSink};
use crate::trace::{self, CtxScope, TraceCtx};

/// Default span-ring capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

/// Slow-op trees retained (oldest evicted first).
const SLOW_OP_CAPACITY: usize = 32;

struct Inner {
    enabled: AtomicBool,
    op_ids: AtomicU64,
    metrics: MetricsRegistry,
    spans: SpanSink,
    ledger: LeakageLedger,
    label: Mutex<Option<String>>,
    /// Slow-op threshold in nanoseconds; 0 disarms the slow-op log.
    slow_threshold: AtomicU64,
    slow_ops: Mutex<VecDeque<Vec<Span>>>,
}

/// A cloneable handle over one observability domain. Clones share state.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.is_enabled()).finish_non_exhaustive()
    }
}

impl Default for Recorder {
    /// The default recorder is *disabled*, so instrumented components can
    /// carry one unconditionally at near-zero cost.
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl Recorder {
    fn build(enabled: bool, span_capacity: usize) -> Self {
        Recorder {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                op_ids: AtomicU64::new(0),
                metrics: MetricsRegistry::new(),
                spans: SpanSink::new(span_capacity),
                ledger: LeakageLedger::new(),
                label: Mutex::new(None),
                slow_threshold: AtomicU64::new(0),
                slow_ops: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// An enabled recorder with the default span-ring capacity.
    pub fn new() -> Self {
        Recorder::build(true, DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled recorder retaining up to `span_capacity` recent spans.
    pub fn with_span_capacity(span_capacity: usize) -> Self {
        Recorder::build(true, span_capacity)
    }

    /// A disabled recorder: every instrumentation call short-circuits
    /// after one atomic load.
    pub fn disabled() -> Self {
        Recorder::build(false, DEFAULT_SPAN_CAPACITY)
    }

    /// Whether recording is on. This is the hot-path guard.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Labels every span this recorder emits with a node name (e.g.
    /// `node3`), so federated snapshots can tell replicas apart.
    pub fn set_label(&self, label: &str) {
        *self.inner.label.lock().unwrap_or_else(PoisonError::into_inner) = Some(label.to_string());
    }

    /// The node label, if one was set.
    pub fn label(&self) -> Option<String> {
        self.inner.label.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Arms (or with [`Duration::ZERO`] disarms) the slow-op log: root
    /// operations lasting at least `threshold` capture their full trace
    /// tree into a bounded ring.
    pub fn set_slow_op_threshold(&self, threshold: Duration) {
        let nanos = threshold.as_nanos().min(u64::MAX as u128) as u64;
        self.inner.slow_threshold.store(nanos, Ordering::Relaxed);
    }

    /// The captured slow-op trees, oldest first. Each entry is every span
    /// collected under one slow root operation.
    pub fn slow_ops(&self) -> Vec<Vec<Span>> {
        self.inner.slow_ops.lock().unwrap_or_else(PoisonError::into_inner).iter().cloned().collect()
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The span sink.
    pub fn spans(&self) -> &SpanSink {
        &self.inner.spans
    }

    /// The leakage audit ledger.
    pub fn ledger(&self) -> &LeakageLedger {
        &self.inner.ledger
    }

    /// Mints a fresh operation id for a span.
    pub fn next_op_id(&self) -> u64 {
        self.inner.op_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Starts timing an operation: `Some(now)` when enabled, `None`
    /// otherwise (so disabled recorders skip the clock read too). Pair
    /// with [`Recorder::finish_route`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Completes an operation started with [`Recorder::start`]: bumps
    /// `<route>.count` (and `<route>.errors` on failure), records the
    /// latency histogram `<route>.latency` and pushes a span.
    pub fn finish_route(&self, route: &str, started: Option<Instant>, ok: bool) {
        let Some(started) = started else { return };
        self.record_op(route, None, None, started.elapsed(), ok);
    }

    /// Opens a metric-bearing span guard: on drop it bumps the `.count` /
    /// `.errors` / `.latency` instruments for `route` and records a span
    /// positioned in the ambient trace (child of the current context, or a
    /// new trace root when none is installed).
    pub fn span(&self, route: &str) -> SpanGuard {
        self.guard(route, false, false)
    }

    /// Opens a span-only guard: the span lands in the sink and the trace
    /// tree, but no counters or histograms move. For fine-grained tree
    /// detail (per-attempt, per-flush) that must not disturb the pinned
    /// route-level metrics.
    pub fn quiet_span(&self, route: &str) -> SpanGuard {
        self.guard(route, true, false)
    }

    /// Opens a metric-bearing guard that is *always* a new trace root,
    /// regardless of any installed context — for background work (resync,
    /// anti-entropy) that must not attach to whatever trace happened to be
    /// on the thread.
    pub fn span_root(&self, route: &str) -> SpanGuard {
        self.guard(route, false, true)
    }

    fn guard(&self, route: &str, quiet: bool, force_root: bool) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { state: None };
        }
        let parent = if force_root { None } else { trace::current() };
        let span_id = trace::mint_id();
        let (trace_id, parent_id) = match parent {
            Some(p) => (p.trace_id, p.span_id),
            None => (span_id, 0),
        };
        let ctx = TraceCtx { trace_id, span_id };
        let opened_collector = parent.is_none() && self.inner.slow_threshold.load(Ordering::Relaxed) > 0;
        if opened_collector {
            trace::open_collector(trace_id);
        }
        let scope = ctx.enter();
        SpanGuard {
            state: Some(GuardState {
                recorder: self.clone(),
                route: route.to_string(),
                ctx,
                parent_id,
                opened_collector,
                quiet,
                ok: true,
                detail: None,
                start: Instant::now(),
                start_nanos: trace::epoch_nanos(),
                duration_override: None,
                _scope: scope,
            }),
        }
    }

    /// As [`Recorder::finish_route`] with the tactic and field attached to
    /// the span. Trace-aware: when a context is installed on the thread
    /// the span joins that trace as a leaf.
    pub fn record_op(&self, route: &str, tactic: Option<&str>, field: Option<&str>, duration: Duration, ok: bool) {
        if !self.is_enabled() {
            return;
        }
        let m = self.metrics();
        m.counter(&format!("{route}.count")).inc();
        if !ok {
            m.counter(&format!("{route}.errors")).inc();
        }
        m.histogram(&format!("{route}.latency")).record(duration);
        let ctx = trace::current();
        let (trace_id, span_id, parent_id, start_nanos) = match ctx {
            Some(c) => (
                c.trace_id,
                trace::mint_id(),
                c.span_id,
                trace::epoch_nanos().saturating_sub(duration.as_nanos().min(u64::MAX as u128) as u64),
            ),
            None => (0, 0, 0, 0),
        };
        let span = Span {
            id: self.next_op_id(),
            trace_id,
            span_id,
            parent_id,
            node: self.label(),
            route: route.to_string(),
            tactic: tactic.map(str::to_string),
            field: field.map(str::to_string),
            detail: None,
            outcome: if ok { SpanOutcome::Ok } else { SpanOutcome::Err },
            start_nanos,
            duration,
        };
        trace::collect(&span);
        self.inner.spans.push(span);
    }

    /// Bumps a counter by `n` (no-op when disabled).
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        if self.is_enabled() {
            self.metrics().counter(name).add(n);
        }
    }

    /// Sets a gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set(&self, name: &str, value: i64) {
        if self.is_enabled() {
            self.metrics().gauge(name).set(value);
        }
    }

    /// Records a latency histogram sample (no-op when disabled).
    #[inline]
    pub fn observe(&self, name: &str, latency: Duration) {
        if self.is_enabled() {
            self.metrics().histogram(name).record(latency);
        }
    }

    /// Folds a sample into an EWMA (no-op when disabled).
    #[inline]
    pub fn ewma_observe(&self, name: &str, latency: Duration) {
        if self.is_enabled() {
            self.metrics().ewma(name).observe(latency);
        }
    }

    /// A full point-in-time snapshot: metrics, ledger, span counters, the
    /// node label and the traced spans still in the ring.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = self.metrics().snapshot();
        snap.label = self.label();
        snap.ledger = self.ledger().entries();
        snap.spans_recorded = self.inner.spans.recorded();
        snap.spans_dropped = self.inner.spans.dropped();
        snap.trace_spans = self.inner.spans.recent().into_iter().filter(|s| s.trace_id != 0).collect();
        snap
    }
}

struct GuardState {
    recorder: Recorder,
    route: String,
    ctx: TraceCtx,
    parent_id: u64,
    opened_collector: bool,
    quiet: bool,
    ok: bool,
    detail: Option<String>,
    start: Instant,
    start_nanos: u64,
    duration_override: Option<Duration>,
    /// Restores the previous thread-local context when the guard drops.
    _scope: CtxScope,
}

/// An open operation: times itself from construction to drop, emits one
/// [`Span`] positioned in the ambient trace, and (unless quiet) bumps the
/// route's `.count` / `.errors` / `.latency` instruments. Obtained from
/// [`Recorder::span`], [`Recorder::quiet_span`] or [`Recorder::span_root`];
/// inert (and free) when the recorder is disabled.
#[must_use = "the span is recorded when the guard drops"]
pub struct SpanGuard {
    state: Option<GuardState>,
}

impl SpanGuard {
    /// Marks the operation's outcome (default: success).
    pub fn set_ok(&mut self, ok: bool) {
        if let Some(st) = &mut self.state {
            st.ok = ok;
        }
    }

    /// Marks the operation failed.
    pub fn fail(&mut self) {
        self.set_ok(false);
    }

    /// Attaches a free-form annotation (e.g. the error an attempt died
    /// with).
    pub fn set_detail(&mut self, detail: &str) {
        if let Some(st) = &mut self.state {
            st.detail = Some(detail.to_string());
        }
    }

    /// Overrides the recorded duration (used where time is measured on a
    /// virtual clock rather than this guard's wall clock).
    pub fn set_duration(&mut self, duration: Duration) {
        if let Some(st) = &mut self.state {
            st.duration_override = Some(duration);
        }
    }

    /// The trace context this guard installed, `None` when the recorder
    /// was disabled at construction.
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.state.as_ref().map(|st| st.ctx)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(st) = self.state.take() else { return };
        let duration = st.duration_override.unwrap_or_else(|| st.start.elapsed());
        let r = &st.recorder;
        if !st.quiet {
            let m = r.metrics();
            m.counter(&format!("{}.count", st.route)).inc();
            if !st.ok {
                m.counter(&format!("{}.errors", st.route)).inc();
            }
            m.histogram(&format!("{}.latency", st.route)).record(duration);
        }
        let span = Span {
            id: r.next_op_id(),
            trace_id: st.ctx.trace_id,
            span_id: st.ctx.span_id,
            parent_id: st.parent_id,
            node: r.label(),
            route: st.route.clone(),
            tactic: None,
            field: None,
            detail: st.detail.clone(),
            outcome: if st.ok { SpanOutcome::Ok } else { SpanOutcome::Err },
            start_nanos: st.start_nanos,
            duration,
        };
        trace::collect(&span);
        r.inner.spans.push(span);
        if st.opened_collector {
            let tree = trace::close_collector(st.ctx.trace_id);
            let threshold = r.inner.slow_threshold.load(Ordering::Relaxed);
            if threshold > 0 && duration.as_nanos() as u64 >= threshold && !tree.is_empty() {
                let mut ring = r.inner.slow_ops.lock().unwrap_or_else(PoisonError::into_inner);
                if ring.len() == SLOW_OP_CAPACITY {
                    ring.pop_front();
                }
                ring.push_back(tree);
            }
        }
        // `_scope` drops with `st`, restoring the previous trace context.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        assert!(r.start().is_none(), "disabled start skips the clock");
        r.count("gateway.insert.count", 1);
        r.observe("gateway.insert.latency", Duration::from_millis(1));
        r.ewma_observe("tactic.det.eq_query", Duration::from_millis(1));
        r.gauge_set("channel.breaker.state", 1);
        r.record_op("gateway.insert", None, None, Duration::from_millis(1), true);
        let g = r.span("gateway.insert");
        assert!(g.ctx().is_none(), "disabled guard is inert");
        drop(g);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.gauges.is_empty());
        assert_eq!(snap.spans_recorded, 0);
    }

    #[test]
    fn enabled_recorder_routes_everything() {
        let r = Recorder::new();
        let t = r.start();
        assert!(t.is_some());
        r.finish_route("gateway.insert", t, true);
        let t = r.start();
        r.finish_route("gateway.insert", t, false);
        let snap = r.snapshot();
        assert_eq!(snap.counter("gateway.insert.count"), 2);
        assert_eq!(snap.counter("gateway.insert.errors"), 1);
        assert_eq!(snap.histogram("gateway.insert.latency").unwrap().count, 2);
        assert_eq!(snap.spans_recorded, 2);
        let spans = r.spans().recent();
        assert_eq!(spans[0].outcome, SpanOutcome::Ok);
        assert_eq!(spans[1].outcome, SpanOutcome::Err);
        assert_ne!(spans[0].id, spans[1].id);
    }

    #[test]
    fn toggling_at_runtime() {
        let r = Recorder::disabled();
        r.count("c", 1);
        r.set_enabled(true);
        r.count("c", 1);
        r.set_enabled(false);
        r.count("c", 1);
        assert_eq!(r.snapshot().counter("c"), 1);
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::new();
        let r2 = r.clone();
        r2.count("shared", 3);
        assert_eq!(r.snapshot().counter("shared"), 3);
    }

    #[test]
    fn span_guard_matches_record_op_metrics() {
        let by_guard = Recorder::new();
        {
            let mut g = by_guard.span("gateway.search");
            g.set_ok(false);
        }
        let by_call = Recorder::new();
        by_call.record_op("gateway.search", None, None, Duration::from_micros(5), false);
        for snap in [by_guard.snapshot(), by_call.snapshot()] {
            assert_eq!(snap.counter("gateway.search.count"), 1);
            assert_eq!(snap.counter("gateway.search.errors"), 1);
            assert_eq!(snap.histogram("gateway.search.latency").unwrap().count, 1);
            assert_eq!(snap.spans_recorded, 1);
        }
    }

    #[test]
    fn guards_nest_into_one_trace_tree() {
        let r = Recorder::new();
        r.set_label("gw");
        {
            let root = r.span("gateway.insert");
            let root_ctx = root.ctx().unwrap();
            assert_eq!(root_ctx.trace_id, root_ctx.span_id, "rootless guard starts its own trace");
            {
                let child = r.quiet_span("channel.attempt");
                let child_ctx = child.ctx().unwrap();
                assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
                assert_ne!(child_ctx.span_id, root_ctx.span_id);
            }
            // record_op under an installed context joins as a leaf.
            r.record_op("cloud.apply", None, None, Duration::from_micros(1), true);
        }
        assert_eq!(trace::current(), None, "scope restored");
        let spans = r.spans().recent();
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.route == "gateway.insert").unwrap();
        let attempt = spans.iter().find(|s| s.route == "channel.attempt").unwrap();
        let apply = spans.iter().find(|s| s.route == "cloud.apply").unwrap();
        assert_eq!(root.parent_id, 0);
        assert_eq!(attempt.parent_id, root.span_id);
        assert_eq!(apply.parent_id, root.span_id);
        assert!(spans.iter().all(|s| s.trace_id == root.trace_id));
        assert!(spans.iter().all(|s| s.node.as_deref() == Some("gw")));
        // Quiet span moved no counters; the metric-bearing guard did.
        let snap = r.snapshot();
        assert_eq!(snap.counter("gateway.insert.count"), 1);
        assert_eq!(snap.counter("channel.attempt.count"), 0);
        assert_eq!(snap.counter("cloud.apply.count"), 1);
        assert_eq!(snap.trace_spans.len(), 3, "snapshot exports traced spans");
    }

    #[test]
    fn span_root_detaches_from_ambient_trace() {
        let r = Recorder::new();
        let outer = r.span("gateway.insert");
        let outer_ctx = outer.ctx().unwrap();
        let bg = r.span_root("cluster.resync");
        let bg_ctx = bg.ctx().unwrap();
        assert_ne!(bg_ctx.trace_id, outer_ctx.trace_id, "background work starts its own trace");
        assert_eq!(bg_ctx.trace_id, bg_ctx.span_id);
        drop(bg);
        assert_eq!(trace::current(), Some(outer_ctx), "previous context restored");
        drop(outer);
        let spans = r.spans().recent();
        assert_eq!(spans.iter().find(|s| s.route == "cluster.resync").unwrap().parent_id, 0);
    }

    #[test]
    fn slow_op_ring_captures_full_tree() {
        let r = Recorder::new();
        r.set_slow_op_threshold(Duration::from_nanos(1));
        {
            let mut root = r.span("gateway.insert");
            root.set_duration(Duration::from_millis(50));
            {
                let mut child = r.quiet_span("channel.call");
                child.set_detail("attempt 1");
                child.set_duration(Duration::from_millis(40));
            }
        }
        // Fast ops below the threshold are not captured.
        r.set_slow_op_threshold(Duration::from_secs(3600));
        {
            let _fast = r.span("gateway.count");
        }
        let slow = r.slow_ops();
        assert_eq!(slow.len(), 1, "one slow tree captured");
        let tree = &slow[0];
        assert_eq!(tree.len(), 2);
        assert!(tree.iter().any(|s| s.route == "gateway.insert"));
        assert!(tree.iter().any(|s| s.route == "channel.call" && s.detail.as_deref() == Some("attempt 1")));
        let rendered = trace::render_trace_timeline(tree);
        assert!(rendered.contains("gateway.insert"), "{rendered}");
        assert!(rendered.contains("attempt 1"), "{rendered}");
    }

    #[test]
    fn disarmed_slow_op_log_collects_nothing() {
        let r = Recorder::new();
        {
            let mut g = r.span("gateway.insert");
            g.set_duration(Duration::from_secs(10));
        }
        assert!(r.slow_ops().is_empty(), "threshold 0 means off");
    }
}
