//! The [`Recorder`]: the one handle instrumented code holds.
//!
//! A recorder bundles a metrics registry, a span sink and a leakage
//! ledger behind a single enabled flag. Disabled recorders (the default
//! everywhere) cost one relaxed atomic load per instrumentation point —
//! no clock reads, no name lookups, no allocation — which is what lets
//! every layer carry instrumentation unconditionally.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::ledger::LeakageLedger;
use crate::metrics::MetricsRegistry;
use crate::snapshot::Snapshot;
use crate::span::{Span, SpanOutcome, SpanSink};

/// Default span-ring capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

struct Inner {
    enabled: AtomicBool,
    op_ids: AtomicU64,
    metrics: MetricsRegistry,
    spans: SpanSink,
    ledger: LeakageLedger,
}

/// A cloneable handle over one observability domain. Clones share state.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.is_enabled()).finish_non_exhaustive()
    }
}

impl Default for Recorder {
    /// The default recorder is *disabled*, so instrumented components can
    /// carry one unconditionally at near-zero cost.
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl Recorder {
    fn build(enabled: bool, span_capacity: usize) -> Self {
        Recorder {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                op_ids: AtomicU64::new(0),
                metrics: MetricsRegistry::new(),
                spans: SpanSink::new(span_capacity),
                ledger: LeakageLedger::new(),
            }),
        }
    }

    /// An enabled recorder with the default span-ring capacity.
    pub fn new() -> Self {
        Recorder::build(true, DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled recorder retaining up to `span_capacity` recent spans.
    pub fn with_span_capacity(span_capacity: usize) -> Self {
        Recorder::build(true, span_capacity)
    }

    /// A disabled recorder: every instrumentation call short-circuits
    /// after one atomic load.
    pub fn disabled() -> Self {
        Recorder::build(false, DEFAULT_SPAN_CAPACITY)
    }

    /// Whether recording is on. This is the hot-path guard.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The span sink.
    pub fn spans(&self) -> &SpanSink {
        &self.inner.spans
    }

    /// The leakage audit ledger.
    pub fn ledger(&self) -> &LeakageLedger {
        &self.inner.ledger
    }

    /// Mints a fresh operation id for a span.
    pub fn next_op_id(&self) -> u64 {
        self.inner.op_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Starts timing an operation: `Some(now)` when enabled, `None`
    /// otherwise (so disabled recorders skip the clock read too). Pair
    /// with [`Recorder::finish_route`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Completes an operation started with [`Recorder::start`]: bumps
    /// `<route>.count` (and `<route>.errors` on failure), records the
    /// latency histogram `<route>.latency` and pushes a span.
    pub fn finish_route(&self, route: &str, started: Option<Instant>, ok: bool) {
        let Some(started) = started else { return };
        self.record_op(route, None, None, started.elapsed(), ok);
    }

    /// As [`Recorder::finish_route`] with the tactic and field attached to
    /// the span.
    pub fn record_op(&self, route: &str, tactic: Option<&str>, field: Option<&str>, duration: Duration, ok: bool) {
        if !self.is_enabled() {
            return;
        }
        let m = self.metrics();
        m.counter(&format!("{route}.count")).inc();
        if !ok {
            m.counter(&format!("{route}.errors")).inc();
        }
        m.histogram(&format!("{route}.latency")).record(duration);
        self.inner.spans.push(Span {
            id: self.next_op_id(),
            route: route.to_string(),
            tactic: tactic.map(str::to_string),
            field: field.map(str::to_string),
            outcome: if ok { SpanOutcome::Ok } else { SpanOutcome::Err },
            duration,
        });
    }

    /// Bumps a counter by `n` (no-op when disabled).
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        if self.is_enabled() {
            self.metrics().counter(name).add(n);
        }
    }

    /// Sets a gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set(&self, name: &str, value: i64) {
        if self.is_enabled() {
            self.metrics().gauge(name).set(value);
        }
    }

    /// Records a latency histogram sample (no-op when disabled).
    #[inline]
    pub fn observe(&self, name: &str, latency: Duration) {
        if self.is_enabled() {
            self.metrics().histogram(name).record(latency);
        }
    }

    /// Folds a sample into an EWMA (no-op when disabled).
    #[inline]
    pub fn ewma_observe(&self, name: &str, latency: Duration) {
        if self.is_enabled() {
            self.metrics().ewma(name).observe(latency);
        }
    }

    /// A full point-in-time snapshot: metrics, ledger and span counters.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = self.metrics().snapshot();
        snap.ledger = self.ledger().entries();
        snap.spans_recorded = self.inner.spans.recorded();
        snap.spans_dropped = self.inner.spans.dropped();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        assert!(r.start().is_none(), "disabled start skips the clock");
        r.count("gateway.insert.count", 1);
        r.observe("gateway.insert.latency", Duration::from_millis(1));
        r.ewma_observe("tactic.det.eq_query", Duration::from_millis(1));
        r.gauge_set("channel.breaker.state", 1);
        r.record_op("gateway.insert", None, None, Duration::from_millis(1), true);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.gauges.is_empty());
        assert_eq!(snap.spans_recorded, 0);
    }

    #[test]
    fn enabled_recorder_routes_everything() {
        let r = Recorder::new();
        let t = r.start();
        assert!(t.is_some());
        r.finish_route("gateway.insert", t, true);
        let t = r.start();
        r.finish_route("gateway.insert", t, false);
        let snap = r.snapshot();
        assert_eq!(snap.counter("gateway.insert.count"), 2);
        assert_eq!(snap.counter("gateway.insert.errors"), 1);
        assert_eq!(snap.histogram("gateway.insert.latency").unwrap().count, 2);
        assert_eq!(snap.spans_recorded, 2);
        let spans = r.spans().recent();
        assert_eq!(spans[0].outcome, SpanOutcome::Ok);
        assert_eq!(spans[1].outcome, SpanOutcome::Err);
        assert_ne!(spans[0].id, spans[1].id);
    }

    #[test]
    fn toggling_at_runtime() {
        let r = Recorder::disabled();
        r.count("c", 1);
        r.set_enabled(true);
        r.count("c", 1);
        r.set_enabled(false);
        r.count("c", 1);
        assert_eq!(r.snapshot().counter("c"), 1);
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::new();
        let r2 = r.clone();
        r2.count("shared", 3);
        assert_eq!(r.snapshot().counter("shared"), 3);
    }
}
