//! Point-in-time snapshots of a recorder, renderable as JSON and aligned
//! text tables.

use std::fmt::Write as _;
use std::time::Duration;

use crate::histogram::LatencyHistogram;
use crate::json::write_escaped;
use crate::ledger::level_name;

/// Summary of one named histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Instrument name (`subsystem.route.metric`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean, nanoseconds.
    pub mean_nanos: u64,
    /// Median, nanoseconds.
    pub p50_nanos: u64,
    /// 90th percentile, nanoseconds.
    pub p90_nanos: u64,
    /// 99th percentile, nanoseconds.
    pub p99_nanos: u64,
    /// Largest sample, nanoseconds.
    pub max_nanos: u64,
}

impl HistogramSummary {
    /// Summarises `h` under `name`.
    pub fn of(name: &str, h: &LatencyHistogram) -> Self {
        HistogramSummary {
            name: name.to_string(),
            count: h.count(),
            mean_nanos: h.mean().as_nanos() as u64,
            p50_nanos: h.percentile(0.50).as_nanos() as u64,
            p90_nanos: h.percentile(0.90).as_nanos() as u64,
            p99_nanos: h.percentile(0.99).as_nanos() as u64,
            max_nanos: h.max().as_nanos() as u64,
        }
    }
}

/// Summary of one named EWMA at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct EwmaSummary {
    /// Instrument name.
    pub name: String,
    /// Smoothed latency, nanoseconds.
    pub nanos: f64,
    /// Samples folded in.
    pub samples: u64,
}

/// One leakage-ledger cell (see [`crate::ledger::LeakageLedger`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// The field operated on.
    pub field: String,
    /// The high-level operation (`insert`, `equality`, …).
    pub op: String,
    /// The tactic whose execution produced the worst observation.
    pub tactic: String,
    /// Worst observed leakage level (1–5).
    pub observed: u8,
    /// Declared admissible level from the field's protection class (1–5).
    pub declared: u8,
    /// Executions recorded.
    pub count: u64,
}

impl LedgerEntry {
    /// Whether this cell leaked beyond its declaration.
    pub fn violates(&self) -> bool {
        self.observed > self.declared
    }
}

/// A point-in-time view over every instrument of a recorder.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// EWMA summaries, sorted by name.
    pub ewmas: Vec<EwmaSummary>,
    /// Leakage-ledger cells, sorted by field then operation.
    pub ledger: Vec<LedgerEntry>,
    /// Total spans recorded since the recorder was created.
    pub spans_recorded: u64,
    /// Spans evicted by the ring bound.
    pub spans_dropped: u64,
}

fn fmt_nanos(nanos: u64) -> String {
    let d = Duration::from_nanos(nanos);
    if d >= Duration::from_secs(1) {
        format!("{:.2}s", d.as_secs_f64())
    } else if d >= Duration::from_millis(1) {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else if d >= Duration::from_micros(1) {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos}ns")
    }
}

impl Snapshot {
    /// The counter named `name` (0 when absent — counters that never
    /// incremented were never created).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram summary named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The EWMA summary named `name`, if present.
    pub fn ewma(&self, name: &str) -> Option<&EwmaSummary> {
        self.ewmas.iter().find(|e| e.name == name)
    }

    /// Counters whose name starts with `prefix` (e.g. `"gateway."`).
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters.iter().filter(|(n, _)| n.starts_with(prefix)).cloned().collect()
    }

    /// Renders the snapshot as a JSON document (parseable back with
    /// [`crate::json::Json::parse`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":[");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, name);
            let _ = write!(out, ",\"value\":{value}}}");
        }
        out.push_str("],\"gauges\":[");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, name);
            let _ = write!(out, ",\"value\":{value}}}");
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, &h.name);
            let _ = write!(
                out,
                ",\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                h.count, h.mean_nanos, h.p50_nanos, h.p90_nanos, h.p99_nanos, h.max_nanos
            );
        }
        out.push_str("],\"ewmas\":[");
        for (i, e) in self.ewmas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, &e.name);
            let _ = write!(out, ",\"nanos\":{:.1},\"samples\":{}}}", e.nanos, e.samples);
        }
        out.push_str("],\"ledger\":[");
        for (i, e) in self.ledger.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"field\":");
            write_escaped(&mut out, &e.field);
            out.push_str(",\"op\":");
            write_escaped(&mut out, &e.op);
            out.push_str(",\"tactic\":");
            write_escaped(&mut out, &e.tactic);
            let _ = write!(
                out,
                ",\"observed\":{},\"declared\":{},\"count\":{},\"violation\":{}}}",
                e.observed,
                e.declared,
                e.count,
                e.violates()
            );
        }
        let _ =
            write!(out, "],\"spans\":{{\"recorded\":{},\"dropped\":{}}}}}", self.spans_recorded, self.spans_dropped);
        out
    }

    /// Renders the snapshot as aligned text tables.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str("counters & gauges\n");
            let width =
                self.counters.iter().map(|(n, _)| n.len()).chain(self.gauges.iter().map(|(n, _)| n.len())).max();
            let width = width.unwrap_or(0).max(4);
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$} {value:>12}");
            }
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$} {value:>12}");
            }
            out.push('\n');
        }
        if !self.histograms.is_empty() {
            out.push_str("latency histograms\n");
            let width = self.histograms.iter().map(|h| h.name.len()).max().unwrap_or(4).max(4);
            let _ = writeln!(
                out,
                "  {:<width$} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "mean", "p50", "p99", "max"
            );
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<width$} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    h.name,
                    h.count,
                    fmt_nanos(h.mean_nanos),
                    fmt_nanos(h.p50_nanos),
                    fmt_nanos(h.p99_nanos),
                    fmt_nanos(h.max_nanos)
                );
            }
            out.push('\n');
        }
        if !self.ewmas.is_empty() {
            out.push_str("moving averages\n");
            let width = self.ewmas.iter().map(|e| e.name.len()).max().unwrap_or(4).max(4);
            for e in &self.ewmas {
                let _ = writeln!(out, "  {:<width$} {:>10} ({} samples)", e.name, fmt_nanos(e.nanos as u64), e.samples);
            }
            out.push('\n');
        }
        if !self.ledger.is_empty() {
            out.push_str("leakage ledger (observed vs declared)\n");
            let width = self.ledger.iter().map(|e| e.field.len()).max().unwrap_or(5).max(5);
            let _ = writeln!(
                out,
                "  {:<width$} {:>9} {:>10} {:>12} {:>12} {:>7}",
                "field", "op", "tactic", "observed", "declared", "count"
            );
            for e in &self.ledger {
                let flag = if e.violates() { " VIOLATION" } else { "" };
                let _ = writeln!(
                    out,
                    "  {:<width$} {:>9} {:>10} {:>12} {:>12} {:>7}{flag}",
                    e.field,
                    e.op,
                    e.tactic,
                    level_name(e.observed),
                    level_name(e.declared),
                    e.count
                );
            }
            out.push('\n');
        }
        let _ = writeln!(out, "spans: {} recorded, {} dropped", self.spans_recorded, self.spans_dropped);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn sample() -> Snapshot {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        Snapshot {
            counters: vec![("gateway.insert.count".into(), 7)],
            gauges: vec![("channel.breaker.state".into(), 1)],
            histograms: vec![HistogramSummary::of("gateway.insert.latency", &h)],
            ewmas: vec![EwmaSummary { name: "tactic.mitra.eq_query".into(), nanos: 1234.5, samples: 3 }],
            ledger: vec![LedgerEntry {
                field: "subject".into(),
                op: "equality".into(),
                tactic: "mitra".into(),
                observed: 2,
                declared: 2,
                count: 9,
            }],
            spans_recorded: 10,
            spans_dropped: 2,
        }
    }

    #[test]
    fn json_round_trips_through_parser() {
        let snap = sample();
        let parsed = Json::parse(&snap.to_json()).unwrap();
        let counters = parsed.get("counters").unwrap().as_array().unwrap();
        assert_eq!(counters[0].get("name").unwrap().as_str(), Some("gateway.insert.count"));
        assert_eq!(counters[0].get("value").unwrap().as_u64(), Some(7));
        let ledger = parsed.get("ledger").unwrap().as_array().unwrap();
        assert_eq!(ledger[0].get("violation"), Some(&Json::Bool(false)));
        assert_eq!(parsed.get("spans").unwrap().get("recorded").unwrap().as_u64(), Some(10));
    }

    #[test]
    fn text_tables_align_and_name_levels() {
        let text = sample().to_text();
        assert!(text.contains("gateway.insert.count"));
        assert!(text.contains("Identifiers"), "levels rendered by name: {text}");
        assert!(text.contains("spans: 10 recorded, 2 dropped"));
    }

    #[test]
    fn lookup_helpers() {
        let snap = sample();
        assert_eq!(snap.counter("gateway.insert.count"), 7);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("channel.breaker.state"), Some(1));
        assert_eq!(snap.histogram("gateway.insert.latency").unwrap().count, 1);
        assert_eq!(snap.ewma("tactic.mitra.eq_query").unwrap().samples, 3);
        assert_eq!(snap.counters_with_prefix("gateway.").len(), 1);
    }
}
