//! Point-in-time snapshots of a recorder, renderable as JSON and aligned
//! text tables — and parseable back from JSON ([`Snapshot::from_json`]),
//! which is how per-node snapshots travel over the `obs/snapshot` cloud
//! route for federation.

use std::fmt::Write as _;
use std::time::Duration;

use crate::histogram::LatencyHistogram;
use crate::json::{write_escaped, Json};
use crate::ledger::level_name;
use crate::span::{Span, SpanOutcome};

/// Summary of one named histogram at snapshot time. Carries the raw
/// non-zero buckets alongside the derived statistics, so summaries from
/// different nodes merge losslessly ([`HistogramSummary::to_histogram`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Instrument name (`subsystem.route.metric`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean, nanoseconds.
    pub mean_nanos: u64,
    /// Median, nanoseconds.
    pub p50_nanos: u64,
    /// 90th percentile, nanoseconds.
    pub p90_nanos: u64,
    /// 99th percentile, nanoseconds.
    pub p99_nanos: u64,
    /// Largest sample, nanoseconds.
    pub max_nanos: u64,
    /// Sum of all samples, nanoseconds (saturating).
    pub sum_nanos: u64,
    /// Sparse non-zero `(bucket index, count)` pairs — the lossless raw
    /// form backing federation merges.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSummary {
    /// Summarises `h` under `name`.
    pub fn of(name: &str, h: &LatencyHistogram) -> Self {
        HistogramSummary {
            name: name.to_string(),
            count: h.count(),
            mean_nanos: h.mean().as_nanos() as u64,
            p50_nanos: h.percentile(0.50).as_nanos() as u64,
            p90_nanos: h.percentile(0.90).as_nanos() as u64,
            p99_nanos: h.percentile(0.99).as_nanos() as u64,
            max_nanos: h.max().as_nanos() as u64,
            sum_nanos: h.sum_nanos(),
            buckets: h.nonzero_buckets(),
        }
    }

    /// Rebuilds the histogram this summary was taken from (lossless up to
    /// bucket resolution).
    pub fn to_histogram(&self) -> LatencyHistogram {
        LatencyHistogram::from_buckets(&self.buckets, self.sum_nanos, self.max_nanos)
    }
}

/// Summary of one named EWMA at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct EwmaSummary {
    /// Instrument name.
    pub name: String,
    /// Smoothed latency, nanoseconds.
    pub nanos: f64,
    /// Samples folded in.
    pub samples: u64,
}

/// One leakage-ledger cell (see [`crate::ledger::LeakageLedger`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// The field operated on.
    pub field: String,
    /// The high-level operation (`insert`, `equality`, …).
    pub op: String,
    /// The tactic whose execution produced the worst observation.
    pub tactic: String,
    /// Worst observed leakage level (1–5).
    pub observed: u8,
    /// Declared admissible level from the field's protection class (1–5).
    pub declared: u8,
    /// Executions recorded.
    pub count: u64,
}

impl LedgerEntry {
    /// Whether this cell leaked beyond its declaration.
    pub fn violates(&self) -> bool {
        self.observed > self.declared
    }
}

/// A point-in-time view over every instrument of a recorder.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// The recorder's node label, when one was set (e.g. `node3`).
    pub label: Option<String>,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// EWMA summaries, sorted by name.
    pub ewmas: Vec<EwmaSummary>,
    /// Leakage-ledger cells, sorted by field then operation.
    pub ledger: Vec<LedgerEntry>,
    /// Traced spans still retained in the ring (trace_id ≠ 0), the raw
    /// material trace trees are reconstructed from.
    pub trace_spans: Vec<Span>,
    /// Total spans recorded since the recorder was created.
    pub spans_recorded: u64,
    /// Spans evicted by the ring bound.
    pub spans_dropped: u64,
}

fn fmt_nanos(nanos: u64) -> String {
    let d = Duration::from_nanos(nanos);
    if d >= Duration::from_secs(1) {
        format!("{:.2}s", d.as_secs_f64())
    } else if d >= Duration::from_millis(1) {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else if d >= Duration::from_micros(1) {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos}ns")
    }
}

fn write_opt_str(out: &mut String, key: &str, value: Option<&str>) {
    let _ = write!(out, ",\"{key}\":");
    match value {
        Some(v) => write_escaped(out, v),
        None => out.push_str("null"),
    }
}

impl Snapshot {
    /// The counter named `name` (0 when absent — counters that never
    /// incremented were never created).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram summary named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The EWMA summary named `name`, if present.
    pub fn ewma(&self, name: &str) -> Option<&EwmaSummary> {
        self.ewmas.iter().find(|e| e.name == name)
    }

    /// Counters whose name starts with `prefix` (e.g. `"gateway."`).
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters.iter().filter(|(n, _)| n.starts_with(prefix)).cloned().collect()
    }

    /// Renders the snapshot as a JSON document (parseable back with
    /// [`Snapshot::from_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"label\":");
        match &self.label {
            Some(l) => write_escaped(&mut out, l),
            None => out.push_str("null"),
        }
        out.push_str(",\"counters\":[");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, name);
            let _ = write!(out, ",\"value\":{value}}}");
        }
        out.push_str("],\"gauges\":[");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, name);
            let _ = write!(out, ",\"value\":{value}}}");
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, &h.name);
            let _ = write!(
                out,
                ",\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"sum_ns\":{}",
                h.count, h.mean_nanos, h.p50_nanos, h.p90_nanos, h.p99_nanos, h.max_nanos, h.sum_nanos
            );
            out.push_str(",\"buckets\":[");
            for (j, (idx, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{idx},{count}]");
            }
            out.push_str("]}");
        }
        out.push_str("],\"ewmas\":[");
        for (i, e) in self.ewmas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, &e.name);
            let _ = write!(out, ",\"nanos\":{:.1},\"samples\":{}}}", e.nanos, e.samples);
        }
        out.push_str("],\"ledger\":[");
        for (i, e) in self.ledger.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"field\":");
            write_escaped(&mut out, &e.field);
            out.push_str(",\"op\":");
            write_escaped(&mut out, &e.op);
            out.push_str(",\"tactic\":");
            write_escaped(&mut out, &e.tactic);
            let _ = write!(
                out,
                ",\"observed\":{},\"declared\":{},\"count\":{},\"violation\":{}}}",
                e.observed,
                e.declared,
                e.count,
                e.violates()
            );
        }
        out.push_str("],\"trace_spans\":[");
        for (i, s) in self.trace_spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"trace\":{},\"span\":{},\"parent\":{}",
                s.id, s.trace_id, s.span_id, s.parent_id
            );
            out.push_str(",\"route\":");
            write_escaped(&mut out, &s.route);
            write_opt_str(&mut out, "node", s.node.as_deref());
            write_opt_str(&mut out, "tactic", s.tactic.as_deref());
            write_opt_str(&mut out, "field", s.field.as_deref());
            write_opt_str(&mut out, "detail", s.detail.as_deref());
            let _ = write!(
                out,
                ",\"ok\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                s.outcome == SpanOutcome::Ok,
                s.start_nanos,
                s.duration.as_nanos().min(u64::MAX as u128) as u64
            );
        }
        let _ =
            write!(out, "],\"spans\":{{\"recorded\":{},\"dropped\":{}}}}}", self.spans_recorded, self.spans_dropped);
        out
    }

    /// Parses a snapshot back from its [`Snapshot::to_json`] form.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field. Absent optional keys (e.g.
    /// from an older emitter without `label`/`trace_spans`) default to
    /// empty rather than erroring.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        Snapshot::from_value(&Json::parse(text)?)
    }

    /// As [`Snapshot::from_json`] over an already-parsed JSON node (used
    /// when the snapshot is nested in a larger document, e.g. a federated
    /// cluster snapshot).
    pub fn from_value(doc: &Json) -> Result<Snapshot, String> {
        let arr = |key: &str| -> &[Json] { doc.get(key).and_then(Json::as_array).unwrap_or(&[]) };
        let name_of = |j: &Json| -> Result<String, String> {
            Ok(j.get("name").and_then(Json::as_str).ok_or("snapshot: entry without name")?.to_string())
        };
        let mut snap =
            Snapshot { label: doc.get("label").and_then(Json::as_str).map(str::to_string), ..Snapshot::default() };
        for c in arr("counters") {
            let value = c.get("value").and_then(Json::as_u64).ok_or("snapshot: counter without value")?;
            snap.counters.push((name_of(c)?, value));
        }
        for g in arr("gauges") {
            let value = g.get("value").and_then(Json::as_f64).ok_or("snapshot: gauge without value")? as i64;
            snap.gauges.push((name_of(g)?, value));
        }
        for h in arr("histograms") {
            let u = |key: &str| h.get(key).and_then(Json::as_u64).unwrap_or(0);
            let mut buckets = Vec::new();
            for pair in h.get("buckets").and_then(Json::as_array).unwrap_or(&[]) {
                let pair = pair.as_array().ok_or("snapshot: histogram bucket not a pair")?;
                if pair.len() != 2 {
                    return Err("snapshot: histogram bucket not a pair".into());
                }
                let idx = pair[0].as_u64().ok_or("snapshot: bucket index")? as u32;
                let count = pair[1].as_u64().ok_or("snapshot: bucket count")?;
                buckets.push((idx, count));
            }
            snap.histograms.push(HistogramSummary {
                name: name_of(h)?,
                count: u("count"),
                mean_nanos: u("mean_ns"),
                p50_nanos: u("p50_ns"),
                p90_nanos: u("p90_ns"),
                p99_nanos: u("p99_ns"),
                max_nanos: u("max_ns"),
                sum_nanos: u("sum_ns"),
                buckets,
            });
        }
        for e in arr("ewmas") {
            snap.ewmas.push(EwmaSummary {
                name: name_of(e)?,
                nanos: e.get("nanos").and_then(Json::as_f64).unwrap_or(0.0),
                samples: e.get("samples").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        for e in arr("ledger") {
            let s = |key: &str| -> Result<String, String> {
                Ok(e.get(key).and_then(Json::as_str).ok_or("snapshot: ledger field missing")?.to_string())
            };
            snap.ledger.push(LedgerEntry {
                field: s("field")?,
                op: s("op")?,
                tactic: s("tactic")?,
                observed: e.get("observed").and_then(Json::as_u64).unwrap_or(0) as u8,
                declared: e.get("declared").and_then(Json::as_u64).unwrap_or(0) as u8,
                count: e.get("count").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        for s in arr("trace_spans") {
            let u = |key: &str| s.get(key).and_then(Json::as_u64).unwrap_or(0);
            let opt = |key: &str| s.get(key).and_then(Json::as_str).map(str::to_string);
            snap.trace_spans.push(Span {
                id: u("id"),
                trace_id: u("trace"),
                span_id: u("span"),
                parent_id: u("parent"),
                node: opt("node"),
                route: s.get("route").and_then(Json::as_str).ok_or("snapshot: span without route")?.to_string(),
                tactic: opt("tactic"),
                field: opt("field"),
                detail: opt("detail"),
                outcome: if s.get("ok") == Some(&Json::Bool(false)) { SpanOutcome::Err } else { SpanOutcome::Ok },
                start_nanos: u("start_ns"),
                duration: Duration::from_nanos(u("dur_ns")),
            });
        }
        if let Some(spans) = doc.get("spans") {
            snap.spans_recorded = spans.get("recorded").and_then(Json::as_u64).unwrap_or(0);
            snap.spans_dropped = spans.get("dropped").and_then(Json::as_u64).unwrap_or(0);
        }
        Ok(snap)
    }

    /// Renders the snapshot as aligned text tables.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str("counters & gauges\n");
            let width =
                self.counters.iter().map(|(n, _)| n.len()).chain(self.gauges.iter().map(|(n, _)| n.len())).max();
            let width = width.unwrap_or(0).max(4);
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$} {value:>12}");
            }
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$} {value:>12}");
            }
            out.push('\n');
        }
        if !self.histograms.is_empty() {
            out.push_str("latency histograms\n");
            let width = self.histograms.iter().map(|h| h.name.len()).max().unwrap_or(4).max(4);
            let _ = writeln!(
                out,
                "  {:<width$} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "mean", "p50", "p99", "max"
            );
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<width$} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    h.name,
                    h.count,
                    fmt_nanos(h.mean_nanos),
                    fmt_nanos(h.p50_nanos),
                    fmt_nanos(h.p99_nanos),
                    fmt_nanos(h.max_nanos)
                );
            }
            out.push('\n');
        }
        if !self.ewmas.is_empty() {
            out.push_str("moving averages\n");
            let width = self.ewmas.iter().map(|e| e.name.len()).max().unwrap_or(4).max(4);
            for e in &self.ewmas {
                let _ = writeln!(out, "  {:<width$} {:>10} ({} samples)", e.name, fmt_nanos(e.nanos as u64), e.samples);
            }
            out.push('\n');
        }
        if !self.ledger.is_empty() {
            out.push_str("leakage ledger (observed vs declared)\n");
            let width = self.ledger.iter().map(|e| e.field.len()).max().unwrap_or(5).max(5);
            let _ = writeln!(
                out,
                "  {:<width$} {:>9} {:>10} {:>12} {:>12} {:>7}",
                "field", "op", "tactic", "observed", "declared", "count"
            );
            for e in &self.ledger {
                let flag = if e.violates() { " VIOLATION" } else { "" };
                let _ = writeln!(
                    out,
                    "  {:<width$} {:>9} {:>10} {:>12} {:>12} {:>7}{flag}",
                    e.field,
                    e.op,
                    e.tactic,
                    level_name(e.observed),
                    level_name(e.declared),
                    e.count
                );
            }
            out.push('\n');
        }
        let _ = writeln!(out, "spans: {} recorded, {} dropped", self.spans_recorded, self.spans_dropped);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn sample() -> Snapshot {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        let mut span = Span::untraced(3, "gateway.insert", SpanOutcome::Err, Duration::from_micros(40));
        span.trace_id = 11;
        span.span_id = 12;
        span.parent_id = 11;
        span.node = Some("node1".into());
        span.detail = Some("quorum not met".into());
        span.start_nanos = 5_000;
        Snapshot {
            label: Some("gw".into()),
            counters: vec![("gateway.insert.count".into(), 7)],
            gauges: vec![("channel.breaker.state".into(), 1)],
            histograms: vec![HistogramSummary::of("gateway.insert.latency", &h)],
            ewmas: vec![EwmaSummary { name: "tactic.mitra.eq_query".into(), nanos: 1234.5, samples: 3 }],
            ledger: vec![LedgerEntry {
                field: "subject".into(),
                op: "equality".into(),
                tactic: "mitra".into(),
                observed: 2,
                declared: 2,
                count: 9,
            }],
            trace_spans: vec![span],
            spans_recorded: 10,
            spans_dropped: 2,
        }
    }

    #[test]
    fn json_round_trips_through_parser() {
        let snap = sample();
        let parsed = Json::parse(&snap.to_json()).unwrap();
        let counters = parsed.get("counters").unwrap().as_array().unwrap();
        assert_eq!(counters[0].get("name").unwrap().as_str(), Some("gateway.insert.count"));
        assert_eq!(counters[0].get("value").unwrap().as_u64(), Some(7));
        let ledger = parsed.get("ledger").unwrap().as_array().unwrap();
        assert_eq!(ledger[0].get("violation"), Some(&Json::Bool(false)));
        assert_eq!(parsed.get("spans").unwrap().get("recorded").unwrap().as_u64(), Some(10));
        assert_eq!(parsed.get("label").unwrap().as_str(), Some("gw"));
    }

    #[test]
    fn from_json_reconstructs_the_snapshot() {
        let snap = sample();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.label.as_deref(), Some("gw"));
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms, snap.histograms, "buckets survive the round trip");
        assert_eq!(back.ledger, snap.ledger);
        assert_eq!(back.spans_recorded, 10);
        assert_eq!(back.spans_dropped, 2);
        assert_eq!(back.trace_spans.len(), 1);
        let s = &back.trace_spans[0];
        assert_eq!((s.trace_id, s.span_id, s.parent_id), (11, 12, 11));
        assert_eq!(s.node.as_deref(), Some("node1"));
        assert_eq!(s.detail.as_deref(), Some("quorum not met"));
        assert_eq!(s.outcome, SpanOutcome::Err);
        assert_eq!(s.start_nanos, 5_000);
        assert_eq!(s.duration, Duration::from_micros(40));
        assert_eq!(s.tactic, None, "null decodes back to None");
    }

    #[test]
    fn from_json_tolerates_pre_trace_documents() {
        // A snapshot emitted before label/trace_spans existed.
        let old = r#"{"counters":[{"name":"a.count","value":2}],"gauges":[],"histograms":[],"ewmas":[],"ledger":[],"spans":{"recorded":1,"dropped":0}}"#;
        let snap = Snapshot::from_json(old).unwrap();
        assert_eq!(snap.label, None);
        assert_eq!(snap.counter("a.count"), 2);
        assert!(snap.trace_spans.is_empty());
        assert_eq!(snap.spans_recorded, 1);
    }

    #[test]
    fn summary_rebuilds_histogram_losslessly() {
        let mut h = LatencyHistogram::new();
        for us in [3, 50, 50, 900, 12_000] {
            h.record(Duration::from_micros(us));
        }
        let summary = HistogramSummary::of("x", &h);
        let back = summary.to_histogram();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.mean(), h.mean());
        assert_eq!(back.max(), h.max());
        assert_eq!(back.percentile(0.99), h.percentile(0.99));
    }

    #[test]
    fn text_tables_align_and_name_levels() {
        let text = sample().to_text();
        assert!(text.contains("gateway.insert.count"));
        assert!(text.contains("Identifiers"), "levels rendered by name: {text}");
        assert!(text.contains("spans: 10 recorded, 2 dropped"));
    }

    #[test]
    fn lookup_helpers() {
        let snap = sample();
        assert_eq!(snap.counter("gateway.insert.count"), 7);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("channel.breaker.state"), Some(1));
        assert_eq!(snap.histogram("gateway.insert.latency").unwrap().count, 1);
        assert_eq!(snap.ewma("tactic.mitra.eq_query").unwrap().samples, 3);
        assert_eq!(snap.counters_with_prefix("gateway.").len(), 1);
    }
}
