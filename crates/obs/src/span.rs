//! Structured spans and the ring-buffered in-memory sink.
//!
//! A [`Span`] is one completed operation as seen at an instrumentation
//! point: which route ran, through which tactic and field (when known),
//! how it ended and how long it took. The [`SpanSink`] keeps the most
//! recent spans in a bounded ring; older spans are dropped and counted,
//! never reallocated — recording cost stays flat under load.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How an operation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Completed successfully.
    Ok,
    /// Returned an error.
    Err,
}

/// One completed, recorded operation.
#[derive(Debug, Clone)]
pub struct Span {
    /// Monotonic operation id, unique per recorder.
    pub id: u64,
    /// The instrumented route, e.g. `gateway.insert`.
    pub route: String,
    /// The tactic involved, when the instrumentation point knows it.
    pub tactic: Option<String>,
    /// The field involved, when known.
    pub field: Option<String>,
    /// How the operation ended.
    pub outcome: SpanOutcome,
    /// Wall-clock duration.
    pub duration: Duration,
}

/// A bounded in-memory ring of recent spans.
pub struct SpanSink {
    capacity: usize,
    ring: Mutex<VecDeque<Span>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl SpanSink {
    /// A sink retaining up to `capacity` recent spans.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanSink {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records a span, evicting the oldest when full.
    pub fn push(&self, span: Span) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("span lock");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// The retained spans, oldest first.
    pub fn recent(&self) -> Vec<Span> {
        self.ring.lock().expect("span lock").iter().cloned().collect()
    }

    /// Total spans ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64) -> Span {
        Span {
            id,
            route: "gateway.insert".into(),
            tactic: Some("mitra".into()),
            field: Some("subject".into()),
            outcome: SpanOutcome::Ok,
            duration: Duration::from_micros(id),
        }
    }

    #[test]
    fn ring_bounds_and_counts() {
        let sink = SpanSink::new(3);
        for id in 0..5 {
            sink.push(span(id));
        }
        let recent = sink.recent();
        assert_eq!(recent.iter().map(|s| s.id).collect::<Vec<_>>(), vec![2, 3, 4], "oldest evicted first");
        assert_eq!(sink.recorded(), 5);
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn concurrent_pushes_all_counted() {
        let sink = std::sync::Arc::new(SpanSink::new(64));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        sink.push(span(t * 1000 + i));
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(sink.recorded(), 4000);
        assert_eq!(sink.dropped(), 4000 - 64);
        assert_eq!(sink.recent().len(), 64);
    }
}
