//! Structured spans and the ring-buffered in-memory sink.
//!
//! A [`Span`] is one completed operation as seen at an instrumentation
//! point: which route ran, through which tactic and field (when known),
//! how it ended and how long it took. Since the tracing layer landed a
//! span also names its position in a causal tree — `trace_id`, `span_id`
//! and `parent_id` (all 0 for untraced spans) — plus the node label of
//! the recorder that produced it and its start offset from the process
//! trace epoch, which is what lets spans recorded by *different*
//! recorders (gateway, cluster, each replica) reassemble into one tree.
//!
//! The [`SpanSink`] keeps the most recent spans in a bounded ring; older
//! spans are dropped and counted, never reallocated — recording cost
//! stays flat under load. Recording never panics: a sink whose lock was
//! poisoned by a panicking recorder thread recovers the guard and keeps
//! accepting spans (the ring holds plain data, so no invariant can be
//! half-written).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// How an operation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Completed successfully.
    Ok,
    /// Returned an error.
    Err,
}

/// One completed, recorded operation.
#[derive(Debug, Clone)]
pub struct Span {
    /// Monotonic operation id, unique per recorder.
    pub id: u64,
    /// The trace this span belongs to (0 = untraced).
    pub trace_id: u64,
    /// This span's process-unique id within the trace (0 = untraced).
    pub span_id: u64,
    /// The parent span's id (0 = root or untraced).
    pub parent_id: u64,
    /// Label of the recorder that produced the span (e.g. `node3`).
    pub node: Option<String>,
    /// The instrumented route, e.g. `gateway.insert`.
    pub route: String,
    /// The tactic involved, when the instrumentation point knows it.
    pub tactic: Option<String>,
    /// The field involved, when known.
    pub field: Option<String>,
    /// Free-form annotation, e.g. the error an attempt died with.
    pub detail: Option<String>,
    /// How the operation ended.
    pub outcome: SpanOutcome,
    /// Start offset from the process trace epoch, nanoseconds.
    pub start_nanos: u64,
    /// Wall-clock duration.
    pub duration: Duration,
}

impl Span {
    /// A span outside any trace: id and timing only, every tree field 0.
    pub fn untraced(id: u64, route: &str, outcome: SpanOutcome, duration: Duration) -> Self {
        Span {
            id,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            node: None,
            route: route.to_string(),
            tactic: None,
            field: None,
            detail: None,
            outcome,
            start_nanos: 0,
            duration,
        }
    }
}

/// A bounded in-memory ring of recent spans.
pub struct SpanSink {
    capacity: usize,
    ring: Mutex<VecDeque<Span>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl SpanSink {
    /// A sink retaining up to `capacity` recent spans.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanSink {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records a span, evicting the oldest when full. Never panics — a
    /// poisoned ring (some recorder thread panicked mid-push) is recovered,
    /// since the ring's contents are plain data.
    pub fn push(&self, span: Span) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// The retained spans, oldest first.
    pub fn recent(&self) -> Vec<Span> {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner).iter().cloned().collect()
    }

    /// Total spans ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64) -> Span {
        Span {
            tactic: Some("mitra".into()),
            field: Some("subject".into()),
            ..Span::untraced(id, "gateway.insert", SpanOutcome::Ok, Duration::from_micros(id))
        }
    }

    #[test]
    fn ring_bounds_and_counts() {
        let sink = SpanSink::new(3);
        for id in 0..5 {
            sink.push(span(id));
        }
        let recent = sink.recent();
        assert_eq!(recent.iter().map(|s| s.id).collect::<Vec<_>>(), vec![2, 3, 4], "oldest evicted first");
        assert_eq!(sink.recorded(), 5);
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn concurrent_pushes_all_counted() {
        let sink = std::sync::Arc::new(SpanSink::new(64));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        sink.push(span(t * 1000 + i));
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(sink.recorded(), 4000);
        assert_eq!(sink.dropped(), 4000 - 64);
        assert_eq!(sink.recent().len(), 64);
    }

    #[test]
    fn poisoned_ring_keeps_recording() {
        let sink = std::sync::Arc::new(SpanSink::new(8));
        sink.push(span(1));
        let poisoner = sink.clone();
        let result = std::thread::spawn(move || {
            // Panic while holding the ring lock — exactly what a panicking
            // recorder thread does to a std Mutex.
            let _guard = poisoner.ring.lock().unwrap();
            panic!("recorder thread dies mid-record");
        })
        .join();
        assert!(result.is_err(), "the poisoning thread must have panicked");
        assert!(sink.ring.lock().is_err(), "lock really is poisoned");

        // Later pushes and reads must survive the poison.
        sink.push(span(2));
        let recent = sink.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(sink.recorded(), 2);
    }
}
