//! Causal trace context: the glue that turns flat spans into trees.
//!
//! A [`TraceCtx`] names one position in one trace: the trace it belongs to
//! and the span that is currently open. Context propagates two ways:
//!
//! * **within a process/thread** through an implicit thread-local (all the
//!   simulated transport is synchronous, so a gateway operation and every
//!   replica apply it fans out to share one call stack), and
//! * **across the wire** through the [`TRACED_ROUTE`] envelope: callers
//!   that hold a context wrap `(route, payload)` in
//!   [`encode_traced`]; services unwrap with [`decode_traced`], install
//!   the carried context for the duration of the inner call, and restore
//!   the previous one after. Envelopes without a trace context — every
//!   pre-existing route — keep decoding exactly as before; the envelope is
//!   strictly additive.
//!
//! Span and trace ids are minted from one process-wide counter, so ids are
//! unique across every recorder in the process (gateway, cluster, and each
//! replica node), which is what lets a federated snapshot reassemble one
//! tree from spans recorded by different recorders. Span start offsets are
//! measured from a process-wide epoch ([`epoch_nanos`]) for the same
//! reason.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::span::Span;

/// The reserved route carrying a traced envelope. Classified as neither a
/// read nor a write by itself: services unwrap it and re-dispatch on the
/// inner route before any write/journal decision.
pub const TRACED_ROUTE: &str = "obs/traced";

/// One position in one trace: which trace, and which span is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The trace this context belongs to (the root span's id).
    pub trace_id: u64,
    /// The currently open span — the parent of anything started under it.
    pub span_id: u64,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
    static COLLECTORS: RefCell<Vec<Collector>> = const { RefCell::new(Vec::new()) };
}

struct Collector {
    trace_id: u64,
    spans: Vec<Span>,
}

/// Mints a process-unique span/trace id (never 0 — 0 means "untraced").
pub fn mint_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Nanoseconds since the process trace epoch (first use fixes the epoch).
pub fn epoch_nanos() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The trace context currently installed on this thread, if any.
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(|c| c.get())
}

/// Installs `ctx` (or clears it with `None`) and returns the previous
/// value. Prefer the RAII [`CtxScope`] via [`TraceCtx::enter`].
pub fn swap_current(ctx: Option<TraceCtx>) -> Option<TraceCtx> {
    CURRENT.with(|c| c.replace(ctx))
}

/// Restores the previous thread-local context on drop.
#[must_use = "dropping the scope immediately uninstalls the context"]
pub struct CtxScope {
    prev: Option<TraceCtx>,
}

impl TraceCtx {
    /// Installs `self` as the current context until the scope drops.
    pub fn enter(self) -> CtxScope {
        CtxScope { prev: swap_current(Some(self)) }
    }
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        swap_current(self.prev);
    }
}

/// Opens a per-thread collector accumulating every span finished under
/// `trace_id` (used by the slow-op log to capture whole trees).
pub(crate) fn open_collector(trace_id: u64) {
    COLLECTORS.with(|c| c.borrow_mut().push(Collector { trace_id, spans: Vec::new() }));
}

/// Offers a finished span to the innermost matching open collector.
pub(crate) fn collect(span: &Span) {
    if span.trace_id == 0 {
        return;
    }
    COLLECTORS.with(|c| {
        let mut stack = c.borrow_mut();
        if let Some(col) = stack.iter_mut().rev().find(|col| col.trace_id == span.trace_id) {
            col.spans.push(span.clone());
        }
    });
}

/// Closes the collector for `trace_id` and returns what it gathered.
pub(crate) fn close_collector(trace_id: u64) -> Vec<Span> {
    COLLECTORS.with(|c| {
        let mut stack = c.borrow_mut();
        match stack.iter().rposition(|col| col.trace_id == trace_id) {
            Some(pos) => stack.remove(pos).spans,
            None => Vec::new(),
        }
    })
}

// ---------------------------------------------------------------------------
// Wire envelope
// ---------------------------------------------------------------------------

/// Encodes a traced envelope: `trace_id ‖ span_id ‖ route ‖ payload`, every
/// field length-prefixed so any strict prefix fails to decode.
pub fn encode_traced(ctx: TraceCtx, route: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 + 2 + route.len() + 4 + payload.len());
    out.extend_from_slice(&ctx.trace_id.to_be_bytes());
    out.extend_from_slice(&ctx.span_id.to_be_bytes());
    out.extend_from_slice(&(route.len() as u16).to_be_bytes());
    out.extend_from_slice(route.as_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a traced envelope, borrowing the inner route and payload.
///
/// # Errors
///
/// A static message naming the first malformed field; truncated input at
/// any strict prefix is always an error, never a partial decode.
pub fn decode_traced(buf: &[u8]) -> Result<(TraceCtx, &str, &[u8]), &'static str> {
    let (trace_bytes, rest) = buf.split_first_chunk::<8>().ok_or("traced: short trace id")?;
    let (span_bytes, rest) = rest.split_first_chunk::<8>().ok_or("traced: short span id")?;
    let (route_len, rest) = rest.split_first_chunk::<2>().ok_or("traced: short route length")?;
    let route_len = u16::from_be_bytes(*route_len) as usize;
    let (route_bytes, rest) = rest.split_at_checked(route_len).ok_or("traced: short route")?;
    let route = std::str::from_utf8(route_bytes).map_err(|_| "traced: route not utf-8")?;
    let (payload_len, rest) = rest.split_first_chunk::<4>().ok_or("traced: short payload length")?;
    let payload_len = u32::from_be_bytes(*payload_len) as usize;
    let (payload, rest) = rest.split_at_checked(payload_len).ok_or("traced: short payload")?;
    if !rest.is_empty() {
        return Err("traced: trailing bytes");
    }
    let ctx = TraceCtx { trace_id: u64::from_be_bytes(*trace_bytes), span_id: u64::from_be_bytes(*span_bytes) };
    Ok((ctx, route, payload))
}

// ---------------------------------------------------------------------------
// Timeline rendering
// ---------------------------------------------------------------------------

/// Renders a trace tree as an indented text timeline: one line per span
/// with its offset from the trace start, duration, a proportional bar, and
/// outcome. Spans are `spans` in any order; orphans (parent not in the
/// set) render at the root level.
pub fn render_trace_timeline(spans: &[Span]) -> String {
    if spans.is_empty() {
        return "(empty trace)\n".to_string();
    }
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].start_nanos, spans[i].span_id));
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let t0 = spans.iter().map(|s| s.start_nanos).min().unwrap_or(0);
    let total = spans
        .iter()
        .map(|s| (s.start_nanos - t0).saturating_add(s.duration.as_nanos() as u64))
        .max()
        .unwrap_or(0)
        .max(1);
    let mut depth_of = std::collections::BTreeMap::new();
    // Iterative depth: parents sort before children by start offset almost
    // always; a second pass catches stragglers.
    for _ in 0..2 {
        for &i in &order {
            let s = &spans[i];
            let d = if s.parent_id == 0 || !ids.contains(&s.parent_id) {
                0
            } else {
                depth_of.get(&s.parent_id).copied().unwrap_or(0) + 1
            };
            depth_of.insert(s.span_id, d);
        }
    }
    const BAR: usize = 24;
    let mut out = String::new();
    let root = order.iter().map(|&i| &spans[i]).find(|s| s.parent_id == 0 || !ids.contains(&s.parent_id));
    if let Some(r) = root {
        let _ = writeln!(out, "trace {} · root {} · {:.3}ms total", r.trace_id, r.route, total as f64 / 1e6);
    }
    for &i in &order {
        let s = &spans[i];
        let depth = depth_of.get(&s.span_id).copied().unwrap_or(0);
        let off = s.start_nanos - t0;
        let dur = s.duration.as_nanos() as u64;
        let lead = ((off as u128 * BAR as u128) / total as u128) as usize;
        let fill = (dur as u128 * BAR as u128).div_ceil(total as u128) as usize;
        let fill = fill.clamp(1, BAR.saturating_sub(lead).max(1));
        let mut bar = String::with_capacity(BAR);
        for _ in 0..lead.min(BAR - 1) {
            bar.push(' ');
        }
        for _ in 0..fill {
            bar.push('█');
        }
        while bar.chars().count() < BAR {
            bar.push(' ');
        }
        let node = s.node.as_deref().unwrap_or("-");
        let outcome = match s.outcome {
            crate::span::SpanOutcome::Ok => "ok",
            crate::span::SpanOutcome::Err => "ERR",
        };
        let detail = s.detail.as_deref().map(|d| format!(" ({d})")).unwrap_or_default();
        let _ = writeln!(
            out,
            "  [{bar}] +{:>9.3}ms {:>9.3}ms {:indent$}{} @{node} {outcome}{detail}",
            off as f64 / 1e6,
            dur as f64 / 1e6,
            "",
            s.route,
            indent = depth * 2,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanOutcome;
    use std::time::Duration;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = mint_id();
        let b = mint_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ctx_scope_nests_and_restores() {
        assert_eq!(current(), None);
        let outer = TraceCtx { trace_id: 1, span_id: 1 };
        let inner = TraceCtx { trace_id: 1, span_id: 2 };
        {
            let _o = outer.enter();
            assert_eq!(current(), Some(outer));
            {
                let _i = inner.enter();
                assert_eq!(current(), Some(inner));
            }
            assert_eq!(current(), Some(outer));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn traced_envelope_round_trips() {
        let ctx = TraceCtx { trace_id: 42, span_id: 7 };
        let buf = encode_traced(ctx, "doc/insert", b"payload");
        let (got, route, payload) = decode_traced(&buf).unwrap();
        assert_eq!(got, ctx);
        assert_eq!(route, "doc/insert");
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn traced_envelope_rejects_every_strict_prefix() {
        let buf = encode_traced(TraceCtx { trace_id: 1, span_id: 2 }, "r", b"xyz");
        for cut in 0..buf.len() {
            assert!(decode_traced(&buf[..cut]).is_err(), "prefix of {cut} bytes must not decode");
        }
        let mut extended = buf.clone();
        extended.push(0);
        assert!(decode_traced(&extended).is_err(), "trailing bytes must not decode");
    }

    #[test]
    fn collector_gathers_matching_spans() {
        open_collector(9);
        let mk = |trace_id: u64, span_id: u64| Span {
            trace_id,
            span_id,
            parent_id: 0,
            ..Span::untraced(0, "r", SpanOutcome::Ok, Duration::ZERO)
        };
        collect(&mk(9, 1));
        collect(&mk(8, 2)); // other trace: ignored
        collect(&mk(0, 3)); // untraced: ignored
        let got = close_collector(9);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].span_id, 1);
        assert!(close_collector(9).is_empty(), "collector closed");
    }

    #[test]
    fn timeline_renders_tree() {
        let mut root = Span::untraced(0, "gateway.insert", SpanOutcome::Ok, Duration::from_millis(4));
        root.trace_id = 5;
        root.span_id = 5;
        root.start_nanos = 0;
        let mut child = Span::untraced(1, "channel.call", SpanOutcome::Err, Duration::from_millis(2));
        child.trace_id = 5;
        child.span_id = 6;
        child.parent_id = 5;
        child.start_nanos = 1_000_000;
        child.node = Some("node2".into());
        child.detail = Some("timed out".into());
        let text = render_trace_timeline(&[child, root]);
        assert!(text.contains("gateway.insert"), "{text}");
        assert!(text.contains("channel.call"), "{text}");
        assert!(text.contains("@node2"), "{text}");
        assert!(text.contains("timed out"), "{text}");
        assert!(text.contains("trace 5"), "{text}");
    }
}
