//! Property tests for histogram merging — the operation snapshot
//! federation leans on. The invariant: merging per-node histograms must be
//! indistinguishable from having recorded the union of all samples into
//! one histogram, and every derived statistic (count, sum, mean, max,
//! quantiles) must agree exactly, since both sides quantize through the
//! same log-linear buckets.

use std::time::Duration;

use datablinder_obs::snapshot::HistogramSummary;
use datablinder_obs::LatencyHistogram;
use proptest::prelude::*;

fn histogram_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &nanos in samples {
        h.record(Duration::from_nanos(nanos));
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// merge(a, b) ≡ record(a ∪ b): all statistics agree exactly.
    #[test]
    fn merge_equals_recording_the_union(
        a in prop::collection::vec(1u64..=30_000_000_000, 0..200),
        b in prop::collection::vec(1u64..=30_000_000_000, 0..200),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let direct = histogram_of(&union);

        prop_assert_eq!(merged.count(), direct.count());
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.mean(), direct.mean());
        prop_assert_eq!(merged.max(), direct.max());
        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 1.0] {
            prop_assert_eq!(merged.percentile(q), direct.percentile(q));
        }
        prop_assert_eq!(
            HistogramSummary::of("x", &merged),
            HistogramSummary::of("x", &direct),
            "summaries (incl. raw buckets) agree"
        );
    }

    /// Quantiles of the merge are bounded by the true sample range up to
    /// bucket quantization: log-linear buckets are 1/32-relative wide, so a
    /// bucket's representative value sits within one sub-bucket step of any
    /// sample it absorbed.
    #[test]
    fn merged_quantiles_bound_the_samples(
        a in prop::collection::vec(1u64..=30_000_000_000, 1..100),
        b in prop::collection::vec(1u64..=30_000_000_000, 1..100),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));
        let lo = *a.iter().chain(b.iter()).min().unwrap();
        let hi = *a.iter().chain(b.iter()).max().unwrap();
        for q in [0.0, 0.5, 1.0] {
            let v = merged.percentile(q).as_nanos() as u64;
            prop_assert!(v >= lo.saturating_sub(lo / 16 + 1), "p{q} {v} far below smallest sample {lo}");
            prop_assert!(v <= hi + hi / 16 + 1, "p{q} {v} far above largest sample {hi}");
        }
        prop_assert_eq!(merged.sum_nanos(), histogram_of(&a).sum_nanos() + histogram_of(&b).sum_nanos());
    }

    /// Merging through the lossless summary-bucket round trip (what
    /// federation actually does over the wire) equals merging directly.
    #[test]
    fn bucket_round_trip_preserves_merge(
        a in prop::collection::vec(1u64..=30_000_000_000, 0..100),
        b in prop::collection::vec(1u64..=30_000_000_000, 0..100),
    ) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        let mut direct = ha.clone();
        direct.merge(&hb);
        let mut via_wire = HistogramSummary::of("x", &ha).to_histogram();
        via_wire.merge(&HistogramSummary::of("x", &hb).to_histogram());
        prop_assert_eq!(HistogramSummary::of("x", &via_wire), HistogramSummary::of("x", &direct));
    }
}
