//! Order-preserving encryption (OPE) in the style of Boldyreva, Chenette,
//! Lee and O'Neill (CT-RSA 2009 / ePrint 2012/624).
//!
//! The scheme maps a `domain_bits`-bit plaintext to a strictly larger
//! `range_bits`-bit ciphertext such that `a < b ⇒ Enc(a) < Enc(b)`. The
//! paper's DataBlinder system used the `aymanmadkour/ope` Java
//! implementation for its Range Query tactic (protection class 5, leakage
//! level *Order*).
//!
//! # Substitution note (recorded in DESIGN.md)
//!
//! The reference scheme samples from an exact hypergeometric distribution.
//! Like most practical implementations, we substitute a deterministic
//! normal-approximated binomial sampler seeded from HMAC-SHA256 coins.
//! Order preservation and determinism — the properties the middleware and
//! the evaluation rely on — are unaffected; only the exact ciphertext
//! distribution differs.
//!
//! # Examples
//!
//! ```
//! use datablinder_ope::{Ope, OpeParams};
//! use datablinder_primitives::keys::SymmetricKey;
//!
//! let ope = Ope::new(SymmetricKey::from_bytes(&[1u8; 32]), OpeParams::default());
//! let a = ope.encrypt(1000);
//! let b = ope.encrypt(2000);
//! assert!(a < b);
//! assert_eq!(ope.decrypt(a), Some(1000));
//! ```

#![warn(missing_docs)]
use datablinder_primitives::hmac::HmacCtx;
use datablinder_primitives::keys::SymmetricKey;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain/range sizing for an [`Ope`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpeParams {
    /// Plaintext width in bits (max 64).
    pub domain_bits: u32,
    /// Ciphertext width in bits (max 127, must exceed `domain_bits`).
    pub range_bits: u32,
}

impl Default for OpeParams {
    /// 64-bit domain into a 96-bit range (CryptDB-like expansion).
    fn default() -> Self {
        OpeParams { domain_bits: 64, range_bits: 96 }
    }
}

/// A deterministic order-preserving cipher for unsigned integers.
#[derive(Clone)]
pub struct Ope {
    // HMAC midstates for the coin-tape PRF, prepared once per key: an
    // encryption walks one tree level per domain bit and seeds a coin
    // tape at each, so skipping HMAC key preparation there compounds.
    mac: HmacCtx,
    params: OpeParams,
}

impl Ope {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if `domain_bits > 64`, `range_bits > 127`, or
    /// `range_bits <= domain_bits`.
    pub fn new(key: SymmetricKey, params: OpeParams) -> Self {
        assert!(params.domain_bits >= 1 && params.domain_bits <= 64, "domain_bits must be 1..=64");
        assert!(params.range_bits <= 127, "range_bits must be <= 127");
        assert!(params.range_bits > params.domain_bits, "range must be strictly larger than domain");
        Ope { mac: HmacCtx::new(key.as_bytes()), params }
    }

    /// The sizing parameters.
    pub fn params(&self) -> OpeParams {
        self.params
    }

    /// Encrypts `m`. Plaintexts wider than `domain_bits` are masked down.
    pub fn encrypt(&self, m: u64) -> u128 {
        let m = self.mask(m) as u128;
        let mut dlo: u128 = 0;
        let mut dhi: u128 = self.domain_size() - 1;
        let mut rlo: u128 = 0;
        let mut rhi: u128 = self.range_size() - 1;
        loop {
            if dlo == dhi {
                return self.final_sample(dlo as u64, rlo, rhi);
            }
            let (x, y) = self.split(dlo, dhi, rlo, rhi);
            if m <= x {
                dhi = x;
                rhi = y;
            } else {
                dlo = x + 1;
                rlo = y + 1;
            }
        }
    }

    /// Decrypts a ciphertext produced by [`Ope::encrypt`].
    ///
    /// Returns `None` if `c` is not a valid ciphertext of any plaintext
    /// (i.e. does not land on the sampled point for its bucket).
    pub fn decrypt(&self, c: u128) -> Option<u64> {
        if c >= self.range_size() {
            return None;
        }
        let mut dlo: u128 = 0;
        let mut dhi: u128 = self.domain_size() - 1;
        let mut rlo: u128 = 0;
        let mut rhi: u128 = self.range_size() - 1;
        loop {
            if dlo == dhi {
                let m = dlo as u64;
                return if self.final_sample(m, rlo, rhi) == c { Some(m) } else { None };
            }
            let (x, y) = self.split(dlo, dhi, rlo, rhi);
            if c <= y {
                dhi = x;
                rhi = y;
            } else {
                dlo = x + 1;
                rlo = y + 1;
            }
        }
    }

    fn mask(&self, m: u64) -> u64 {
        if self.params.domain_bits == 64 {
            m
        } else {
            m & ((1u64 << self.params.domain_bits) - 1)
        }
    }

    fn domain_size(&self) -> u128 {
        1u128 << self.params.domain_bits
    }

    fn range_size(&self) -> u128 {
        1u128 << self.params.range_bits
    }

    /// Splits the current (domain, range) window: the range midpoint `y`
    /// and the deterministically sampled domain pivot `x`, such that
    /// plaintexts `<= x` map below `y` and the rest above.
    fn split(&self, dlo: u128, dhi: u128, rlo: u128, rhi: u128) -> (u128, u128) {
        let dsize = dhi - dlo + 1;
        let rsize = rhi - rlo + 1;
        debug_assert!(rsize >= dsize && dsize >= 2);
        let y = rlo + (rsize / 2) - 1; // last slot of the lower half-range
        let lower_range = y - rlo + 1;
        // Valid pivot count k = number of domain points mapped at or below y:
        // k ∈ [max(0, dsize - (rsize - lower_range)), min(dsize, lower_range)]
        let upper_range = rsize - lower_range;
        let k_min = dsize.saturating_sub(upper_range);
        let k_max = dsize.min(lower_range);
        let k = self.sample_pivot(dlo, dhi, rlo, rhi, dsize, lower_range, rsize, k_min, k_max);
        // Keep both branches non-degenerate: k ∈ [max(k_min,1), min(k_max, dsize-1)].
        // This interval is provably non-empty for dsize >= 2 and rsize >= dsize.
        let k = k.clamp(k_min.max(1), k_max.min(dsize - 1));
        (dlo + k - 1, y)
    }

    /// Deterministic binomial(dsize, lower/rsize) sample via normal
    /// approximation, clamped into `[k_min, k_max]`.
    #[allow(clippy::too_many_arguments)]
    fn sample_pivot(
        &self,
        dlo: u128,
        dhi: u128,
        rlo: u128,
        rhi: u128,
        dsize: u128,
        lower_range: u128,
        rsize: u128,
        k_min: u128,
        k_max: u128,
    ) -> u128 {
        let mut rng = self.coins(&[&dlo.to_be_bytes(), &dhi.to_be_bytes(), &rlo.to_be_bytes(), &rhi.to_be_bytes()]);
        let n = dsize as f64;
        let p = lower_range as f64 / rsize as f64;
        let mean = n * p;
        let sd = (n * p * (1.0 - p)).sqrt();
        // Box–Muller standard normal from two uniform draws.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let sample = (mean + sd * z).round();
        let sample = if sample.is_finite() && sample >= 0.0 { sample as u128 } else { 0 };
        sample.clamp(k_min, k_max)
    }

    /// Deterministic uniform sample for the leaf bucket of plaintext `m`.
    fn final_sample(&self, m: u64, rlo: u128, rhi: u128) -> u128 {
        let mut rng = self.coins(&[b"leaf", &m.to_be_bytes(), &rlo.to_be_bytes(), &rhi.to_be_bytes()]);
        rng.gen_range(0..=(rhi - rlo)) + rlo
    }

    /// PRF-seeded deterministic coin tape.
    fn coins(&self, parts: &[&[u8]]) -> StdRng {
        let mut buf = Vec::new();
        for p in parts {
            buf.extend_from_slice(&(p.len() as u64).to_be_bytes());
            buf.extend_from_slice(p);
        }
        let seed = self.mac.mac(&buf);
        StdRng::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ope() -> Ope {
        Ope::new(SymmetricKey::from_bytes(&[42u8; 32]), OpeParams { domain_bits: 32, range_bits: 48 })
    }

    #[test]
    fn order_preserved_on_sorted_inputs() {
        let o = ope();
        let inputs = [0u64, 1, 2, 10, 100, 1000, 65535, 65536, 1 << 20, (1 << 32) - 1];
        let cts: Vec<u128> = inputs.iter().map(|&m| o.encrypt(m)).collect();
        for w in cts.windows(2) {
            assert!(w[0] < w[1], "order violated: {} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn deterministic() {
        let o = ope();
        assert_eq!(o.encrypt(12345), o.encrypt(12345));
    }

    #[test]
    fn different_keys_differ() {
        let a = Ope::new(SymmetricKey::from_bytes(&[1u8; 32]), OpeParams { domain_bits: 32, range_bits: 48 });
        let b = Ope::new(SymmetricKey::from_bytes(&[2u8; 32]), OpeParams { domain_bits: 32, range_bits: 48 });
        assert_ne!(a.encrypt(777), b.encrypt(777));
    }

    #[test]
    fn decrypt_roundtrip() {
        let o = ope();
        for m in [0u64, 1, 500, 65535, (1 << 32) - 1] {
            let c = o.encrypt(m);
            assert_eq!(o.decrypt(c), Some(m), "m={m}");
        }
    }

    #[test]
    fn decrypt_rejects_non_ciphertexts() {
        let o = ope();
        let c = o.encrypt(1000);
        // Overwhelmingly likely that c+1 is not a valid ciphertext.
        let neighbors = [c - 1, c + 1];
        assert!(neighbors.iter().any(|&x| o.decrypt(x).is_none()));
        assert_eq!(o.decrypt(u128::MAX), None);
    }

    #[test]
    fn range_bound_respected() {
        let o = ope();
        let max = o.encrypt(u64::MAX); // masked to 32 bits
        assert!(max < 1u128 << 48);
    }

    #[test]
    fn small_domain_exhaustive_order() {
        let o = Ope::new(SymmetricKey::from_bytes(&[9u8; 32]), OpeParams { domain_bits: 8, range_bits: 16 });
        let mut prev = None;
        for m in 0u64..256 {
            let c = o.encrypt(m);
            if let Some(p) = prev {
                assert!(c > p, "violation at m={m}");
            }
            assert_eq!(o.decrypt(c), Some(m));
            prev = Some(c);
        }
    }

    #[test]
    #[should_panic(expected = "range must be strictly larger")]
    fn bad_params_rejected() {
        Ope::new(SymmetricKey::from_bytes(&[0u8; 32]), OpeParams { domain_bits: 32, range_bits: 32 });
    }
}
