//! Property tests for OPE: strict order preservation, determinism and
//! decryption inversion over arbitrary plaintext pairs.

use datablinder_ope::{Ope, OpeParams};
use datablinder_primitives::keys::SymmetricKey;
use proptest::prelude::*;

fn ope(seed: u8) -> Ope {
    Ope::new(SymmetricKey::from_bytes(&[seed; 32]), OpeParams { domain_bits: 48, range_bits: 72 })
}

proptest! {
    #[test]
    fn order_preserved(a in 0u64..(1 << 48), b in 0u64..(1 << 48)) {
        let o = ope(1);
        let (ca, cb) = (o.encrypt(a), o.encrypt(b));
        prop_assert_eq!(a.cmp(&b), ca.cmp(&cb), "plaintext vs ciphertext order");
    }

    #[test]
    fn deterministic_and_injective(a in 0u64..(1 << 48), b in 0u64..(1 << 48)) {
        let o = ope(2);
        prop_assert_eq!(o.encrypt(a), o.encrypt(a));
        if a != b {
            prop_assert_ne!(o.encrypt(a), o.encrypt(b));
        }
    }

    #[test]
    fn decrypt_inverts_encrypt(a in 0u64..(1 << 48)) {
        let o = ope(3);
        prop_assert_eq!(o.decrypt(o.encrypt(a)), Some(a));
    }

    #[test]
    fn keys_produce_unrelated_mappings(a in 1u64..(1 << 48)) {
        // Different keys must not systematically agree (weak but cheap
        // distinguisher sanity check).
        let (o1, o2) = (ope(4), ope(5));
        prop_assume!(o1.encrypt(a) != o2.encrypt(a));
    }
}
