//! Order-revealing encryption (ORE).
//!
//! Two schemes, matching Table 2 of the paper (Range Query, protection
//! class 5, leakage level *Order*):
//!
//! * [`ClwwOre`] — the practical ORE of Chenette, Lewi, Weis and Wu
//!   (FSE 2016): per-bit `Z_3` marks derived from a PRF over prefixes.
//!   Leaks the index of the first differing bit between two plaintexts.
//! * [`LewiWuOre`] — the left/right block ORE of Lewi and Wu (CCS 2016),
//!   instantiated per-byte. Right ciphertexts alone leak only block-level
//!   equality against *left* query ciphertexts; this is the scheme behind
//!   the `kevinlewi/fastore` implementation the paper integrates.
//!
//! Unlike OPE, ORE ciphertexts are *not* numerically ordered — a public
//! [`Comparison`]-returning routine evaluates order.
//!
//! # Examples
//!
//! ```
//! use datablinder_ore::{ClwwOre, Comparison};
//! use datablinder_primitives::keys::SymmetricKey;
//!
//! let ore = ClwwOre::new(SymmetricKey::from_bytes(&[1u8; 32]));
//! let a = ore.encrypt(5);
//! let b = ore.encrypt(9);
//! assert_eq!(ClwwOre::compare(&a, &b), Comparison::Less);
//! ```

#![warn(missing_docs)]
use datablinder_primitives::hmac::{hmac_sha256, HmacCtx};
use datablinder_primitives::keys::SymmetricKey;
use datablinder_primitives::prf::{HmacPrf, Prf};

/// Result of comparing two ORE ciphertexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// Left plaintext is smaller.
    Less,
    /// Plaintexts are equal.
    Equal,
    /// Left plaintext is larger.
    Greater,
}

impl From<std::cmp::Ordering> for Comparison {
    fn from(o: std::cmp::Ordering) -> Self {
        match o {
            std::cmp::Ordering::Less => Comparison::Less,
            std::cmp::Ordering::Equal => Comparison::Equal,
            std::cmp::Ordering::Greater => Comparison::Greater,
        }
    }
}

/// A CLWW ORE ciphertext: one `Z_3` mark per plaintext bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClwwCiphertext {
    marks: Vec<u8>, // 64 entries in {0,1,2}
}

impl ClwwCiphertext {
    /// Serializes to bytes (one mark per byte; simple and inspectable).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.marks.clone()
    }

    /// Deserializes; returns `None` if any mark is out of `Z_3`.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 64 || bytes.iter().any(|&b| b > 2) {
            return None;
        }
        Some(ClwwCiphertext { marks: bytes.to_vec() })
    }
}

/// The CLWW "practical ORE" scheme over `u64` plaintexts.
#[derive(Clone)]
pub struct ClwwOre {
    prf: HmacPrf,
}

impl ClwwOre {
    /// Creates an instance from a key.
    pub fn new(key: SymmetricKey) -> Self {
        ClwwOre { prf: HmacPrf::new(key) }
    }

    /// Encrypts `m`: for bit `i` (MSB first), mark `= F(prefix_{<i}) + b_i (mod 3)`.
    pub fn encrypt(&self, m: u64) -> ClwwCiphertext {
        let mut marks = Vec::with_capacity(64);
        for i in 0..64u32 {
            let prefix = if i == 0 { 0 } else { m >> (64 - i) };
            let mut input = [0u8; 13];
            input[..4].copy_from_slice(&i.to_be_bytes());
            input[4..12].copy_from_slice(&prefix.to_be_bytes());
            input[12] = 0x01; // domain separation from other PRF uses
            let f = self.prf.eval(&input)[0] % 3;
            let bit = ((m >> (63 - i)) & 1) as u8;
            marks.push((f + bit) % 3);
        }
        ClwwCiphertext { marks }
    }

    /// Compares two ciphertexts produced under the same key.
    ///
    /// Finds the first differing mark; `left = right + 1 (mod 3)` there
    /// means the left plaintext has bit 1 where the right has bit 0.
    pub fn compare(a: &ClwwCiphertext, b: &ClwwCiphertext) -> Comparison {
        for (&ma, &mb) in a.marks.iter().zip(b.marks.iter()) {
            if ma != mb {
                return if ma == (mb + 1) % 3 { Comparison::Greater } else { Comparison::Less };
            }
        }
        Comparison::Equal
    }
}

/// Block size (bits) for the Lewi–Wu instantiation: one byte per block.
const LW_BLOCK_BITS: usize = 8;
/// Number of blocks covering a `u64`.
const LW_BLOCKS: usize = 64 / LW_BLOCK_BITS;
/// Values per block.
const LW_DOMAIN: usize = 1 << LW_BLOCK_BITS;

/// A Lewi–Wu *left* (query-side) ciphertext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LewiWuLeft {
    /// Per block: (PRF key-hash for this prefix, the block value encrypted
    /// under a prefix-bound permutation position).
    blocks: Vec<([u8; 32], u8)>,
}

/// A Lewi–Wu *right* (stored-side) ciphertext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LewiWuRight {
    /// Per block: `LW_DOMAIN` comparison marks in `Z_3`, index-permuted.
    blocks: Vec<Vec<u8>>,
}

impl LewiWuLeft {
    /// Serializes: per block `32-byte key || position byte`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.blocks.len() * 33);
        for (key, pos) in &self.blocks {
            out.extend_from_slice(key);
            out.push(*pos);
        }
        out
    }

    /// Deserializes; `None` on size mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != LW_BLOCKS * 33 {
            return None;
        }
        let blocks = bytes
            .chunks(33)
            .map(|c| {
                let mut key = [0u8; 32];
                key.copy_from_slice(&c[..32]);
                (key, c[32])
            })
            .collect();
        Some(LewiWuLeft { blocks })
    }
}

impl LewiWuRight {
    /// Serializes: concatenated per-block mark tables.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(LW_BLOCKS * LW_DOMAIN);
        for marks in &self.blocks {
            out.extend_from_slice(marks);
        }
        out
    }

    /// Deserializes; `None` on size mismatch or invalid marks.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != LW_BLOCKS * LW_DOMAIN || bytes.iter().any(|&b| b > 2) {
            return None;
        }
        Some(LewiWuRight { blocks: bytes.chunks(LW_DOMAIN).map(|c| c.to_vec()).collect() })
    }
}

/// The Lewi–Wu left/right block ORE.
///
/// Stored data holds only right ciphertexts; queries carry left
/// ciphertexts. `compare_left_right` reveals the order of exactly the
/// compared pair (plus the index of the first differing block).
#[derive(Clone)]
pub struct LewiWuOre {
    prf: HmacPrf,
}

impl LewiWuOre {
    /// Creates an instance from a key.
    pub fn new(key: SymmetricKey) -> Self {
        LewiWuOre { prf: HmacPrf::new(key) }
    }

    fn block_of(m: u64, i: usize) -> u8 {
        ((m >> (64 - (i + 1) * LW_BLOCK_BITS)) & (LW_DOMAIN as u64 - 1)) as u8
    }

    fn prefix_of(m: u64, i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            m >> (64 - i * LW_BLOCK_BITS)
        }
    }

    /// Pseudorandom permutation position of value `v` under `prefix`
    /// (a keyed "random shift" permutation — sufficient for hiding the
    /// block value's identity across prefixes).
    fn position(&self, prefix: u64, i: usize, v: u8) -> u8 {
        let mut input = [0u8; 14];
        input[..8].copy_from_slice(&prefix.to_be_bytes());
        input[8..12].copy_from_slice(&(i as u32).to_be_bytes());
        input[12] = 0x02;
        input[13] = 0x00;
        let shift = self.prf.eval(&input)[0];
        v.wrapping_add(shift)
    }

    /// Per-(prefix, position) comparison mark key.
    fn mark_key(&self, prefix: u64, i: usize) -> [u8; 32] {
        let mut input = [0u8; 14];
        input[..8].copy_from_slice(&prefix.to_be_bytes());
        input[8..12].copy_from_slice(&(i as u32).to_be_bytes());
        input[12] = 0x02;
        input[13] = 0x01;
        self.prf.eval(&input)
    }

    /// Produces the left (query) ciphertext of `m`.
    pub fn encrypt_left(&self, m: u64) -> LewiWuLeft {
        let blocks = (0..LW_BLOCKS)
            .map(|i| {
                let prefix = Self::prefix_of(m, i);
                let v = Self::block_of(m, i);
                (self.mark_key(prefix, i), self.position(prefix, i, v))
            })
            .collect();
        LewiWuLeft { blocks }
    }

    /// Produces the right (stored) ciphertext of `m`.
    pub fn encrypt_right(&self, m: u64) -> LewiWuRight {
        let blocks = (0..LW_BLOCKS)
            .map(|i| {
                let prefix = Self::prefix_of(m, i);
                let v = Self::block_of(m, i) as i32;
                let key = self.mark_key(prefix, i);
                // One HMAC context serves every candidate in this block —
                // LW_DOMAIN pad evaluations share a single key preparation.
                let pad_mac = HmacCtx::new(&key);
                let mut marks = vec![0u8; LW_DOMAIN];
                for candidate in 0..LW_DOMAIN as i32 {
                    // cmp(candidate, v): candidate < v -> 0, == -> 1, > -> 2
                    let cmp = match candidate.cmp(&v) {
                        std::cmp::Ordering::Less => 0u8,
                        std::cmp::Ordering::Equal => 1,
                        std::cmp::Ordering::Greater => 2,
                    };
                    let pos = self.position(prefix, i, candidate as u8);
                    // Blind the mark with a PRF over (key, pos) so marks do
                    // not directly reveal the ordering table.
                    let pad = pad_mac.mac(&[pos])[0] % 3;
                    marks[pos as usize] = (cmp + pad) % 3;
                }
                marks
            })
            .collect();
        LewiWuRight { blocks }
    }

    /// Compares a left (query) against a right (stored) ciphertext.
    pub fn compare_left_right(left: &LewiWuLeft, right: &LewiWuRight) -> Comparison {
        for ((key, pos), marks) in left.blocks.iter().zip(right.blocks.iter()) {
            let pad = hmac_sha256(key, &[*pos])[0] % 3;
            let mark = (marks[*pos as usize] + 3 - pad) % 3;
            // mark = cmp(query block, stored block): 0 less, 1 equal, 2 greater.
            match mark {
                1 => continue,
                0 => return Comparison::Less,
                _ => return Comparison::Greater,
            }
        }
        Comparison::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SymmetricKey {
        SymmetricKey::from_bytes(&[7u8; 32])
    }

    #[test]
    fn clww_total_order() {
        let ore = ClwwOre::new(key());
        let values = [0u64, 1, 2, 255, 256, 1000, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        for &a in &values {
            for &b in &values {
                let ca = ore.encrypt(a);
                let cb = ore.encrypt(b);
                let expect = Comparison::from(a.cmp(&b));
                assert_eq!(ClwwOre::compare(&ca, &cb), expect, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn clww_deterministic_and_key_separated() {
        let o1 = ClwwOre::new(SymmetricKey::from_bytes(&[1u8; 32]));
        let o2 = ClwwOre::new(SymmetricKey::from_bytes(&[2u8; 32]));
        assert_eq!(o1.encrypt(5), o1.encrypt(5));
        assert_ne!(o1.encrypt(5), o2.encrypt(5));
    }

    #[test]
    fn clww_bytes_roundtrip() {
        let ore = ClwwOre::new(key());
        let c = ore.encrypt(999);
        let c2 = ClwwCiphertext::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(c, c2);
        assert!(ClwwCiphertext::from_bytes(&[3u8; 64]).is_none());
        assert!(ClwwCiphertext::from_bytes(&[0u8; 10]).is_none());
    }

    #[test]
    fn lewi_wu_total_order() {
        let ore = LewiWuOre::new(key());
        let values = [0u64, 1, 255, 256, 257, 65535, 1 << 40, u64::MAX];
        for &a in &values {
            for &b in &values {
                let l = ore.encrypt_left(a);
                let r = ore.encrypt_right(b);
                let expect = Comparison::from(a.cmp(&b));
                assert_eq!(LewiWuOre::compare_left_right(&l, &r), expect, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn lewi_wu_right_hides_value() {
        // Two right ciphertexts of different values under the same key are
        // not trivially comparable (no shared positions revealed): check
        // that equal blocks of different prefixes have different mark
        // tables.
        let ore = LewiWuOre::new(key());
        let r1 = ore.encrypt_right(0x0101_0101_0101_0101);
        let r2 = ore.encrypt_right(0x0201_0101_0101_0101);
        // Same block value (0x01) at index 1 but different prefix.
        assert_ne!(r1.blocks[1], r2.blocks[1]);
    }

    #[test]
    fn lewi_wu_exhaustive_one_block_boundary() {
        // Exercise comparisons around block boundaries densely.
        let ore = LewiWuOre::new(key());
        for a in 250u64..260 {
            for b in 250u64..260 {
                let l = ore.encrypt_left(a);
                let r = ore.encrypt_right(b);
                assert_eq!(LewiWuOre::compare_left_right(&l, &r), Comparison::from(a.cmp(&b)), "{a} vs {b}");
            }
        }
    }
}
