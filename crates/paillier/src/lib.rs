//! The Paillier partially homomorphic cryptosystem (Paillier, EUROCRYPT '99).
//!
//! DataBlinder uses Paillier for the *Sum* and *Average* aggregate tactics:
//! the cloud multiplies ciphertexts (homomorphic addition of plaintexts)
//! without learning the values; the gateway decrypts the final aggregate.
//! The original system used the Javallier library; this is a from-scratch
//! implementation over [`datablinder_bigint`].
//!
//! # Examples
//!
//! ```
//! use datablinder_paillier::Keypair;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let kp = Keypair::generate(&mut rng, 256); // small modulus for doctest speed
//! let c1 = kp.public().encrypt_u64(&mut rng, 20);
//! let c2 = kp.public().encrypt_u64(&mut rng, 22);
//! let sum = kp.public().add(&c1, &c2);
//! assert_eq!(kp.decrypt_u64(&sum), Some(42));
//! ```
//!
//! # Security note
//!
//! Key sizes below 2048 bits are insecure; small keys are supported so tests
//! and benchmarks finish quickly. Not constant-time.

#![warn(missing_docs)]
use datablinder_bigint::{prime, BigUint};
use rand::Rng;

/// Errors from Paillier operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaillierError {
    /// The plaintext is not in `[0, n)`.
    PlaintextOutOfRange,
    /// A ciphertext was not in the valid range `[0, n^2)` or not invertible.
    InvalidCiphertext,
    /// Ciphertext bytes could not be decoded.
    MalformedCiphertext,
}

impl std::fmt::Display for PaillierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PaillierError::PlaintextOutOfRange => write!(f, "plaintext out of range for modulus"),
            PaillierError::InvalidCiphertext => write!(f, "ciphertext outside the valid group"),
            PaillierError::MalformedCiphertext => write!(f, "malformed ciphertext encoding"),
        }
    }
}

impl std::error::Error for PaillierError {}

/// A Paillier ciphertext: an element of `Z*_{n^2}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext(BigUint);

impl Ciphertext {
    /// Serializes to big-endian bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes_be()
    }

    /// Deserializes from big-endian bytes (range-checked lazily at use).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Ciphertext(BigUint::from_bytes_be(bytes))
    }
}

/// The public (encryption/evaluation) key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicKey {
    n: BigUint,
    n_squared: BigUint,
}

impl PublicKey {
    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Modulus size in bits.
    pub fn bits(&self) -> usize {
        self.n.bits()
    }

    /// Encrypts `m ∈ [0, n)`.
    ///
    /// Uses the `g = n + 1` optimization: `c = (1 + m·n) · r^n mod n²`.
    ///
    /// # Errors
    ///
    /// [`PaillierError::PlaintextOutOfRange`] if `m >= n`.
    pub fn encrypt<R: Rng + ?Sized>(&self, rng: &mut R, m: &BigUint) -> Result<Ciphertext, PaillierError> {
        if m >= &self.n {
            return Err(PaillierError::PlaintextOutOfRange);
        }
        let r = self.sample_unit(rng);
        let gm = &(&(m * &self.n) + &BigUint::one()) % &self.n_squared;
        let rn = r.modpow(&self.n, &self.n_squared);
        Ok(Ciphertext(gm.modmul(&rn, &self.n_squared)))
    }

    /// Encrypts a `u64` value.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is smaller than 64 bits (never the case for
    /// supported key sizes).
    pub fn encrypt_u64<R: Rng + ?Sized>(&self, rng: &mut R, m: u64) -> Ciphertext {
        self.encrypt(rng, &BigUint::from(m)).expect("u64 always fits supported moduli")
    }

    /// Homomorphic addition: `Dec(add(c1, c2)) = Dec(c1) + Dec(c2) mod n`.
    pub fn add(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        Ciphertext(c1.0.modmul(&c2.0, &self.n_squared))
    }

    /// Adds a plaintext constant: `Dec(add_plain(c, k)) = Dec(c) + k mod n`.
    pub fn add_plain(&self, c: &Ciphertext, k: &BigUint) -> Ciphertext {
        let gk = &(&(k * &self.n) + &BigUint::one()) % &self.n_squared;
        Ciphertext(c.0.modmul(&gk, &self.n_squared))
    }

    /// Multiplies the plaintext by a constant:
    /// `Dec(mul_plain(c, k)) = k · Dec(c) mod n`.
    pub fn mul_plain(&self, c: &Ciphertext, k: &BigUint) -> Ciphertext {
        Ciphertext(c.0.modpow(k, &self.n_squared))
    }

    /// Fresh encryption of zero, useful for re-randomizing ciphertexts so
    /// repeated aggregates are unlinkable.
    pub fn rerandomize<R: Rng + ?Sized>(&self, rng: &mut R, c: &Ciphertext) -> Ciphertext {
        let r = self.sample_unit(rng);
        let rn = r.modpow(&self.n, &self.n_squared);
        Ciphertext(c.0.modmul(&rn, &self.n_squared))
    }

    /// Encryption of zero with fresh randomness.
    pub fn encrypt_zero<R: Rng + ?Sized>(&self, rng: &mut R) -> Ciphertext {
        self.encrypt(rng, &BigUint::zero()).expect("zero is always in range")
    }

    /// Samples `r ∈ [1, n)` coprime to `n` (overwhelmingly likely first try).
    fn sample_unit<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let r = BigUint::random_below(rng, &self.n);
            if !r.is_zero() && r.gcd(&self.n).is_one() {
                return r;
            }
        }
    }
}

/// A Paillier keypair (public key plus the private `λ`, `μ` trapdoor).
#[derive(Debug, Clone)]
pub struct Keypair {
    public: PublicKey,
    lambda: BigUint,
    mu: BigUint,
}

impl Keypair {
    /// Generates a keypair with an (approximately) `modulus_bits`-bit `n`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus_bits < 16`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, modulus_bits: usize) -> Keypair {
        assert!(modulus_bits >= 16, "modulus must be at least 16 bits");
        loop {
            let (p, q) = prime::gen_prime_pair(rng, modulus_bits / 2);
            let n = &p * &q;
            let lambda = (&p - &BigUint::one()).lcm(&(&q - &BigUint::one()));
            let n_squared = &n * &n;
            let public = PublicKey { n: n.clone(), n_squared };
            // μ = (L(g^λ mod n²))^{-1} mod n, with g = n+1:
            // g^λ mod n² = 1 + λ·n mod n², so L(·) = λ mod n.
            let l = &lambda % &n;
            match l.modinv(&n) {
                Ok(mu) => return Keypair { public, lambda, mu },
                Err(_) => continue, // pathological p, q; retry
            }
        }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Decrypts a ciphertext to `m ∈ [0, n)`.
    ///
    /// # Errors
    ///
    /// [`PaillierError::InvalidCiphertext`] if the ciphertext is zero or
    /// out of range.
    pub fn decrypt(&self, c: &Ciphertext) -> Result<BigUint, PaillierError> {
        if c.0.is_zero() || c.0 >= self.public.n_squared {
            return Err(PaillierError::InvalidCiphertext);
        }
        let x = c.0.modpow(&self.lambda, &self.public.n_squared);
        // L(x) = (x - 1) / n
        let l = &(&x - &BigUint::one()) / &self.public.n;
        Ok(l.modmul(&self.mu, &self.public.n))
    }

    /// Decrypts to `u64` if the plaintext fits.
    pub fn decrypt_u64(&self, c: &Ciphertext) -> Option<u64> {
        self.decrypt(c).ok().and_then(|m| m.to_u64())
    }

    /// Serializes the keypair (private material — KMS storage only).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for part in [&self.public.n, &self.lambda, &self.mu] {
            let b = part.to_bytes_be();
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(&b);
        }
        out
    }

    /// Deserializes a keypair produced by [`Keypair::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`PaillierError::MalformedCiphertext`] on framing errors.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Keypair, PaillierError> {
        let take = |buf: &mut &[u8]| -> Result<BigUint, PaillierError> {
            if buf.len() < 4 {
                return Err(PaillierError::MalformedCiphertext);
            }
            let len = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
            *buf = &buf[4..];
            if buf.len() < len {
                return Err(PaillierError::MalformedCiphertext);
            }
            let v = BigUint::from_bytes_be(&buf[..len]);
            *buf = &buf[len..];
            Ok(v)
        };
        let n = take(&mut buf)?;
        let lambda = take(&mut buf)?;
        let mu = take(&mut buf)?;
        if !buf.is_empty() {
            return Err(PaillierError::MalformedCiphertext);
        }
        let n_squared = &n * &n;
        Ok(Keypair { public: PublicKey { n, n_squared }, lambda, mu })
    }
}

impl PublicKey {
    /// Serializes (just the modulus).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.n.to_bytes_be()
    }

    /// Deserializes from modulus bytes.
    ///
    /// # Errors
    ///
    /// [`PaillierError::MalformedCiphertext`] when the modulus is zero.
    pub fn from_bytes(bytes: &[u8]) -> Result<PublicKey, PaillierError> {
        let n = BigUint::from_bytes_be(bytes);
        if n.is_zero() {
            return Err(PaillierError::MalformedCiphertext);
        }
        let n_squared = &n * &n;
        Ok(PublicKey { n, n_squared })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xBA11E7)
    }

    fn keypair() -> (Keypair, rand::rngs::StdRng) {
        let mut r = rng();
        let kp = Keypair::generate(&mut r, 256);
        (kp, r)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (kp, mut r) = keypair();
        for m in [0u64, 1, 42, u64::MAX] {
            let c = kp.public().encrypt_u64(&mut r, m);
            assert_eq!(kp.decrypt_u64(&c), Some(m));
        }
    }

    #[test]
    fn probabilistic_encryption() {
        let (kp, mut r) = keypair();
        let c1 = kp.public().encrypt_u64(&mut r, 5);
        let c2 = kp.public().encrypt_u64(&mut r, 5);
        assert_ne!(c1, c2, "same plaintext must give different ciphertexts");
        assert_eq!(kp.decrypt_u64(&c1), kp.decrypt_u64(&c2));
    }

    #[test]
    fn homomorphic_addition() {
        let (kp, mut r) = keypair();
        let c1 = kp.public().encrypt_u64(&mut r, 1000);
        let c2 = kp.public().encrypt_u64(&mut r, 234);
        assert_eq!(kp.decrypt_u64(&kp.public().add(&c1, &c2)), Some(1234));
    }

    #[test]
    fn add_plain_and_mul_plain() {
        let (kp, mut r) = keypair();
        let c = kp.public().encrypt_u64(&mut r, 100);
        let c2 = kp.public().add_plain(&c, &BigUint::from(23u64));
        assert_eq!(kp.decrypt_u64(&c2), Some(123));
        let c3 = kp.public().mul_plain(&c, &BigUint::from(7u64));
        assert_eq!(kp.decrypt_u64(&c3), Some(700));
    }

    #[test]
    fn sum_of_many() {
        let (kp, mut r) = keypair();
        let values: Vec<u64> = (1..=50).collect();
        let mut acc = kp.public().encrypt_zero(&mut r);
        for &v in &values {
            let c = kp.public().encrypt_u64(&mut r, v);
            acc = kp.public().add(&acc, &c);
        }
        assert_eq!(kp.decrypt_u64(&acc), Some(values.iter().sum()));
    }

    #[test]
    fn rerandomize_preserves_plaintext() {
        let (kp, mut r) = keypair();
        let c = kp.public().encrypt_u64(&mut r, 77);
        let c2 = kp.public().rerandomize(&mut r, &c);
        assert_ne!(c, c2);
        assert_eq!(kp.decrypt_u64(&c2), Some(77));
    }

    #[test]
    fn plaintext_out_of_range_rejected() {
        let (kp, mut r) = keypair();
        let too_big = kp.public().modulus().clone();
        assert_eq!(kp.public().encrypt(&mut r, &too_big), Err(PaillierError::PlaintextOutOfRange));
    }

    #[test]
    fn invalid_ciphertexts_rejected() {
        let (kp, _) = keypair();
        assert_eq!(kp.decrypt(&Ciphertext(BigUint::zero())), Err(PaillierError::InvalidCiphertext));
        let n2 = kp.public().modulus() * kp.public().modulus();
        assert_eq!(kp.decrypt(&Ciphertext(n2)), Err(PaillierError::InvalidCiphertext));
    }

    #[test]
    fn ciphertext_bytes_roundtrip() {
        let (kp, mut r) = keypair();
        let c = kp.public().encrypt_u64(&mut r, 555);
        let c2 = Ciphertext::from_bytes(&c.to_bytes());
        assert_eq!(kp.decrypt_u64(&c2), Some(555));
    }

    #[test]
    fn addition_wraps_modulo_n() {
        // (n - 1) + 2 ≡ 1 (mod n)
        let (kp, mut r) = keypair();
        let n_minus_1 = kp.public().modulus() - &BigUint::one();
        let c1 = kp.public().encrypt(&mut r, &n_minus_1).unwrap();
        let c2 = kp.public().encrypt_u64(&mut r, 2);
        let sum = kp.public().add(&c1, &c2);
        assert_eq!(kp.decrypt(&sum).unwrap(), BigUint::one());
    }
}
