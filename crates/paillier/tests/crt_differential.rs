//! Differential tests of CRT decryption against the plain `λ` path, plus
//! serialization-format compatibility.
//!
//! The CRT decryptor is an *optimization* — every observable behavior must
//! be identical to the single-exponentiation path it replaced, and legacy
//! 3-field keypair blobs (no factors) must keep loading and decrypting.

use datablinder_bigint::BigUint;
use datablinder_paillier::{Ciphertext, Keypair, PaillierError};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Strips a v2 keypair blob down to the legacy 3-field framing
/// (`n, λ, μ`, each u32-BE length prefixed), exactly as the pre-CRT
/// serializer emitted it.
fn to_legacy_bytes(kp: &Keypair) -> Vec<u8> {
    let v2 = kp.to_bytes();
    assert_eq!(&v2[..4], b"DBK2", "generated keypairs serialize as v2");
    let mut legacy = Vec::new();
    let mut cursor = &v2[4..];
    for _ in 0..3 {
        let len = u32::from_be_bytes(cursor[..4].try_into().unwrap()) as usize;
        legacy.extend_from_slice(&cursor[..4 + len]);
        cursor = &cursor[4 + len..];
    }
    legacy
}

#[test]
fn crt_and_plain_decrypt_agree_over_random_plaintexts() {
    for seed in [1u64, 2, 3] {
        let mut r = rng(seed);
        let kp = Keypair::generate(&mut r, 256);
        assert!(kp.has_crt());
        let n = kp.public().modulus().clone();
        for _ in 0..16 {
            let m = BigUint::random_below(&mut r, &n);
            let c = kp.public().encrypt(&mut r, &m).unwrap();
            let via_crt = kp.decrypt(&c).unwrap();
            let via_lambda = kp.decrypt_plain(&c).unwrap();
            assert_eq!(via_crt, via_lambda, "seed {seed}");
            assert_eq!(via_crt, m, "seed {seed}");
        }
    }
}

#[test]
fn boundary_plaintexts_agree() {
    let mut r = rng(7);
    let kp = Keypair::generate(&mut r, 256);
    let n = kp.public().modulus().clone();
    let boundary = [BigUint::zero(), BigUint::one(), &n - &BigUint::one(), &n - &BigUint::from(2u64)];
    for m in boundary {
        let c = kp.public().encrypt(&mut r, &m).unwrap();
        assert_eq!(kp.decrypt(&c).unwrap(), m);
        assert_eq!(kp.decrypt_plain(&c).unwrap(), m);
    }
}

#[test]
fn crt_decrypt_survives_homomorphic_pipelines() {
    let mut r = rng(11);
    let kp = Keypair::generate(&mut r, 256);
    let pk = kp.public().clone();
    // add + add_plain + mul_plain + rerandomize, decrypted both ways.
    let c1 = pk.encrypt_u64(&mut r, 1000);
    let c2 = pk.encrypt_u64(&mut r, 234);
    let mut c = pk.add(&c1, &c2);
    c = pk.add_plain(&c, &BigUint::from(6u64));
    c = pk.mul_plain(&c, &BigUint::from(3u64));
    c = pk.rerandomize(&mut r, &c);
    let expect = BigUint::from((1000u64 + 234 + 6) * 3);
    assert_eq!(kp.decrypt(&c).unwrap(), expect);
    assert_eq!(kp.decrypt_plain(&c).unwrap(), expect);
}

#[test]
fn legacy_blobs_load_and_decrypt_without_crt() {
    let mut r = rng(21);
    let kp = Keypair::generate(&mut r, 256);
    let legacy = to_legacy_bytes(&kp);
    let old = Keypair::from_bytes(&legacy).unwrap();
    assert!(!old.has_crt(), "legacy blobs carry no factors");
    assert_eq!(old.public(), kp.public());
    let n = kp.public().modulus().clone();
    for _ in 0..8 {
        let m = BigUint::random_below(&mut r, &n);
        let c = kp.public().encrypt(&mut r, &m).unwrap();
        assert_eq!(old.decrypt(&c).unwrap(), m, "legacy keypair must decrypt new ciphertexts");
        assert_eq!(kp.decrypt(&c).unwrap(), m);
    }
    // Legacy keypairs re-serialize byte-for-byte (no silent upgrade).
    assert_eq!(old.to_bytes(), legacy);
}

#[test]
fn v2_blobs_roundtrip_and_stay_stable() {
    let mut r = rng(31);
    let kp = Keypair::generate(&mut r, 256);
    let bytes = kp.to_bytes();
    let kp2 = Keypair::from_bytes(&bytes).unwrap();
    assert!(kp2.has_crt());
    assert_eq!(kp2.to_bytes(), bytes, "v2 serialization is deterministic");
    let c = kp.public().encrypt_u64(&mut r, 424_242);
    assert_eq!(kp2.decrypt_u64(&c), Some(424_242));
}

#[test]
fn both_paths_reject_the_same_invalid_ciphertexts() {
    let mut r = rng(41);
    let kp = Keypair::generate(&mut r, 256);
    let n = kp.public().modulus().clone();
    let n2 = &n * &n;
    for bad in [BigUint::zero(), n.clone(), n2.clone(), &n2 + &BigUint::one()] {
        let c = Ciphertext::from_bytes(&bad.to_bytes_be());
        assert_eq!(kp.decrypt(&c).err(), Some(PaillierError::InvalidCiphertext), "crt path, bad={bad:?}");
        assert_eq!(kp.decrypt_plain(&c).err(), Some(PaillierError::InvalidCiphertext), "plain path, bad={bad:?}");
    }
}
