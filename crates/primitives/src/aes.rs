//! AES block cipher (FIPS 197), supporting 128/192/256-bit keys.
//!
//! The S-box is derived at first use from the GF(2^8) inverse + affine map
//! rather than transcribed, eliminating table-transcription errors.

use std::sync::OnceLock;

use crate::CryptoError;

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

/// Round-function lookup tables for the encrypt direction ("T-tables").
///
/// `TE0[x]` packs the MixColumns column produced by an S-boxed byte in row
/// 0 as a big-endian word `[2S, S, S, 3S]`; `TEi` is `TE0` rotated right by
/// `8*i` bits, matching the byte landing in row `i`. One round then costs
/// 16 table lookups and 16 XORs instead of per-byte SubBytes + ShiftRows +
/// MixColumns passes. Derived from the computed S-box at first use, like
/// the S-box itself.
fn enc_tables() -> &'static [[u32; 256]; 4] {
    static TABLES: OnceLock<[[u32; 256]; 4]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let (sbox, _) = sboxes();
        let mut te = [[0u32; 256]; 4];
        for x in 0..256usize {
            let s = sbox[x];
            let te0 = u32::from_be_bytes([xtime(s), s, s, gmul3(s)]);
            te[0][x] = te0;
            te[1][x] = te0.rotate_right(8);
            te[2][x] = te0.rotate_right(16);
            te[3][x] = te0.rotate_right(24);
        }
        te
    })
}

fn sboxes() -> &'static ([u8; 256], [u8; 256]) {
    static TABLES: OnceLock<([u8; 256], [u8; 256])> = OnceLock::new();
    TABLES.get_or_init(|| {
        // Multiplicative inverse in GF(2^8) via 3 as a generator:
        // 3^i enumerates all non-zero field elements.
        let mut log = [0u8; 256];
        let mut alog = [0u8; 256];
        let mut p: u8 = 1;
        for i in 0..255u16 {
            alog[i as usize] = p;
            log[p as usize] = i as u8;
            p = gmul3(p);
        }
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for x in 0..256usize {
            let inv = if x == 0 { 0 } else { alog[(255 - log[x] as usize) % 255] };
            // Affine transform: b ^= rotl(b,1)^rotl(b,2)^rotl(b,3)^rotl(b,4) ^ 0x63
            let b = inv;
            let s = b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63;
            sbox[x] = s;
            inv_sbox[s as usize] = x as u8;
        }
        (sbox, inv_sbox)
    })
}

/// Multiply by 3 in GF(2^8) (x+1 times the input).
fn gmul3(a: u8) -> u8 {
    a ^ xtime(a)
}

/// Multiply by x (i.e. 2) in GF(2^8) with the AES polynomial 0x11B.
fn xtime(a: u8) -> u8 {
    (a << 1) ^ if a & 0x80 != 0 { 0x1B } else { 0 }
}

/// General GF(2^8) multiplication (Russian-peasant).
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded-key AES instance.
///
/// # Examples
///
/// ```
/// use datablinder_primitives::aes::Aes;
///
/// # fn main() -> Result<(), datablinder_primitives::CryptoError> {
/// let aes = Aes::new(&[0u8; 16])?;
/// let mut block = *b"0123456789abcdef";
/// let orig = block;
/// aes.encrypt_block(&mut block);
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, orig);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    /// Round keys as big-endian column words, the layout the T-table
    /// encrypt path consumes directly.
    enc_keys: Vec<[u32; 4]>,
    rounds: usize,
}

impl Aes {
    /// Expands a 16-, 24- or 32-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for other key sizes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        let (nk, rounds) = match key.len() {
            16 => (4usize, 10usize),
            24 => (6, 12),
            32 => (8, 14),
            n => return Err(CryptoError::InvalidKeyLength { expected: "16, 24 or 32", got: n }),
        };
        let (sbox, _) = sboxes();
        let nwords = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(nwords);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let mut rcon: u8 = 1;
        for i in nk..nwords {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = sbox[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([temp[0] ^ prev[0], temp[1] ^ prev[1], temp[2] ^ prev[2], temp[3] ^ prev[3]]);
        }
        let round_keys: Vec<[u8; 16]> = (0..=rounds)
            .map(|r| {
                let mut rk = [0u8; 16];
                for c in 0..4 {
                    rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                }
                rk
            })
            .collect();
        let enc_keys = round_keys
            .iter()
            .map(|rk| {
                let mut words = [0u32; 4];
                for (c, word) in words.iter_mut().enumerate() {
                    *word = u32::from_be_bytes([rk[4 * c], rk[4 * c + 1], rk[4 * c + 2], rk[4 * c + 3]]);
                }
                words
            })
            .collect();
        Ok(Aes { round_keys, enc_keys, rounds })
    }

    /// Encrypts one 16-byte block in place (T-table round function).
    ///
    /// The state lives in four big-endian column words; each round combines
    /// ShiftRows + SubBytes + MixColumns + AddRoundKey into four table-lookup
    /// XOR chains. Byte-identical to [`Aes::encrypt_block_ref`].
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let te = enc_tables();
        let rk = &self.enc_keys;
        let mut s0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0][0];
        let mut s1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[0][1];
        let mut s2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[0][2];
        let mut s3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[0][3];
        for k in &rk[1..self.rounds] {
            let t0 = te[0][(s0 >> 24) as usize]
                ^ te[1][((s1 >> 16) & 0xff) as usize]
                ^ te[2][((s2 >> 8) & 0xff) as usize]
                ^ te[3][(s3 & 0xff) as usize]
                ^ k[0];
            let t1 = te[0][(s1 >> 24) as usize]
                ^ te[1][((s2 >> 16) & 0xff) as usize]
                ^ te[2][((s3 >> 8) & 0xff) as usize]
                ^ te[3][(s0 & 0xff) as usize]
                ^ k[1];
            let t2 = te[0][(s2 >> 24) as usize]
                ^ te[1][((s3 >> 16) & 0xff) as usize]
                ^ te[2][((s0 >> 8) & 0xff) as usize]
                ^ te[3][(s1 & 0xff) as usize]
                ^ k[2];
            let t3 = te[0][(s3 >> 24) as usize]
                ^ te[1][((s0 >> 16) & 0xff) as usize]
                ^ te[2][((s1 >> 8) & 0xff) as usize]
                ^ te[3][(s2 & 0xff) as usize]
                ^ k[3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let (sbox, _) = sboxes();
        let k = &rk[self.rounds];
        let sub = |a: u32, b: u32, c: u32, d: u32| -> u32 {
            (u32::from(sbox[(a >> 24) as usize]) << 24)
                | (u32::from(sbox[((b >> 16) & 0xff) as usize]) << 16)
                | (u32::from(sbox[((c >> 8) & 0xff) as usize]) << 8)
                | u32::from(sbox[(d & 0xff) as usize])
        };
        let t0 = sub(s0, s1, s2, s3) ^ k[0];
        let t1 = sub(s1, s2, s3, s0) ^ k[1];
        let t2 = sub(s2, s3, s0, s1) ^ k[2];
        let t3 = sub(s3, s0, s1, s2) ^ k[3];
        block[0..4].copy_from_slice(&t0.to_be_bytes());
        block[4..8].copy_from_slice(&t1.to_be_bytes());
        block[8..12].copy_from_slice(&t2.to_be_bytes());
        block[12..16].copy_from_slice(&t3.to_be_bytes());
    }

    /// Encrypts one 16-byte block with the straight-line byte-wise round
    /// passes (SubBytes → ShiftRows → MixColumns → AddRoundKey).
    ///
    /// Kept as the differential oracle for [`Aes::encrypt_block`] and as the
    /// legacy baseline the symmetric benchmarks measure against.
    pub fn encrypt_block_ref(&self, block: &mut [u8; BLOCK_LEN]) {
        let (sbox, _) = sboxes();
        add_round_key(block, &self.round_keys[0]);
        for r in 1..self.rounds {
            sub_bytes(block, sbox);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block, sbox);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let (_, inv_sbox) = sboxes();
        add_round_key(block, &self.round_keys[self.rounds]);
        inv_shift_rows(block);
        sub_bytes(block, inv_sbox);
        for r in (1..self.rounds).rev() {
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            sub_bytes(block, inv_sbox);
        }
        add_round_key(block, &self.round_keys[0]);
    }
}

// State layout: FIPS column-major — byte index = 4*col + row.

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16], sbox: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = sbox[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    // Row r rotates left by r. Byte (r, c) is at 4*c + r.
    for r in 1..4 {
        let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
        for c in 0..4 {
            state[4 * c + r] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
        for c in 0..4 {
            state[4 * c + r] = row[(c + 4 - r) % 4];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = xtime(col[0]) ^ gmul3(col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ gmul3(col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ gmul3(col[3]);
        state[4 * c + 3] = gmul3(col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn sbox_known_entries() {
        let (sbox, inv) = sboxes();
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        for x in 0..256 {
            assert_eq!(inv[sbox[x] as usize] as usize, x);
        }
    }

    #[test]
    fn fips197_appendix_c1_aes128() {
        let key = unhex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(&key).unwrap();
        let mut block = unhex16("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut block);
        assert_eq!(block, unhex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block, unhex16("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_appendix_c2_aes192() {
        let key = unhex("000102030405060708090a0b0c0d0e0f1011121314151617");
        let aes = Aes::new(&key).unwrap();
        let mut block = unhex16("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut block);
        assert_eq!(block, unhex16("dda97ca4864cdfe06eaf70a0ec0d7191"));
    }

    #[test]
    fn fips197_appendix_c3_aes256() {
        let key = unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new(&key).unwrap();
        let mut block = unhex16("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut block);
        assert_eq!(block, unhex16("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block, unhex16("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn invalid_key_length() {
        assert!(matches!(Aes::new(&[0u8; 15]), Err(CryptoError::InvalidKeyLength { .. })));
        assert!(matches!(Aes::new(&[0u8; 0]), Err(CryptoError::InvalidKeyLength { .. })));
    }

    #[test]
    fn ttable_encrypt_matches_bytewise_reference() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        for keylen in [16usize, 24, 32] {
            let mut key = vec![0u8; keylen];
            rng.fill_bytes(&mut key);
            let aes = Aes::new(&key).unwrap();
            for _ in 0..200 {
                let mut fast = [0u8; 16];
                rng.fill_bytes(&mut fast);
                let mut slow = fast;
                aes.encrypt_block(&mut fast);
                aes.encrypt_block_ref(&mut slow);
                assert_eq!(fast, slow);
            }
        }
    }

    #[test]
    fn roundtrip_random_blocks() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for keylen in [16usize, 24, 32] {
            let mut key = vec![0u8; keylen];
            rng.fill_bytes(&mut key);
            let aes = Aes::new(&key).unwrap();
            for _ in 0..50 {
                let mut block = [0u8; 16];
                rng.fill_bytes(&mut block);
                let orig = block;
                aes.encrypt_block(&mut block);
                assert_ne!(block, orig);
                aes.decrypt_block(&mut block);
                assert_eq!(block, orig);
            }
        }
    }
}
