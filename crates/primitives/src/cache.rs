//! A bounded per-label cache of derived cipher contexts.
//!
//! The SSE/DET/RND tactics derive a fresh key per label (keyword, bucket,
//! pair) and used to rebuild the full cipher context — AES key schedule
//! plus the 4 KiB GHASH table — on **every** operation. [`CipherCache`]
//! amortizes that: the first use of a label pays for derivation and
//! schedule expansion, every later use is a map lookup returning a shared
//! [`Arc`]. Counters are kept in plain atomics and mirrored into an
//! optional [`Recorder`] under `primitives.cipher_cache.*`, the same
//! pattern the Paillier randomizer pool uses for `paillier.pool.*`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use datablinder_obs::Recorder;

/// Point-in-time counters of a [`CipherCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a fresh context.
    pub misses: u64,
    /// Entries dropped to stay within the capacity bound.
    pub evictions: u64,
    /// Contexts currently cached.
    pub size: usize,
}

/// A bounded map from label bytes to a shared cipher context.
///
/// Thread-safe: lookups take a `Mutex` around the map but expensive
/// context builds run outside it, so concurrent misses never serialize on
/// key-schedule expansion (racing builders insert first-wins and the
/// losers share the winner's context).
pub struct CipherCache<C> {
    capacity: usize,
    map: Mutex<HashMap<Vec<u8>, Arc<C>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    obs: Recorder,
}

impl<C> std::fmt::Debug for CipherCache<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CipherCache").field("capacity", &self.capacity).field("stats", &self.stats()).finish()
    }
}

impl<C> CipherCache<C> {
    /// Creates a cache holding at most `capacity` contexts (min 1).
    pub fn new(capacity: usize) -> Self {
        CipherCache {
            capacity: capacity.max(1),
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            obs: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder; the cache mirrors its counters
    /// as `primitives.cipher_cache.hit` / `primitives.cipher_cache.miss` /
    /// `primitives.cipher_cache.evict` and the gauge
    /// `primitives.cipher_cache.size`.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
    }

    /// Returns the context for `label`, building it with `build` on a miss.
    ///
    /// The build runs without the map lock held; if two threads race on
    /// the same label the first insert wins and the loser's context is
    /// discarded (both count as misses — a build happened).
    ///
    /// # Errors
    ///
    /// Propagates the error from `build`; nothing is cached on failure.
    pub fn get_or_try_build<E>(&self, label: &[u8], build: impl FnOnce() -> Result<C, E>) -> Result<Arc<C>, E> {
        if let Some(hit) = self.map.lock().expect("cipher cache poisoned").get(label) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs.count("primitives.cipher_cache.hit", 1);
            return Ok(Arc::clone(hit));
        }
        let built = Arc::new(build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs.count("primitives.cipher_cache.miss", 1);
        let mut map = self.map.lock().expect("cipher cache poisoned");
        let out = match map.get(label) {
            // Lost the build race: share the winner's context.
            Some(existing) => Arc::clone(existing),
            None => {
                if map.len() >= self.capacity {
                    // Arbitrary-victim eviction: cheap, keeps the bound, and
                    // label reuse is skewed enough that any victim works.
                    if let Some(victim) = map.keys().next().cloned() {
                        map.remove(&victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        self.obs.count("primitives.cipher_cache.evict", 1);
                    }
                }
                map.insert(label.to_vec(), Arc::clone(&built));
                built
            }
        };
        self.obs.gauge_set("primitives.cipher_cache.size", map.len() as i64);
        Ok(out)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            size: self.map.lock().expect("cipher cache poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_without_rebuilding() {
        let cache: CipherCache<u32> = CipherCache::new(8);
        let mut builds = 0u32;
        for _ in 0..3 {
            let v = cache
                .get_or_try_build(b"label", || {
                    builds += 1;
                    Ok::<_, ()>(7)
                })
                .unwrap();
            assert_eq!(*v, 7);
        }
        assert_eq!(builds, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.size), (2, 1, 1));
    }

    #[test]
    fn capacity_is_enforced_with_evictions() {
        let cache: CipherCache<usize> = CipherCache::new(4);
        for i in 0..10usize {
            cache.get_or_try_build(&[i as u8], || Ok::<_, ()>(i)).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.size, 4);
        assert_eq!(s.misses, 10);
        assert_eq!(s.evictions, 6);
    }

    #[test]
    fn build_errors_are_propagated_and_not_cached() {
        let cache: CipherCache<u32> = CipherCache::new(2);
        assert_eq!(cache.get_or_try_build(b"x", || Err::<u32, _>("boom")), Err("boom"));
        assert_eq!(cache.stats().size, 0);
        // A later successful build for the same label still works.
        assert_eq!(*cache.get_or_try_build(b"x", || Ok::<_, &str>(1)).unwrap(), 1);
    }

    #[test]
    fn concurrent_lookups_share_one_cache() {
        let cache: Arc<CipherCache<u64>> = Arc::new(CipherCache::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..32u64 {
                        let v = cache.get_or_try_build(&i.to_be_bytes(), || Ok::<_, ()>(i * 10)).unwrap();
                        assert_eq!(*v, i * 10);
                        let _ = t;
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 128);
        assert!(s.misses >= 32, "every label built at least once");
        assert_eq!(s.size, 32);
    }

    #[test]
    fn recorder_mirroring_counts_hits_and_misses() {
        let mut cache: CipherCache<u8> = CipherCache::new(2);
        let rec = Recorder::new();
        cache.set_recorder(rec.clone());
        cache.get_or_try_build(b"a", || Ok::<_, ()>(1)).unwrap();
        cache.get_or_try_build(b"a", || Ok::<_, ()>(1)).unwrap();
        let snap = rec.snapshot();
        let get = |name: &str| snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("primitives.cipher_cache.miss"), Some(1));
        assert_eq!(get("primitives.cipher_cache.hit"), Some(1));
        assert_eq!(snap.gauges.iter().find(|(n, _)| n == "primitives.cipher_cache.size").map(|(_, v)| *v), Some(1));
    }
}
