//! Constant-time helpers.

/// Compares two byte slices without early exit on mismatch.
///
/// Returns `false` immediately only for length mismatch (lengths are
/// public in all call sites of this crate).
///
/// ```
/// use datablinder_primitives::ct::constant_time_eq;
/// assert!(constant_time_eq(b"abc", b"abc"));
/// assert!(!constant_time_eq(b"abc", b"abd"));
/// assert!(!constant_time_eq(b"abc", b"ab"));
/// ```
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_and_unequal() {
        assert!(constant_time_eq(b"", b""));
        assert!(constant_time_eq(&[0; 32], &[0; 32]));
        assert!(!constant_time_eq(&[0; 32], &[1; 32]));
        let mut v = [7u8; 32];
        let w = v;
        assert!(constant_time_eq(&v, &w));
        v[31] ^= 0x80;
        assert!(!constant_time_eq(&v, &w));
    }
}
