//! AES-CTR stream encryption with a 32-bit big-endian block counter
//! (the same counter layout GCM uses).

use crate::aes::{Aes, BLOCK_LEN};

/// Keystream blocks generated per batch on the multi-block fast path.
const BATCH_BLOCKS: usize = 8;
const BATCH_BYTES: usize = BATCH_BLOCKS * BLOCK_LEN;

/// Applies the CTR keystream for (`aes`, `iv_block`) to `data` in place.
///
/// `iv_block` is the full initial 16-byte counter block; the last 4 bytes
/// are incremented (big-endian, wrapping) per keystream block. Encryption
/// and decryption are the same operation.
///
/// Keystream is generated [`BATCH_BLOCKS`] blocks at a time into a stack
/// buffer and XORed in `u64` lanes, so the eight independent block
/// encryptions and the wide XOR both expose instruction-level parallelism
/// that the one-block-at-a-time byte loop ([`ctr_xor_scalar`]) cannot.
/// Byte-identical to the scalar path for every input length.
pub fn ctr_xor(aes: &Aes, iv_block: &[u8; BLOCK_LEN], data: &mut [u8]) {
    let mut counter = *iv_block;
    let mut keystream = [0u8; BATCH_BYTES];
    let mut chunks = data.chunks_exact_mut(BATCH_BYTES);
    for chunk in &mut chunks {
        for block in keystream.chunks_exact_mut(BLOCK_LEN) {
            block.copy_from_slice(&counter);
            increment_counter(&mut counter);
        }
        for block in keystream.chunks_exact_mut(BLOCK_LEN) {
            aes.encrypt_block(block.try_into().expect("exact 16-byte chunk"));
        }
        for (d, k) in chunk.chunks_exact_mut(8).zip(keystream.chunks_exact(8)) {
            let lane = u64::from_ne_bytes(d.try_into().expect("exact 8-byte lane"))
                ^ u64::from_ne_bytes(k.try_into().expect("exact 8-byte lane"));
            d.copy_from_slice(&lane.to_ne_bytes());
        }
    }
    for chunk in chunks.into_remainder().chunks_mut(BLOCK_LEN) {
        let mut block = counter;
        aes.encrypt_block(&mut block);
        for (d, k) in chunk.iter_mut().zip(block.iter()) {
            *d ^= k;
        }
        increment_counter(&mut counter);
    }
}

/// One-block-at-a-time CTR with a per-byte XOR loop.
///
/// The pre-batching implementation, kept as the differential oracle for
/// [`ctr_xor`] and as the scalar baseline the symmetric benchmarks measure.
pub fn ctr_xor_scalar(aes: &Aes, iv_block: &[u8; BLOCK_LEN], data: &mut [u8]) {
    let mut counter = *iv_block;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let mut keystream = counter;
        aes.encrypt_block(&mut keystream);
        for (d, k) in chunk.iter_mut().zip(keystream.iter()) {
            *d ^= k;
        }
        increment_counter(&mut counter);
    }
}

/// Increments the low 32 bits of the counter block (big-endian, wrapping).
pub fn increment_counter(block: &mut [u8; BLOCK_LEN]) {
    let mut ctr = u32::from_be_bytes([block[12], block[13], block[14], block[15]]);
    ctr = ctr.wrapping_add(1);
    block[12..16].copy_from_slice(&ctr.to_be_bytes());
}

/// Builds a counter block from a 12-byte nonce with the given initial count.
pub fn counter_block(nonce: &[u8; 12], count: u32) -> [u8; BLOCK_LEN] {
    let mut block = [0u8; BLOCK_LEN];
    block[..12].copy_from_slice(nonce);
    block[12..16].copy_from_slice(&count.to_be_bytes());
    block
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_lengths() {
        let aes = Aes::new(&[0x42; 16]).unwrap();
        let iv = counter_block(&[9u8; 12], 1);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100] {
            let mut data: Vec<u8> = (0..len as u32).map(|i| i as u8).collect();
            let orig = data.clone();
            ctr_xor(&aes, &iv, &mut data);
            if len > 0 {
                assert_ne!(data, orig, "len {len}");
            }
            ctr_xor(&aes, &iv, &mut data);
            assert_eq!(data, orig, "len {len}");
        }
    }

    #[test]
    fn batched_matches_scalar_all_lengths() {
        let aes = Aes::new(&[0x17; 24]).unwrap();
        let iv = counter_block(&[5u8; 12], 2);
        for len in 0..=(3 * BATCH_BYTES + 5) {
            let mut fast: Vec<u8> = (0..len as u32).map(|i| (i * 7) as u8).collect();
            let mut slow = fast.clone();
            ctr_xor(&aes, &iv, &mut fast);
            ctr_xor_scalar(&aes, &iv, &mut slow);
            assert_eq!(fast, slow, "len {len}");
        }
    }

    #[test]
    fn batched_counter_wrap_mid_batch_matches_scalar() {
        // Start close enough to u32::MAX that the wrap lands inside a batch.
        let aes = Aes::new(&[0x2a; 16]).unwrap();
        let iv = counter_block(&[8u8; 12], u32::MAX - 3);
        let mut fast = vec![0xEEu8; 2 * BATCH_BYTES];
        let mut slow = fast.clone();
        ctr_xor(&aes, &iv, &mut fast);
        ctr_xor_scalar(&aes, &iv, &mut slow);
        assert_eq!(fast, slow);
    }

    #[test]
    fn counter_wraps() {
        let mut block = counter_block(&[0u8; 12], u32::MAX);
        increment_counter(&mut block);
        assert_eq!(&block[12..], &[0, 0, 0, 0]);
    }

    #[test]
    fn distinct_ivs_distinct_streams() {
        let aes = Aes::new(&[0x42; 16]).unwrap();
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        ctr_xor(&aes, &counter_block(&[1u8; 12], 1), &mut a);
        ctr_xor(&aes, &counter_block(&[2u8; 12], 1), &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_is_block_aligned() {
        // Encrypting in one call or two calls over the same stream must
        // differ (each call restarts at the IV) — documents the API contract.
        let aes = Aes::new(&[7; 16]).unwrap();
        let iv = counter_block(&[3u8; 12], 1);
        let mut whole = vec![0u8; 32];
        ctr_xor(&aes, &iv, &mut whole);
        let mut first = vec![0u8; 16];
        ctr_xor(&aes, &iv, &mut first);
        assert_eq!(&whole[..16], &first[..]);
    }
}
