//! AES-GCM authenticated encryption (NIST SP 800-38D) with GHASH over
//! GF(2^128).

use crate::aes::{Aes, BLOCK_LEN};
use crate::ct::constant_time_eq;
use crate::ctr::{counter_block, ctr_xor};
use crate::keys::SymmetricKey;
use crate::CryptoError;

/// GCM nonce size in bytes (the recommended 96-bit size; other sizes are
/// not supported).
pub const NONCE_LEN: usize = 12;
/// GCM tag size in bytes.
pub const TAG_LEN: usize = 16;

/// The GHASH reduction polynomial constant (x^128 + x^7 + x^2 + x + 1 in
/// GCM's reflected representation).
const R: u128 = 0xE1u128 << 120;

/// Multiplication in GF(2^128) with GCM bit ordering.
fn gf_mul(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// GHASH over `aad` and `ciphertext` with hash subkey `h`.
fn ghash(h: u128, aad: &[u8], ciphertext: &[u8]) -> u128 {
    let mut y = 0u128;
    let mut absorb = |data: &[u8]| {
        for chunk in data.chunks(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            block[..chunk.len()].copy_from_slice(chunk);
            y = gf_mul(y ^ u128::from_be_bytes(block), h);
        }
    };
    absorb(aad);
    absorb(ciphertext);
    let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
    gf_mul(y ^ lengths, h)
}

/// An AES-GCM AEAD instance.
///
/// # Examples
///
/// ```
/// use datablinder_primitives::gcm::AesGcm;
/// use datablinder_primitives::keys::SymmetricKey;
///
/// # fn main() -> Result<(), datablinder_primitives::CryptoError> {
/// let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[0u8; 32]))?;
/// let sealed = cipher.seal(&[0u8; 12], b"", b"secret");
/// assert_eq!(cipher.open(&[0u8; 12], b"", &sealed)?, b"secret");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct AesGcm {
    aes: Aes,
    h: u128,
}

impl AesGcm {
    /// Creates a GCM instance from a 16/24/32-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for unsupported sizes.
    pub fn new(key: &SymmetricKey) -> Result<Self, CryptoError> {
        let aes = Aes::new(key.as_bytes())?;
        let mut hb = [0u8; BLOCK_LEN];
        aes.encrypt_block(&mut hb);
        Ok(AesGcm { aes, h: u128::from_be_bytes(hb) })
    }

    /// Encrypts `plaintext` with `nonce` and `aad`; output is
    /// `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        ctr_xor(&self.aes, &counter_block(nonce, 2), &mut out);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts and verifies `ciphertext || tag`.
    ///
    /// # Errors
    ///
    /// [`CryptoError::MalformedCiphertext`] if shorter than a tag,
    /// [`CryptoError::AuthenticationFailed`] if the tag does not verify.
    pub fn open(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::MalformedCiphertext);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expect = self.tag(nonce, aad, ct);
        if !constant_time_eq(&expect, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut pt = ct.to_vec();
        ctr_xor(&self.aes, &counter_block(nonce, 2), &mut pt);
        Ok(pt)
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let s = ghash(self.h, aad, ciphertext);
        let mut j0 = counter_block(nonce, 1);
        self.aes.encrypt_block(&mut j0);
        (s ^ u128::from_be_bytes(j0)).to_be_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_test_case_1_empty() {
        // AES-128, zero key, zero IV, empty everything.
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[0u8; 16])).unwrap();
        let sealed = cipher.seal(&[0u8; 12], b"", b"");
        assert_eq!(hex(&sealed), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    #[test]
    fn nist_test_case_2_one_block() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[0u8; 16])).unwrap();
        let sealed = cipher.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(hex(&sealed), "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf");
    }

    #[test]
    fn roundtrip_with_aad() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[3u8; 32])).unwrap();
        let nonce = [5u8; 12];
        for len in [0usize, 1, 15, 16, 17, 100] {
            let pt: Vec<u8> = (0..len as u32).map(|i| i as u8).collect();
            let sealed = cipher.seal(&nonce, b"context", &pt);
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(cipher.open(&nonce, b"context", &sealed).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn tamper_detection() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[3u8; 16])).unwrap();
        let nonce = [5u8; 12];
        let mut sealed = cipher.seal(&nonce, b"aad", b"payload");
        // Flip a ciphertext bit.
        sealed[0] ^= 1;
        assert_eq!(cipher.open(&nonce, b"aad", &sealed), Err(CryptoError::AuthenticationFailed));
        sealed[0] ^= 1;
        // Flip a tag bit.
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert_eq!(cipher.open(&nonce, b"aad", &sealed), Err(CryptoError::AuthenticationFailed));
        sealed[last] ^= 1;
        // Wrong AAD.
        assert_eq!(cipher.open(&nonce, b"other", &sealed), Err(CryptoError::AuthenticationFailed));
        // Wrong nonce.
        assert_eq!(cipher.open(&[6u8; 12], b"aad", &sealed), Err(CryptoError::AuthenticationFailed));
        // Intact opens fine.
        assert_eq!(cipher.open(&nonce, b"aad", &sealed).unwrap(), b"payload");
    }

    #[test]
    fn truncated_input_rejected() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[3u8; 16])).unwrap();
        assert_eq!(cipher.open(&[0u8; 12], b"", &[0u8; 15]), Err(CryptoError::MalformedCiphertext));
    }

    #[test]
    fn gf_mul_identity_and_commutativity() {
        // The multiplicative identity in GCM's representation is the MSB-set block.
        let one = 1u128 << 127;
        for x in [0u128, 1, one, 0xdead_beef_u128 << 64 | 77] {
            assert_eq!(gf_mul(x, one), x);
            assert_eq!(gf_mul(one, x), x);
        }
        let a = 0x0123_4567_89ab_cdef_u128;
        let b = 0xfeed_face_cafe_beef_u128 << 32;
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
    }
}
