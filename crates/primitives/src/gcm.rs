//! AES-GCM authenticated encryption (NIST SP 800-38D) with GHASH over
//! GF(2^128).
//!
//! GHASH is table-driven: [`AesGcm::new`] precomputes a per-key 256-entry
//! multiplication table from the hash subkey `h`, so absorbing a block
//! costs 16 table lookups instead of the 128-round bit loop. The bit loop
//! ([`gf_mul`]) is kept as the differential oracle, and [`AesGcm::seal_scalar`]
//! preserves the whole pre-table seal path for benchmarks and tests.

use std::sync::OnceLock;

use crate::aes::{Aes, BLOCK_LEN};
use crate::ct::constant_time_eq;
use crate::ctr::{counter_block, ctr_xor, ctr_xor_scalar};
use crate::keys::SymmetricKey;
use crate::CryptoError;

/// GCM nonce size in bytes (the recommended 96-bit size; other sizes are
/// not supported).
pub const NONCE_LEN: usize = 12;
/// GCM tag size in bytes.
pub const TAG_LEN: usize = 16;

/// The GHASH reduction polynomial constant (x^128 + x^7 + x^2 + x + 1 in
/// GCM's reflected representation).
const R: u128 = 0xE1u128 << 120;

/// Multiplication in GF(2^128) with GCM bit ordering.
///
/// The 128-round bit loop. No longer on the hot path — kept public as the
/// differential oracle the table-driven GHASH is checked against, and as
/// the baseline the symmetric benchmarks measure.
pub fn gf_mul(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// Multiply by x in GCM's reflected representation (bit 127 = coefficient
/// of x^0, so "times x" is a right shift plus conditional reduction).
fn mulx(v: u128) -> u128 {
    let out = v >> 1;
    if v & 1 == 1 {
        out ^ R
    } else {
        out
    }
}

/// Key-independent reduction table for shifting a GHASH accumulator down
/// by one byte: `R8[b] = x^8 · b` where `b` occupies the low 8 bits of the
/// accumulator (the x^120..x^127 coefficients that fall off the end).
fn r8_table() -> &'static [u128; 256] {
    static TABLE: OnceLock<[u128; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u128; 256];
        for (b, slot) in t.iter_mut().enumerate() {
            let mut v = b as u128;
            for _ in 0..8 {
                v = mulx(v);
            }
            *slot = v;
        }
        t
    })
}

/// Key-independent reduction table for shifting the accumulator down by
/// two bytes in one step: `R16LO[b] = x^16 · b` for `b` in the low 8 bits.
/// Together with [`r8_table`] this decomposes `x^16 · v` into three
/// independent lookups (see [`GhashTable::mul_h`]).
fn r16lo_table() -> &'static [u128; 256] {
    static TABLE: OnceLock<[u128; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let r8 = r8_table();
        let mut t = [0u128; 256];
        for (b, slot) in t.iter_mut().enumerate() {
            let v = r8[b];
            *slot = (v >> 8) ^ r8[(v & 0xff) as usize];
        }
        t
    })
}

/// Per-key GHASH multiplication tables: `t[b]` is the field product of the
/// hash subkey `h` with the one-byte polynomial `b` placed at the top of
/// the block (coefficients x^0..x^7), and `t8[b] = x^8 · t[b]` so the
/// Horner loop can consume two bytes per step. 2 × 256 × 16 bytes = 8 KiB
/// per key, built once in [`AesGcm::new`].
#[derive(Clone)]
struct GhashTable {
    t: Box<[u128; 256]>,
    t8: Box<[u128; 256]>,
}

impl GhashTable {
    fn new(h: u128) -> Self {
        let mut t = Box::new([0u128; 256]);
        // Single-bit entries by repeated halving: byte 0x80 is x^0 (whose
        // product is h itself), and each lower bit is one more power of x.
        let mut v = h;
        let mut bit = 0x80usize;
        while bit >= 1 {
            t[bit] = v;
            v = mulx(v);
            bit >>= 1;
        }
        // Remaining entries by linearity, combining the lowest set bit
        // with the (already filled) rest of the byte.
        for b in 2..256usize {
            if b & (b - 1) != 0 {
                let low = b & b.wrapping_neg();
                t[b] = t[low] ^ t[b ^ low];
            }
        }
        // The odd-byte companion: every entry shifted down one byte.
        let r8 = r8_table();
        let mut t8 = Box::new([0u128; 256]);
        for (e8, e) in t8.iter_mut().zip(t.iter()) {
            *e8 = (e >> 8) ^ r8[(e & 0xff) as usize];
        }
        GhashTable { t, t8 }
    }

    /// Multiplies the accumulator by `h`: Horner over the 16 bytes of `y`
    /// from the highest powers (bottom bytes) up, two bytes per step. The
    /// `x^16` shift is decomposed into three *independent* lookups
    /// (`v >> 16`, `R8` on the middle byte, `R16LO` on the low byte), so
    /// each step's serial dependency is a single XOR tree — roughly twice
    /// the throughput of the byte-at-a-time loop.
    fn mul_h(&self, y: u128) -> u128 {
        let r8 = r8_table();
        let r16 = r16lo_table();
        let bytes = y.to_be_bytes();
        let mut z = self.t[bytes[14] as usize] ^ self.t8[bytes[15] as usize];
        let mut j = 12;
        loop {
            z = (z >> 16)
                ^ r8[((z >> 8) & 0xff) as usize]
                ^ r16[(z & 0xff) as usize]
                ^ self.t[bytes[j] as usize]
                ^ self.t8[bytes[j + 1] as usize];
            if j == 0 {
                break;
            }
            j -= 2;
        }
        z
    }
}

/// An AES-GCM AEAD instance.
///
/// # Examples
///
/// ```
/// use datablinder_primitives::gcm::AesGcm;
/// use datablinder_primitives::keys::SymmetricKey;
///
/// # fn main() -> Result<(), datablinder_primitives::CryptoError> {
/// let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[0u8; 32]))?;
/// let sealed = cipher.seal(&[0u8; 12], b"", b"secret");
/// assert_eq!(cipher.open(&[0u8; 12], b"", &sealed)?, b"secret");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct AesGcm {
    aes: Aes,
    h: u128,
    table: GhashTable,
}

impl AesGcm {
    /// Creates a GCM instance from a 16/24/32-byte key.
    ///
    /// Builds the AES key schedule and the 4 KiB per-key GHASH table once;
    /// every subsequent seal/open reuses both.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for unsupported sizes.
    pub fn new(key: &SymmetricKey) -> Result<Self, CryptoError> {
        let aes = Aes::new(key.as_bytes())?;
        let mut hb = [0u8; BLOCK_LEN];
        aes.encrypt_block(&mut hb);
        let h = u128::from_be_bytes(hb);
        Ok(AesGcm { aes, h, table: GhashTable::new(h) })
    }

    /// Encrypts `plaintext` with `nonce` and `aad`; output is
    /// `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        self.seal_into(nonce, aad, plaintext, &mut out);
        out
    }

    /// Appends `ciphertext || tag` to `out` without any intermediate
    /// allocation; one `reserve` covers the whole sealed record, so batch
    /// callers that pre-size `out` pay zero allocator round trips here.
    pub fn seal_into(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8], out: &mut Vec<u8>) {
        out.reserve(plaintext.len() + TAG_LEN);
        let start = out.len();
        out.extend_from_slice(plaintext);
        ctr_xor(&self.aes, &counter_block(nonce, 2), &mut out[start..]);
        let tag = self.tag(nonce, aad, &out[start..]);
        out.extend_from_slice(&tag);
    }

    /// Seals a contiguous batch of `(nonce, plaintext)` items with one
    /// cipher context, returning one `ciphertext || tag` record per item.
    ///
    /// Each record is produced with a single exact-capacity allocation via
    /// [`AesGcm::seal_into`]; the AES schedule, GHASH table and the CTR
    /// stack keystream buffer are shared across the whole batch.
    pub fn seal_many(&self, aad: &[u8], items: &[(&[u8; NONCE_LEN], &[u8])]) -> Vec<Vec<u8>> {
        items
            .iter()
            .map(|(nonce, plaintext)| {
                let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
                self.seal_into(nonce, aad, plaintext, &mut out);
                out
            })
            .collect()
    }

    /// Decrypts and verifies `ciphertext || tag`.
    ///
    /// # Errors
    ///
    /// [`CryptoError::MalformedCiphertext`] if shorter than a tag,
    /// [`CryptoError::AuthenticationFailed`] if the tag does not verify.
    pub fn open(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let mut out = Vec::new();
        self.open_into(nonce, aad, sealed, &mut out)?;
        Ok(out)
    }

    /// Verifies `ciphertext || tag` and appends the plaintext to `out`.
    ///
    /// The tag is checked **before** any plaintext is written; on error
    /// `out` is untouched.
    ///
    /// # Errors
    ///
    /// Same contract as [`AesGcm::open`].
    pub fn open_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::MalformedCiphertext);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expect = self.tag(nonce, aad, ct);
        if !constant_time_eq(&expect, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        out.reserve(ct.len());
        let start = out.len();
        out.extend_from_slice(ct);
        ctr_xor(&self.aes, &counter_block(nonce, 2), &mut out[start..]);
        Ok(())
    }

    /// Opens a contiguous batch of `(nonce, sealed)` records with one
    /// cipher context.
    ///
    /// # Errors
    ///
    /// Fails on the first record that does not verify (same contract as
    /// [`AesGcm::open`]); earlier plaintexts are discarded.
    pub fn open_many(&self, aad: &[u8], items: &[(&[u8; NONCE_LEN], &[u8])]) -> Result<Vec<Vec<u8>>, CryptoError> {
        items
            .iter()
            .map(|(nonce, sealed)| {
                let mut out = Vec::with_capacity(sealed.len().saturating_sub(TAG_LEN));
                self.open_into(nonce, aad, sealed, &mut out)?;
                Ok(out)
            })
            .collect()
    }

    /// The pre-table seal path: bit-loop GHASH, one-block scalar CTR and
    /// the original copy-then-extend allocation pattern.
    ///
    /// Kept as the differential oracle for [`AesGcm::seal`] /
    /// [`AesGcm::seal_many`] and as the legacy baseline the symmetric
    /// benchmarks measure against. Byte-identical output to `seal`.
    pub fn seal_scalar(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        ctr_xor_scalar(&self.aes, &counter_block(nonce, 2), &mut out);
        let s = self.ghash_ref(aad, &out);
        let mut j0 = counter_block(nonce, 1);
        self.aes.encrypt_block_ref(&mut j0);
        let tag = (u128::from_be_bytes(s) ^ u128::from_be_bytes(j0)).to_be_bytes();
        out.extend_from_slice(&tag);
        out
    }

    /// GHASH over `aad` and `ciphertext` via the per-key table.
    ///
    /// Exposed for the differential proptests and the symmetric benchmark;
    /// production callers go through seal/open.
    pub fn ghash(&self, aad: &[u8], ciphertext: &[u8]) -> [u8; BLOCK_LEN] {
        let mut y = 0u128;
        let mut absorb = |data: &[u8]| {
            for chunk in data.chunks(BLOCK_LEN) {
                let mut block = [0u8; BLOCK_LEN];
                block[..chunk.len()].copy_from_slice(chunk);
                y = self.table.mul_h(y ^ u128::from_be_bytes(block));
            }
        };
        absorb(aad);
        absorb(ciphertext);
        let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
        self.table.mul_h(y ^ lengths).to_be_bytes()
    }

    /// GHASH via the 128-round [`gf_mul`] bit loop — the differential
    /// oracle for [`AesGcm::ghash`].
    pub fn ghash_ref(&self, aad: &[u8], ciphertext: &[u8]) -> [u8; BLOCK_LEN] {
        let mut y = 0u128;
        let mut absorb = |data: &[u8]| {
            for chunk in data.chunks(BLOCK_LEN) {
                let mut block = [0u8; BLOCK_LEN];
                block[..chunk.len()].copy_from_slice(chunk);
                y = gf_mul(y ^ u128::from_be_bytes(block), self.h);
            }
        };
        absorb(aad);
        absorb(ciphertext);
        let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
        gf_mul(y ^ lengths, self.h).to_be_bytes()
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let s = self.ghash(aad, ciphertext);
        let mut j0 = counter_block(nonce, 1);
        self.aes.encrypt_block(&mut j0);
        (u128::from_be_bytes(s) ^ u128::from_be_bytes(j0)).to_be_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_test_case_1_empty() {
        // AES-128, zero key, zero IV, empty everything.
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[0u8; 16])).unwrap();
        let sealed = cipher.seal(&[0u8; 12], b"", b"");
        assert_eq!(hex(&sealed), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    #[test]
    fn nist_test_case_2_one_block() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[0u8; 16])).unwrap();
        let sealed = cipher.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(hex(&sealed), "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf");
    }

    #[test]
    fn nist_test_case_13_aes256_empty() {
        // AES-256, zero key, zero IV, empty everything (SP 800-38D set).
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[0u8; 32])).unwrap();
        let sealed = cipher.seal(&[0u8; 12], b"", b"");
        assert_eq!(hex(&sealed), "530f8afbc74536b9a963b4f1c4cb738b");
    }

    #[test]
    fn nist_test_case_14_aes256_one_block() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[0u8; 32])).unwrap();
        let sealed = cipher.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(hex(&sealed), "cea7403d4d606b6e074ec5d3baf39d18d0d1c8a799996bf0265b98b5d48ab919");
    }

    #[test]
    fn nist_test_case_7_aes192_empty() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[0u8; 24])).unwrap();
        let sealed = cipher.seal(&[0u8; 12], b"", b"");
        assert_eq!(hex(&sealed), "cd33b28ac773f74ba00ed1f312572435");
    }

    #[test]
    fn nist_test_case_8_aes192_one_block() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[0u8; 24])).unwrap();
        let sealed = cipher.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(hex(&sealed), "98e7247c07f0fe411c267e4384b0f6002ff58d80033927ab8ef4d4587514f0fb");
    }

    #[test]
    fn roundtrip_with_aad() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[3u8; 32])).unwrap();
        let nonce = [5u8; 12];
        for len in [0usize, 1, 15, 16, 17, 100] {
            let pt: Vec<u8> = (0..len as u32).map(|i| i as u8).collect();
            let sealed = cipher.seal(&nonce, b"context", &pt);
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(cipher.open(&nonce, b"context", &sealed).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn table_seal_matches_scalar_oracle() {
        for keylen in [16usize, 24, 32] {
            let cipher = AesGcm::new(&SymmetricKey::from_bytes(&vec![7u8; keylen])).unwrap();
            let nonce = [9u8; 12];
            for len in [0usize, 1, 15, 16, 17, 64, 100, 255] {
                let pt: Vec<u8> = (0..len as u32).map(|i| (i * 3) as u8).collect();
                assert_eq!(
                    cipher.seal(&nonce, b"aad", &pt),
                    cipher.seal_scalar(&nonce, b"aad", &pt),
                    "keylen {keylen} len {len}"
                );
            }
        }
    }

    #[test]
    fn seal_many_matches_per_field_seal() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[11u8; 16])).unwrap();
        let nonces: Vec<[u8; 12]> = (0..5u8).map(|i| [i; 12]).collect();
        let plains: Vec<Vec<u8>> = (0..5usize).map(|i| vec![i as u8; 7 * i + 1]).collect();
        let items: Vec<(&[u8; 12], &[u8])> = nonces.iter().zip(&plains).map(|(n, p)| (n, p.as_slice())).collect();
        let batch = cipher.seal_many(b"x", &items);
        for ((nonce, plain), sealed) in nonces.iter().zip(&plains).zip(&batch) {
            assert_eq!(sealed, &cipher.seal(nonce, b"x", plain));
        }
        let sealed_refs: Vec<(&[u8; 12], &[u8])> = nonces.iter().zip(&batch).map(|(n, s)| (n, s.as_slice())).collect();
        assert_eq!(cipher.open_many(b"x", &sealed_refs).unwrap(), plains);
    }

    #[test]
    fn open_into_leaves_out_untouched_on_failure() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[3u8; 16])).unwrap();
        let nonce = [5u8; 12];
        let mut sealed = cipher.seal(&nonce, b"aad", b"payload");
        sealed[0] ^= 1;
        let mut out = b"prefix".to_vec();
        assert_eq!(cipher.open_into(&nonce, b"aad", &sealed, &mut out), Err(CryptoError::AuthenticationFailed));
        assert_eq!(out, b"prefix");
        sealed[0] ^= 1;
        cipher.open_into(&nonce, b"aad", &sealed, &mut out).unwrap();
        assert_eq!(out, b"prefixpayload");
    }

    #[test]
    fn tamper_detection() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[3u8; 16])).unwrap();
        let nonce = [5u8; 12];
        let mut sealed = cipher.seal(&nonce, b"aad", b"payload");
        // Flip a ciphertext bit.
        sealed[0] ^= 1;
        assert_eq!(cipher.open(&nonce, b"aad", &sealed), Err(CryptoError::AuthenticationFailed));
        sealed[0] ^= 1;
        // Flip a tag bit.
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert_eq!(cipher.open(&nonce, b"aad", &sealed), Err(CryptoError::AuthenticationFailed));
        sealed[last] ^= 1;
        // Wrong AAD.
        assert_eq!(cipher.open(&nonce, b"other", &sealed), Err(CryptoError::AuthenticationFailed));
        // Wrong nonce.
        assert_eq!(cipher.open(&[6u8; 12], b"aad", &sealed), Err(CryptoError::AuthenticationFailed));
        // Intact opens fine.
        assert_eq!(cipher.open(&nonce, b"aad", &sealed).unwrap(), b"payload");
    }

    #[test]
    fn truncated_input_rejected() {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[3u8; 16])).unwrap();
        assert_eq!(cipher.open(&[0u8; 12], b"", &[0u8; 15]), Err(CryptoError::MalformedCiphertext));
    }

    #[test]
    fn gf_mul_identity_and_commutativity() {
        // The multiplicative identity in GCM's representation is the MSB-set block.
        let one = 1u128 << 127;
        for x in [0u128, 1, one, 0xdead_beef_u128 << 64 | 77] {
            assert_eq!(gf_mul(x, one), x);
            assert_eq!(gf_mul(one, x), x);
        }
        let a = 0x0123_4567_89ab_cdef_u128;
        let b = 0xfeed_face_cafe_beef_u128 << 32;
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
    }

    #[test]
    fn ghash_table_matches_gf_mul_oracle() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2718);
        let mut key = [0u8; 16];
        rng.fill_bytes(&mut key);
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&key)).unwrap();
        for len in [0usize, 1, 16, 17, 33, 100, 4096] {
            let mut aad = vec![0u8; len / 3];
            let mut ct = vec![0u8; len];
            rng.fill_bytes(&mut aad);
            rng.fill_bytes(&mut ct);
            assert_eq!(cipher.ghash(&aad, &ct), cipher.ghash_ref(&aad, &ct), "len {len}");
        }
    }
}
