//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//!
//! [`HmacCtx`] precomputes the ipad/opad SHA-256 midstates once per key;
//! each subsequent MAC then skips key preparation and both pad
//! compressions (half the compression-function calls of a from-scratch
//! HMAC for short messages). [`hmac_sha256`] stays as a thin wrapper for
//! one-off call sites.

use crate::sha256::{digest, Sha256, BLOCK_LEN, DIGEST_LEN};

/// A reusable HMAC-SHA256 key context holding the ipad/opad midstates.
///
/// # Examples
///
/// ```
/// use datablinder_primitives::hmac::{hmac_sha256, HmacCtx};
/// let ctx = HmacCtx::new(b"key");
/// assert_eq!(ctx.mac(b"message"), hmac_sha256(b"key", b"message"));
/// ```
#[derive(Clone)]
pub struct HmacCtx {
    inner: Sha256,
    outer: Sha256,
}

impl HmacCtx {
    /// Prepares the key (any length; hashed down if long) and absorbs the
    /// ipad/opad blocks into two hasher midstates.
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            block_key[..DIGEST_LEN].copy_from_slice(&digest(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacCtx { inner, outer }
    }

    /// Starts an incremental MAC from the stored midstates.
    pub fn begin(&self) -> HmacSha256 {
        HmacSha256 { inner: self.inner.clone(), outer: self.outer.clone() }
    }

    /// One-shot MAC of `message` under this key.
    pub fn mac(&self, message: &[u8]) -> [u8; DIGEST_LEN] {
        let mut m = self.begin();
        m.update(message);
        m.finalize()
    }
}

/// Incremental HMAC-SHA256.
///
/// # Examples
///
/// ```
/// use datablinder_primitives::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates a MAC context for `key` (any length; hashed down if long).
    ///
    /// Call sites that MAC repeatedly under one key should build an
    /// [`HmacCtx`] once and [`HmacCtx::begin`] per message instead.
    pub fn new(key: &[u8]) -> Self {
        HmacCtx::new(key).begin()
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    HmacCtx::new(key).mac(message)
}

/// HKDF-Extract (RFC 5869 §2.2).
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand (RFC 5869 §2.3).
///
/// # Panics
///
/// Panics if `len > 255 * 32` (the RFC limit).
pub fn hkdf_expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output too long");
    let ctx = HmacCtx::new(prk);
    let mut okm = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut mac = ctx.begin();
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        t = mac.finalize().to_vec();
        okm.extend_from_slice(&t);
        counter = counter.wrapping_add(1); // loop exits before a 256th block is needed
    }
    okm.truncate(len);
    okm
}

/// HKDF extract-then-expand in one call.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_case3_long_data() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(hex(&tag), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(hex(&prk), "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(hex(&okm), "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865");
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"k", b"hello world"));
    }

    #[test]
    fn ctx_reuse_equals_fresh_key_prep() {
        // One context, many messages: every MAC must equal the from-scratch
        // computation, including for a long (hashed-down) key.
        for key in [&[0x0b; 20][..], b"Jefe", &[0xaa; 131][..]] {
            let ctx = HmacCtx::new(key);
            for msg in [&b""[..], b"Hi There", &[0xdd; 50][..], &[0x61; 200][..]] {
                assert_eq!(ctx.mac(msg), hmac_sha256(key, msg));
                let mut inc = ctx.begin();
                inc.update(msg);
                assert_eq!(inc.finalize(), hmac_sha256(key, msg));
            }
        }
    }

    #[test]
    fn expand_length_limits() {
        let prk = hkdf_extract(b"s", b"ikm");
        assert_eq!(hkdf_expand(&prk, b"", 0).len(), 0);
        assert_eq!(hkdf_expand(&prk, b"", 33).len(), 33);
        assert_eq!(hkdf_expand(&prk, b"", 255 * 32).len(), 255 * 32);
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn expand_too_long_panics() {
        hkdf_expand(&[0u8; 32], b"", 255 * 32 + 1);
    }

    #[test]
    fn different_infos_differ() {
        let prk = hkdf_extract(b"s", b"ikm");
        assert_ne!(hkdf_expand(&prk, b"a", 32), hkdf_expand(&prk, b"b", 32));
    }
}
