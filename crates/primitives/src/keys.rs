//! Symmetric key material.

use rand::RngCore;

/// A symmetric key with best-effort zeroization on drop.
///
/// Wraps raw key bytes so that keys are visibly distinct from ordinary
/// byte buffers in APIs ([C-NEWTYPE]) and never appear in `Debug` output.
///
/// # Examples
///
/// ```
/// use datablinder_primitives::keys::SymmetricKey;
/// let k = SymmetricKey::from_bytes(&[1u8; 16]);
/// assert_eq!(k.len(), 16);
/// assert_eq!(format!("{k:?}"), "SymmetricKey(16 bytes, redacted)");
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SymmetricKey {
    bytes: Vec<u8>,
}

impl SymmetricKey {
    /// Copies key material from a slice.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        SymmetricKey { bytes: bytes.to_vec() }
    }

    /// Generates a fresh random key of `len` bytes.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R, len: usize) -> Self {
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        SymmetricKey { bytes }
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Key length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the key is empty (zero-length).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Derives a labeled subkey of `len` bytes via HKDF.
    ///
    /// ```
    /// use datablinder_primitives::keys::SymmetricKey;
    /// let master = SymmetricKey::from_bytes(&[9u8; 32]);
    /// let a = master.derive(b"index", 32);
    /// let b = master.derive(b"payload", 32);
    /// assert_ne!(a.as_bytes(), b.as_bytes());
    /// ```
    pub fn derive(&self, label: &[u8], len: usize) -> SymmetricKey {
        let okm = crate::hmac::hkdf(b"datablinder/v1", &self.bytes, label, len);
        SymmetricKey { bytes: okm }
    }
}

impl Drop for SymmetricKey {
    fn drop(&mut self) {
        // Best-effort wipe; the optimizer may elide this, acceptable for a
        // research reproduction.
        for b in self.bytes.iter_mut() {
            unsafe { std::ptr::write_volatile(b, 0) };
        }
    }
}

impl std::fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SymmetricKey({} bytes, redacted)", self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generate_distinct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = SymmetricKey::generate(&mut rng, 32);
        let b = SymmetricKey::generate(&mut rng, 32);
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
        assert!(!a.is_empty());
    }

    #[test]
    fn derive_is_deterministic() {
        let master = SymmetricKey::from_bytes(&[5u8; 32]);
        assert_eq!(master.derive(b"x", 16), master.derive(b"x", 16));
        assert_ne!(master.derive(b"x", 16), master.derive(b"y", 16));
    }

    #[test]
    fn debug_redacts() {
        let k = SymmetricKey::from_bytes(&[0xAA; 8]);
        assert!(!format!("{k:?}").contains("aa"));
    }
}
