//! Cryptographic primitives for the DataBlinder reproduction.
//!
//! The original DataBlinder system used Bouncy Castle for AES/GCM,
//! HMAC-SHA256 and related building blocks. This crate rebuilds that
//! substrate from scratch:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256,
//! * [`hmac`] — RFC 2104 HMAC-SHA256 and RFC 5869 HKDF,
//! * [`aes`] — FIPS 197 AES-128/192/256 block cipher,
//! * [`ctr`] — AES-CTR stream encryption,
//! * [`gcm`] — AES-GCM authenticated encryption (GHASH over GF(2^128)),
//! * [`cache`] — a bounded per-label cache of derived cipher contexts,
//! * [`prf`] — the keyed PRF abstraction tactics are built on,
//! * [`ct`] — constant-time comparison,
//! * [`keys`] — symmetric key material with best-effort zeroization.
//!
//! # Examples
//!
//! ```
//! use datablinder_primitives::gcm::AesGcm;
//! use datablinder_primitives::keys::SymmetricKey;
//!
//! # fn main() -> Result<(), datablinder_primitives::CryptoError> {
//! let key = SymmetricKey::from_bytes(&[7u8; 16]);
//! let cipher = AesGcm::new(&key)?;
//! let nonce = [1u8; 12];
//! let ct = cipher.seal(&nonce, b"attached data", b"hello world");
//! let pt = cipher.open(&nonce, b"attached data", &ct)?;
//! assert_eq!(pt, b"hello world");
//! # Ok(())
//! # }
//! ```
//!
//! # Security note
//!
//! Faithful to the algorithms but **not audited and not constant time**
//! throughout (table-based AES, variable-time big-integer ops upstream).
//! Do not reuse outside this reproduction.

#![warn(missing_docs)]
pub mod aes;
pub mod cache;
pub mod ct;
pub mod ctr;
pub mod gcm;
pub mod hmac;
pub mod keys;
pub mod prf;
pub mod sha256;

/// Errors produced by the primitives crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Key material has an unsupported length for the requested algorithm.
    InvalidKeyLength {
        /// Acceptable lengths, human-readable.
        expected: &'static str,
        /// The length supplied.
        got: usize,
    },
    /// Ciphertext is malformed (too short, truncated tag, ...).
    MalformedCiphertext,
    /// Authentication tag verification failed.
    AuthenticationFailed,
    /// A nonce/IV had the wrong size.
    InvalidNonce {
        /// Required nonce length in bytes.
        expected: usize,
        /// The length supplied.
        got: usize,
    },
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::InvalidKeyLength { expected, got } => {
                write!(f, "invalid key length: expected {expected} bytes, got {got}")
            }
            CryptoError::MalformedCiphertext => write!(f, "malformed ciphertext"),
            CryptoError::AuthenticationFailed => write!(f, "authentication tag mismatch"),
            CryptoError::InvalidNonce { expected, got } => {
                write!(f, "invalid nonce length: expected {expected} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for CryptoError {}
