//! The keyed pseudorandom-function abstraction used as a building block by
//! the data protection tactics (paper §4.2, "cryptographic primitives as
//! building blocks, e.g. PRF").

use crate::hmac::HmacCtx;
use crate::keys::SymmetricKey;

/// A pseudorandom function family keyed by a [`SymmetricKey`].
///
/// The SSE tactics (Mitra, Sophos, 2Lev, BIEX) are generic over this trait
/// so alternative PRFs can be plugged in (crypto agility down to the
/// primitive level).
pub trait Prf: Send + Sync {
    /// Evaluates the PRF, producing 32 pseudorandom bytes.
    fn eval(&self, input: &[u8]) -> [u8; 32];

    /// Evaluates over multiple input parts without concatenation ambiguity
    /// (each part is length-prefixed).
    fn eval_parts(&self, parts: &[&[u8]]) -> [u8; 32] {
        let mut buf = Vec::new();
        for p in parts {
            buf.extend_from_slice(&(p.len() as u64).to_be_bytes());
            buf.extend_from_slice(p);
        }
        self.eval(&buf)
    }

    /// Evaluates and truncates/expands to `len` bytes (counter-mode expand).
    fn eval_len(&self, input: &[u8], len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut counter = 0u32;
        while out.len() < len {
            let mut msg = input.to_vec();
            msg.extend_from_slice(&counter.to_be_bytes());
            out.extend_from_slice(&self.eval(&msg));
            counter += 1;
        }
        out.truncate(len);
        out
    }
}

/// HMAC-SHA256 as a PRF — the standard instantiation.
///
/// # Examples
///
/// ```
/// use datablinder_primitives::prf::{HmacPrf, Prf};
/// use datablinder_primitives::keys::SymmetricKey;
///
/// let prf = HmacPrf::new(SymmetricKey::from_bytes(&[1u8; 32]));
/// assert_eq!(prf.eval(b"w"), prf.eval(b"w"));
/// assert_ne!(prf.eval(b"w"), prf.eval(b"x"));
/// ```
#[derive(Clone)]
pub struct HmacPrf {
    // The ipad/opad midstates are precomputed once here, so each eval
    // skips HMAC key preparation (an [`HmacCtx`] amortization; the
    // heaviest users — the ORE bit-position PRFs — call eval dozens of
    // times per encryption under one key).
    ctx: HmacCtx,
}

impl HmacPrf {
    /// Creates the PRF from a key.
    pub fn new(key: SymmetricKey) -> Self {
        HmacPrf { ctx: HmacCtx::new(key.as_bytes()) }
    }
}

impl Prf for HmacPrf {
    fn eval(&self, input: &[u8]) -> [u8; 32] {
        self.ctx.mac(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prf() -> HmacPrf {
        HmacPrf::new(SymmetricKey::from_bytes(&[7u8; 32]))
    }

    #[test]
    fn deterministic_and_key_separated() {
        let a = HmacPrf::new(SymmetricKey::from_bytes(&[1u8; 32]));
        let b = HmacPrf::new(SymmetricKey::from_bytes(&[2u8; 32]));
        assert_eq!(a.eval(b"in"), a.eval(b"in"));
        assert_ne!(a.eval(b"in"), b.eval(b"in"));
    }

    #[test]
    fn eval_parts_is_injective_on_boundaries() {
        // ("ab","c") and ("a","bc") must map to different outputs.
        let p = prf();
        assert_ne!(p.eval_parts(&[b"ab", b"c"]), p.eval_parts(&[b"a", b"bc"]));
        assert_ne!(p.eval_parts(&[b"ab"]), p.eval(b"ab"));
    }

    #[test]
    fn eval_len_expands() {
        let p = prf();
        let out = p.eval_len(b"seed", 100);
        assert_eq!(out.len(), 100);
        // Prefix property: first 32 bytes equal the counter-0 block.
        let out2 = p.eval_len(b"seed", 32);
        assert_eq!(&out[..32], &out2[..]);
        assert_eq!(p.eval_len(b"seed", 0), Vec::<u8>::new());
    }
}
