//! Property tests for the AEAD and cipher layer.

use datablinder_primitives::aes::Aes;
use datablinder_primitives::ctr::{counter_block, ctr_xor};
use datablinder_primitives::gcm::AesGcm;
use datablinder_primitives::keys::SymmetricKey;
use proptest::prelude::*;

proptest! {
    #[test]
    fn gcm_roundtrip(key in prop::collection::vec(any::<u8>(), 16..=16),
                     nonce in prop::collection::vec(any::<u8>(), 12..=12),
                     aad in prop::collection::vec(any::<u8>(), 0..32),
                     pt in prop::collection::vec(any::<u8>(), 0..256)) {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&key)).unwrap();
        let nonce: [u8; 12] = nonce.try_into().unwrap();
        let sealed = cipher.seal(&nonce, &aad, &pt);
        prop_assert_eq!(cipher.open(&nonce, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn gcm_any_single_bitflip_detected(pt in prop::collection::vec(any::<u8>(), 1..64),
                                       flip_bit in 0usize..64) {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[7u8; 16])).unwrap();
        let nonce = [3u8; 12];
        let mut sealed = cipher.seal(&nonce, b"aad", &pt);
        let bit = flip_bit % (sealed.len() * 8);
        sealed[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(cipher.open(&nonce, b"aad", &sealed).is_err());
    }

    #[test]
    fn gcm_open_never_panics_on_garbage(garbage in prop::collection::vec(any::<u8>(), 0..128)) {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[7u8; 32])).unwrap();
        let _ = cipher.open(&[0u8; 12], b"", &garbage);
    }

    #[test]
    fn aes_block_roundtrip(key in prop::collection::vec(any::<u8>(), 32..=32),
                           block in prop::collection::vec(any::<u8>(), 16..=16)) {
        let aes = Aes::new(&key).unwrap();
        let mut b: [u8; 16] = block.clone().try_into().unwrap();
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b.to_vec(), block);
    }

    #[test]
    fn ctr_is_an_involution(data in prop::collection::vec(any::<u8>(), 0..200),
                            count in any::<u32>()) {
        let aes = Aes::new(&[5u8; 16]).unwrap();
        let iv = counter_block(&[9u8; 12], count);
        let mut buf = data.clone();
        ctr_xor(&aes, &iv, &mut buf);
        ctr_xor(&aes, &iv, &mut buf);
        prop_assert_eq!(buf, data);
    }
}
