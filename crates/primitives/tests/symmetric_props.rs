//! Differential property tests for the batched/table-driven symmetric
//! fast paths against their straight-line oracles.
//!
//! Every optimization in the symmetric layer keeps its predecessor as a
//! reference implementation: `gf_mul` for table GHASH,
//! `Aes::encrypt_block_ref` for the T-table rounds, `ctr_xor_scalar` for
//! the multi-block keystream, and `AesGcm::seal_scalar` for the whole
//! seal pipeline. These proptests pin the pairs byte-for-byte.

use datablinder_primitives::aes::Aes;
use datablinder_primitives::ctr::{counter_block, ctr_xor, ctr_xor_scalar};
use datablinder_primitives::gcm::AesGcm;
use datablinder_primitives::hmac::{hmac_sha256, HmacCtx};
use datablinder_primitives::keys::SymmetricKey;
use proptest::prelude::*;

fn any_key() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 16..=16),
        prop::collection::vec(any::<u8>(), 24..=24),
        prop::collection::vec(any::<u8>(), 32..=32),
    ]
}

proptest! {
    #[test]
    fn ttable_aes_matches_bytewise_oracle(key in any_key(),
                                          block in prop::collection::vec(any::<u8>(), 16..=16)) {
        let aes = Aes::new(&key).unwrap();
        let mut fast: [u8; 16] = block.clone().try_into().unwrap();
        let mut slow = fast;
        aes.encrypt_block(&mut fast);
        aes.encrypt_block_ref(&mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn batched_ctr_matches_scalar_oracle(key in any_key(),
                                         nonce in prop::collection::vec(any::<u8>(), 12..=12),
                                         count in any::<u32>(),
                                         data in prop::collection::vec(any::<u8>(), 0..600)) {
        let aes = Aes::new(&key).unwrap();
        let iv = counter_block(&nonce.try_into().unwrap(), count);
        let mut fast = data.clone();
        let mut slow = data;
        ctr_xor(&aes, &iv, &mut fast);
        ctr_xor_scalar(&aes, &iv, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn table_ghash_matches_gf_mul_oracle(key in any_key(),
                                         aad in prop::collection::vec(any::<u8>(), 0..64),
                                         ct in prop::collection::vec(any::<u8>(), 0..300)) {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&key)).unwrap();
        prop_assert_eq!(cipher.ghash(&aad, &ct), cipher.ghash_ref(&aad, &ct));
    }

    #[test]
    fn seal_matches_scalar_seal_oracle(key in any_key(),
                                       nonce in prop::collection::vec(any::<u8>(), 12..=12),
                                       aad in prop::collection::vec(any::<u8>(), 0..32),
                                       pt in prop::collection::vec(any::<u8>(), 0..300)) {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&key)).unwrap();
        let nonce: [u8; 12] = nonce.try_into().unwrap();
        let fast = cipher.seal(&nonce, &aad, &pt);
        let slow = cipher.seal_scalar(&nonce, &aad, &pt);
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(cipher.open(&nonce, &aad, &fast).unwrap(), pt);
    }

    #[test]
    fn seal_many_matches_per_field_seal(key in any_key(),
                                        items in prop::collection::vec(
                                            (prop::collection::vec(any::<u8>(), 12..=12),
                                             prop::collection::vec(any::<u8>(), 0..120)),
                                            0..8)) {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&key)).unwrap();
        let nonces: Vec<[u8; 12]> = items.iter().map(|(n, _)| n.clone().try_into().unwrap()).collect();
        let refs: Vec<(&[u8; 12], &[u8])> =
            nonces.iter().zip(&items).map(|(n, (_, p))| (n, p.as_slice())).collect();
        let batch = cipher.seal_many(b"aad", &refs);
        prop_assert_eq!(batch.len(), items.len());
        for ((nonce, (_, pt)), sealed) in nonces.iter().zip(&items).zip(&batch) {
            prop_assert_eq!(sealed, &cipher.seal(nonce, b"aad", pt));
        }
        let sealed_refs: Vec<(&[u8; 12], &[u8])> =
            nonces.iter().zip(&batch).map(|(n, s)| (n, s.as_slice())).collect();
        let opened = cipher.open_many(b"aad", &sealed_refs).unwrap();
        prop_assert_eq!(opened, items.into_iter().map(|(_, p)| p).collect::<Vec<_>>());
    }

    #[test]
    fn seal_into_appends_without_disturbing_prefix(prefix in prop::collection::vec(any::<u8>(), 0..32),
                                                   pt in prop::collection::vec(any::<u8>(), 0..120)) {
        let cipher = AesGcm::new(&SymmetricKey::from_bytes(&[9u8; 16])).unwrap();
        let nonce = [4u8; 12];
        let mut out = prefix.clone();
        cipher.seal_into(&nonce, b"a", &pt, &mut out);
        prop_assert_eq!(&out[..prefix.len()], &prefix[..]);
        prop_assert_eq!(&out[prefix.len()..], &cipher.seal(&nonce, b"a", &pt)[..]);
    }

    #[test]
    fn hmac_ctx_matches_oneshot(key in prop::collection::vec(any::<u8>(), 0..100),
                                msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..6)) {
        let ctx = HmacCtx::new(&key);
        for msg in &msgs {
            prop_assert_eq!(ctx.mac(msg), hmac_sha256(&key, msg));
        }
    }
}
