//! BIEX — boolean SSE with worst-case sub-linear complexity (Kamara &
//! Moataz, EUROCRYPT 2017), in the two variants Table 2 integrates:
//!
//! * **BIEX-2Lev** (read-efficient): besides the global 2Lev index, setup
//!   precomputes *pair* entries — for co-occurring keywords `(w, w')` an
//!   encrypted posting list of `ids(w) ∩ ids(w')`. A conjunction
//!   `w1 ∧ … ∧ wk` streams the `(w1, wi)` pair entries and the client
//!   intersects them: bytes per query are proportional to result sizes.
//! * **BIEX-ZMF** (space-efficient): instead of materializing pairwise
//!   intersections, each keyword gets a *matryoshka* (Bloom) filter of
//!   PRF-tagged ids. A conjunction fetches `ids(w1)` plus the filters of
//!   `w2..wk` and the client tests membership — storage is one filter per
//!   keyword, at the cost of shipping filters and a tunable false-positive
//!   rate.
//!
//! Queries are in disjunctive normal form ([`BiexQuery`]); disjunction is
//! the union of its conjunctions' results. Protection class 3, leakage
//! *Predicates* (the structure of the boolean query is visible).

use std::sync::Arc;

use datablinder_kvstore::KvStore;
use datablinder_obs::Recorder;
use datablinder_primitives::cache::{CacheStats, CipherCache};
use datablinder_primitives::gcm::AesGcm;
use datablinder_primitives::keys::SymmetricKey;
use datablinder_primitives::prf::{HmacPrf, Prf};
use rand::Rng;

use crate::bloom::BloomFilter;
use crate::encoding::{Reader, Writer};
use crate::inverted::InvertedIndex;
use crate::twolev::{TwoLevClient, TwoLevServer, TwoLevToken};
use crate::{DocId, SseError};

/// A boolean query in disjunctive normal form: `OR of (AND of keywords)`.
///
/// # Examples
///
/// ```
/// use datablinder_sse::biex::BiexQuery;
///
/// // (cancer AND 2012) OR (flu)
/// let q = BiexQuery::dnf(vec![
///     vec![b"cancer".to_vec(), b"2012".to_vec()],
///     vec![b"flu".to_vec()],
/// ]);
/// assert_eq!(q.conjunctions().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiexQuery {
    dnf: Vec<Vec<Vec<u8>>>,
}

impl BiexQuery {
    /// Builds a query from DNF clauses; empty conjunctions are dropped.
    pub fn dnf(clauses: Vec<Vec<Vec<u8>>>) -> Self {
        BiexQuery { dnf: clauses.into_iter().filter(|c| !c.is_empty()).collect() }
    }

    /// A single-keyword query.
    pub fn keyword(w: &[u8]) -> Self {
        BiexQuery { dnf: vec![vec![w.to_vec()]] }
    }

    /// A single conjunction.
    pub fn conjunction(ws: Vec<Vec<u8>>) -> Self {
        BiexQuery::dnf(vec![ws])
    }

    /// The DNF clauses.
    pub fn conjunctions(&self) -> &[Vec<Vec<u8>>] {
        &self.dnf
    }
}

// ===================================================================
// BIEX-2Lev
// ===================================================================

/// Search token for one conjunction under BIEX-2Lev.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Biex2LevConjToken {
    /// Single keyword: fall through to the global index.
    Global(TwoLevToken),
    /// Multi keyword: pair-entry labels `(w1, wi)` for `i >= 2`.
    Pairs(Vec<[u8; 32]>),
}

/// Full token: one entry per conjunction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Biex2LevToken {
    /// Per-conjunction tokens, in query order.
    pub conjunctions: Vec<Biex2LevConjToken>,
}

impl Biex2LevToken {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.conjunctions.len() as u32);
        for c in &self.conjunctions {
            match c {
                Biex2LevConjToken::Global(t) => {
                    w.u8(0).bytes(&t.encode());
                }
                Biex2LevConjToken::Pairs(labels) => {
                    w.u8(1).list(&labels.iter().map(|l| l.to_vec()).collect::<Vec<_>>());
                }
            }
        }
        w.finish()
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on framing errors.
    pub fn decode(buf: &[u8]) -> Result<Self, SseError> {
        let mut r = Reader::new(buf);
        let n = r.count()?;
        let mut conjunctions = Vec::with_capacity(n);
        for _ in 0..n {
            match r.u8()? {
                0 => conjunctions.push(Biex2LevConjToken::Global(TwoLevToken::decode(&r.bytes()?)?)),
                1 => {
                    let labels = r
                        .list()?
                        .into_iter()
                        .map(|l| l.try_into().map_err(|_| SseError::Malformed("pair label")))
                        .collect::<Result<Vec<[u8; 32]>, _>>()?;
                    conjunctions.push(Biex2LevConjToken::Pairs(labels));
                }
                _ => return Err(SseError::Malformed("biex token kind")),
            }
        }
        r.finish()?;
        Ok(Biex2LevToken { conjunctions })
    }
}

/// Server response: per conjunction, the fetched encrypted blobs.
pub type Biex2LevResponse = Vec<Vec<Vec<u8>>>;

/// Serializes a [`Biex2LevResponse`] for the channel.
pub fn encode_2lev_response(response: &Biex2LevResponse) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(response.len() as u32);
    for conj in response {
        w.list(conj);
    }
    w.finish()
}

/// Deserializes a [`Biex2LevResponse`].
///
/// # Errors
///
/// [`SseError::Malformed`] on framing errors.
pub fn decode_2lev_response(buf: &[u8]) -> Result<Biex2LevResponse, SseError> {
    let mut r = Reader::new(buf);
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.list()?);
    }
    r.finish()?;
    Ok(out)
}

/// Cached per-pair ciphers kept per client (pairs grow quadratically in
/// co-occurring keywords, so the bound is larger than the 2Lev one).
const PAIR_CIPHER_CACHE: usize = 1024;

/// The gateway-side half of BIEX-2Lev.
pub struct Biex2LevClient {
    global: TwoLevClient,
    prf: HmacPrf,
    master: SymmetricKey,
    ciphers: CipherCache<AesGcm>,
}

impl Biex2LevClient {
    /// Creates a client.
    pub fn new(key: &SymmetricKey) -> Self {
        Biex2LevClient {
            global: TwoLevClient::new(&key.derive(b"biex/global", 32)),
            prf: HmacPrf::new(key.derive(b"biex/pairs", 32)),
            master: key.derive(b"biex/enc", 32),
            ciphers: CipherCache::new(PAIR_CIPHER_CACHE),
        }
    }

    /// Attaches an observability recorder to the pair- and bucket-cipher
    /// caches (`primitives.cipher_cache.*`).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.ciphers.set_recorder(recorder.clone());
        self.global.set_recorder(recorder);
    }

    /// Counters of the pair-cipher cache.
    pub fn cipher_cache_stats(&self) -> CacheStats {
        self.ciphers.stats()
    }

    fn pair_label(&self, w1: &[u8], w2: &[u8]) -> [u8; 32] {
        self.prf.eval_parts(&[b"pair-label", w1, w2])
    }

    /// Per-pair entry cipher, derived once per `(w1, w2)` and then served
    /// from the bounded cache.
    fn pair_cipher(&self, w1: &[u8], w2: &[u8]) -> Result<Arc<AesGcm>, SseError> {
        let mut label = b"pair-enc/".to_vec();
        label.extend_from_slice(&(w1.len() as u64).to_be_bytes());
        label.extend_from_slice(w1);
        label.extend_from_slice(w2);
        self.ciphers.get_or_try_build(&label, || Ok(AesGcm::new(&self.master.derive(&label, 32))?))
    }

    /// Builds global + pair structures and installs them on the server.
    ///
    /// # Errors
    ///
    /// Propagates crypto and storage failures.
    pub fn setup<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        index: &InvertedIndex,
        server: &Biex2LevServer,
    ) -> Result<(), SseError> {
        self.global.setup(rng, index, &server.global)?;
        // Pair entries for all ordered co-occurring keyword pairs.
        let keywords: Vec<&Vec<u8>> = index.keywords().collect();
        for w1 in &keywords {
            for w2 in &keywords {
                if w1 == w2 {
                    continue;
                }
                let inter = index.intersection(w1, w2);
                if inter.is_empty() {
                    continue;
                }
                let label = self.pair_label(w1, w2);
                let cipher = self.pair_cipher(w1, w2)?;
                let mut plain = Vec::with_capacity(inter.len() * 16);
                for id in &inter {
                    plain.extend_from_slice(&id.0);
                }
                let sealed = cipher.seal(&[0u8; 12], b"biex-pair", &plain);
                server.put_pair(&label, &sealed);
            }
        }
        Ok(())
    }

    /// Builds the token for a DNF query.
    pub fn search_token(&self, query: &BiexQuery) -> Biex2LevToken {
        let conjunctions = query
            .conjunctions()
            .iter()
            .map(|conj| {
                if conj.len() == 1 {
                    Biex2LevConjToken::Global(self.global.search_token(&conj[0]))
                } else {
                    let w1 = &conj[0];
                    Biex2LevConjToken::Pairs(conj[1..].iter().map(|wi| self.pair_label(w1, wi)).collect())
                }
            })
            .collect();
        Biex2LevToken { conjunctions }
    }

    /// Resolves the server's response into the matching document ids.
    ///
    /// # Errors
    ///
    /// Crypto failures on tampered blobs, malformed responses.
    pub fn resolve(&self, query: &BiexQuery, response: &Biex2LevResponse) -> Result<Vec<DocId>, SseError> {
        if response.len() != query.conjunctions().len() {
            return Err(SseError::Malformed("biex response arity"));
        }
        let mut union: Vec<DocId> = Vec::new();
        for (conj, blobs) in query.conjunctions().iter().zip(response.iter()) {
            let ids = if conj.len() == 1 {
                self.global.resolve(&conj[0], blobs)?
            } else {
                let w1 = &conj[0];
                let mut acc: Option<Vec<DocId>> = None;
                if blobs.len() != conj.len() - 1 {
                    return Err(SseError::Malformed("biex pair response arity"));
                }
                for (wi, blob) in conj[1..].iter().zip(blobs.iter()) {
                    let ids = if blob.is_empty() {
                        Vec::new() // absent pair entry: empty intersection
                    } else {
                        let cipher = self.pair_cipher(w1, wi)?;
                        let plain = cipher.open(&[0u8; 12], b"biex-pair", blob)?;
                        if plain.len() % 16 != 0 {
                            return Err(SseError::Malformed("biex pair entry"));
                        }
                        plain
                            .chunks(16)
                            .map(|c| {
                                let mut id = [0u8; 16];
                                id.copy_from_slice(c);
                                DocId(id)
                            })
                            .collect()
                    };
                    acc = Some(match acc {
                        None => ids,
                        Some(prev) => prev.into_iter().filter(|x| ids.contains(x)).collect(),
                    });
                }
                acc.unwrap_or_default()
            };
            union.extend(ids);
        }
        union.sort();
        union.dedup();
        Ok(union)
    }
}

/// The cloud-side half of BIEX-2Lev.
pub struct Biex2LevServer {
    global: TwoLevServer,
    kv: KvStore,
    prefix: Vec<u8>,
}

impl Biex2LevServer {
    /// Creates a server storing under `prefix`.
    pub fn new(kv: KvStore, prefix: &[u8]) -> Self {
        let mut gp = prefix.to_vec();
        gp.extend_from_slice(b"g:");
        Biex2LevServer { global: TwoLevServer::new(kv.clone(), &gp), kv, prefix: prefix.to_vec() }
    }

    fn pair_key(&self, label: &[u8; 32]) -> Vec<u8> {
        let mut k = self.prefix.clone();
        k.extend_from_slice(b"pair:");
        k.extend_from_slice(label);
        k
    }

    fn put_pair(&self, label: &[u8; 32], sealed: &[u8]) {
        self.kv.set(&self.pair_key(label), sealed);
    }

    /// Executes a token: per conjunction, global buckets or pair blobs
    /// (absent pairs yield empty blobs, meaning empty intersection).
    ///
    /// # Errors
    ///
    /// Propagates global-index failures.
    pub fn search(&self, token: &Biex2LevToken) -> Result<Biex2LevResponse, SseError> {
        token
            .conjunctions
            .iter()
            .map(|c| match c {
                Biex2LevConjToken::Global(t) => self.global.search(t),
                Biex2LevConjToken::Pairs(labels) => {
                    Ok(labels.iter().map(|l| self.kv.get(&self.pair_key(l)).unwrap_or_default()).collect())
                }
            })
            .collect()
    }

    /// Number of stored pair entries (the read-efficiency storage cost).
    pub fn pair_count(&self) -> usize {
        let mut k = self.prefix.clone();
        k.extend_from_slice(b"pair:");
        self.kv.keys_with_prefix(&k).len()
    }
}

// ===================================================================
// BIEX-ZMF
// ===================================================================

/// Search token for BIEX-ZMF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiexZmfToken {
    /// Per conjunction: the global token for the s-term plus the filter
    /// labels of the remaining keywords.
    pub conjunctions: Vec<(TwoLevToken, Vec<[u8; 32]>)>,
}

impl BiexZmfToken {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.conjunctions.len() as u32);
        for (t, labels) in &self.conjunctions {
            w.bytes(&t.encode());
            w.list(&labels.iter().map(|l| l.to_vec()).collect::<Vec<_>>());
        }
        w.finish()
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on framing errors.
    pub fn decode(buf: &[u8]) -> Result<Self, SseError> {
        let mut r = Reader::new(buf);
        let n = r.count()?;
        let mut conjunctions = Vec::with_capacity(n);
        for _ in 0..n {
            let t = TwoLevToken::decode(&r.bytes()?)?;
            let labels = r
                .list()?
                .into_iter()
                .map(|l| l.try_into().map_err(|_| SseError::Malformed("zmf label")))
                .collect::<Result<Vec<[u8; 32]>, _>>()?;
            conjunctions.push((t, labels));
        }
        r.finish()?;
        Ok(BiexZmfToken { conjunctions })
    }
}

/// Server response: per conjunction, the s-term buckets and the filters.
pub type BiexZmfResponse = Vec<(Vec<Vec<u8>>, Vec<Vec<u8>>)>;

/// Serializes a [`BiexZmfResponse`] for the channel.
pub fn encode_zmf_response(response: &BiexZmfResponse) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(response.len() as u32);
    for (buckets, filters) in response {
        w.list(buckets);
        w.list(filters);
    }
    w.finish()
}

/// Deserializes a [`BiexZmfResponse`].
///
/// # Errors
///
/// [`SseError::Malformed`] on framing errors.
pub fn decode_zmf_response(buf: &[u8]) -> Result<BiexZmfResponse, SseError> {
    let mut r = Reader::new(buf);
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let buckets = r.list()?;
        let filters = r.list()?;
        out.push((buckets, filters));
    }
    r.finish()?;
    Ok(out)
}

/// False-positive rate the matryoshka filters are sized for.
pub const ZMF_FP_RATE: f64 = 0.001;

/// The gateway-side half of BIEX-ZMF.
pub struct BiexZmfClient {
    global: TwoLevClient,
    prf: HmacPrf,
}

impl BiexZmfClient {
    /// Creates a client.
    pub fn new(key: &SymmetricKey) -> Self {
        BiexZmfClient {
            global: TwoLevClient::new(&key.derive(b"zmf/global", 32)),
            prf: HmacPrf::new(key.derive(b"zmf/prf", 32)),
        }
    }

    /// Attaches an observability recorder to the global bucket-cipher
    /// cache (`primitives.cipher_cache.*`).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.global.set_recorder(recorder);
    }

    fn filter_label(&self, w: &[u8]) -> [u8; 32] {
        self.prf.eval_parts(&[b"filter-label", w])
    }

    fn tag(&self, w: &[u8], id: DocId) -> [u8; 32] {
        self.prf.eval_parts(&[b"tag", w, &id.0])
    }

    /// Builds the global index plus one matryoshka filter per keyword.
    ///
    /// # Errors
    ///
    /// Propagates crypto and storage failures.
    pub fn setup<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        index: &InvertedIndex,
        server: &BiexZmfServer,
    ) -> Result<(), SseError> {
        self.global.setup(rng, index, &server.global)?;
        for (w, postings) in index.iter() {
            let mut filter = BloomFilter::with_capacity(postings.len().max(1), ZMF_FP_RATE);
            for id in postings {
                filter.insert(&self.tag(w, *id));
            }
            server.put_filter(&self.filter_label(w), &filter.encode());
        }
        Ok(())
    }

    /// Builds the token for a DNF query.
    pub fn search_token(&self, query: &BiexQuery) -> BiexZmfToken {
        let conjunctions = query
            .conjunctions()
            .iter()
            .map(|conj| {
                let t = self.global.search_token(&conj[0]);
                let labels = conj[1..].iter().map(|w| self.filter_label(w)).collect();
                (t, labels)
            })
            .collect();
        BiexZmfToken { conjunctions }
    }

    /// Resolves the response: decrypt s-term postings, keep ids passing
    /// every filter. May contain Bloom false positives (rate
    /// [`ZMF_FP_RATE`]), which DataBlinder filters at document retrieval.
    ///
    /// # Errors
    ///
    /// Crypto/malformed failures on tampered blobs or filters.
    pub fn resolve(&self, query: &BiexQuery, response: &BiexZmfResponse) -> Result<Vec<DocId>, SseError> {
        if response.len() != query.conjunctions().len() {
            return Err(SseError::Malformed("zmf response arity"));
        }
        let mut union: Vec<DocId> = Vec::new();
        for (conj, (buckets, filter_blobs)) in query.conjunctions().iter().zip(response.iter()) {
            let candidates = self.global.resolve(&conj[0], buckets)?;
            if filter_blobs.len() != conj.len() - 1 {
                return Err(SseError::Malformed("zmf filter arity"));
            }
            let filters = filter_blobs
                .iter()
                .zip(conj[1..].iter())
                .map(|(blob, _)| {
                    if blob.is_empty() {
                        Ok(None) // unknown keyword: empty filter matches nothing
                    } else {
                        BloomFilter::decode(blob).map(Some)
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            'candidate: for id in candidates {
                for (filter, w) in filters.iter().zip(conj[1..].iter()) {
                    match filter {
                        None => continue 'candidate,
                        Some(f) => {
                            if !f.contains(&self.tag(w, id)) {
                                continue 'candidate;
                            }
                        }
                    }
                }
                union.push(id);
            }
        }
        union.sort();
        union.dedup();
        Ok(union)
    }
}

/// The cloud-side half of BIEX-ZMF.
pub struct BiexZmfServer {
    global: TwoLevServer,
    kv: KvStore,
    prefix: Vec<u8>,
}

impl BiexZmfServer {
    /// Creates a server storing under `prefix`.
    pub fn new(kv: KvStore, prefix: &[u8]) -> Self {
        let mut gp = prefix.to_vec();
        gp.extend_from_slice(b"g:");
        BiexZmfServer { global: TwoLevServer::new(kv.clone(), &gp), kv, prefix: prefix.to_vec() }
    }

    fn filter_key(&self, label: &[u8; 32]) -> Vec<u8> {
        let mut k = self.prefix.clone();
        k.extend_from_slice(b"zmf:");
        k.extend_from_slice(label);
        k
    }

    fn put_filter(&self, label: &[u8; 32], encoded: &[u8]) {
        self.kv.set(&self.filter_key(label), encoded);
    }

    /// Executes a token: global buckets plus the requested filter blobs
    /// (absent filters yield empty blobs).
    ///
    /// # Errors
    ///
    /// Propagates global-index failures.
    pub fn search(&self, token: &BiexZmfToken) -> Result<BiexZmfResponse, SseError> {
        token
            .conjunctions
            .iter()
            .map(|(t, labels)| {
                let buckets = self.global.search(t)?;
                let filters = labels.iter().map(|l| self.kv.get(&self.filter_key(l)).unwrap_or_default()).collect();
                Ok((buckets, filters))
            })
            .collect()
    }

    /// Number of stored filters (the space-efficiency storage cost).
    pub fn filter_count(&self) -> usize {
        let mut k = self.prefix.clone();
        k.extend_from_slice(b"zmf:");
        self.kv.keys_with_prefix(&k).len()
    }

    /// Total bytes of stored filters.
    pub fn filter_bytes(&self) -> usize {
        let mut k = self.prefix.clone();
        k.extend_from_slice(b"zmf:");
        self.kv.keys_with_prefix(&k).iter().map(|key| self.kv.get(key).map_or(0, |v| v.len())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn id(n: u16) -> DocId {
        let mut b = [0u8; 16];
        b[..2].copy_from_slice(&n.to_be_bytes());
        DocId(b)
    }

    /// docs: 0..10 have "red", 5..15 have "blue", evens have "even".
    fn index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        for n in 0..10 {
            idx.add(b"red", id(n));
        }
        for n in 5..15 {
            idx.add(b"blue", id(n));
        }
        for n in (0..15).step_by(2) {
            idx.add(b"even", id(n));
        }
        idx
    }

    fn oracle_conj(idx: &InvertedIndex, conj: &[&[u8]]) -> Vec<DocId> {
        let mut acc = idx.postings(conj[0]);
        for w in &conj[1..] {
            let p = idx.postings(w);
            acc.retain(|x| p.contains(x));
        }
        acc
    }

    #[test]
    fn biex_2lev_single_keyword() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let idx = index();
        let client = Biex2LevClient::new(&SymmetricKey::from_bytes(&[1u8; 32]));
        let server = Biex2LevServer::new(KvStore::new(), b"biex:");
        client.setup(&mut rng, &idx, &server).unwrap();

        let q = BiexQuery::keyword(b"red");
        let resp = server.search(&client.search_token(&q)).unwrap();
        assert_eq!(client.resolve(&q, &resp).unwrap(), idx.postings(b"red"));
    }

    #[test]
    fn biex_2lev_conjunctions_and_dnf() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let idx = index();
        let client = Biex2LevClient::new(&SymmetricKey::from_bytes(&[1u8; 32]));
        let server = Biex2LevServer::new(KvStore::new(), b"biex:");
        client.setup(&mut rng, &idx, &server).unwrap();

        // red AND blue = 5..10
        let q = BiexQuery::conjunction(vec![b"red".to_vec(), b"blue".to_vec()]);
        let resp = server.search(&client.search_token(&q)).unwrap();
        assert_eq!(client.resolve(&q, &resp).unwrap(), oracle_conj(&idx, &[b"red", b"blue"]));

        // red AND blue AND even = {6, 8}
        let q = BiexQuery::conjunction(vec![b"red".to_vec(), b"blue".to_vec(), b"even".to_vec()]);
        let resp = server.search(&client.search_token(&q)).unwrap();
        assert_eq!(client.resolve(&q, &resp).unwrap(), oracle_conj(&idx, &[b"red", b"blue", b"even"]));

        // (red AND blue) OR (even) — union.
        let q = BiexQuery::dnf(vec![vec![b"red".to_vec(), b"blue".to_vec()], vec![b"even".to_vec()]]);
        let resp = server.search(&client.search_token(&q)).unwrap();
        let mut expect = oracle_conj(&idx, &[b"red", b"blue"]);
        expect.extend(idx.postings(b"even"));
        expect.sort();
        expect.dedup();
        assert_eq!(client.resolve(&q, &resp).unwrap(), expect);
    }

    #[test]
    fn biex_2lev_empty_intersection() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let mut idx = InvertedIndex::new();
        idx.add(b"a", id(1));
        idx.add(b"b", id(2));
        let client = Biex2LevClient::new(&SymmetricKey::from_bytes(&[1u8; 32]));
        let server = Biex2LevServer::new(KvStore::new(), b"biex:");
        client.setup(&mut rng, &idx, &server).unwrap();
        let q = BiexQuery::conjunction(vec![b"a".to_vec(), b"b".to_vec()]);
        let resp = server.search(&client.search_token(&q)).unwrap();
        assert_eq!(client.resolve(&q, &resp).unwrap(), vec![]);
        assert_eq!(server.pair_count(), 0, "no co-occurrence, no pair entries");
    }

    #[test]
    fn biex_zmf_matches_oracle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(34);
        let idx = index();
        let client = BiexZmfClient::new(&SymmetricKey::from_bytes(&[2u8; 32]));
        let server = BiexZmfServer::new(KvStore::new(), b"zmf:");
        client.setup(&mut rng, &idx, &server).unwrap();

        for conj in [
            vec![b"red".as_slice()],
            vec![b"red".as_slice(), b"blue".as_slice()],
            vec![b"red".as_slice(), b"blue".as_slice(), b"even".as_slice()],
        ] {
            let q = BiexQuery::conjunction(conj.iter().map(|w| w.to_vec()).collect());
            let resp = server.search(&client.search_token(&q)).unwrap();
            let got = client.resolve(&q, &resp).unwrap();
            let exact = oracle_conj(&idx, &conj);
            // Bloom filters admit false positives but never negatives.
            for e in &exact {
                assert!(got.contains(e), "false negative for {conj:?}");
            }
            assert!(got.len() <= exact.len() + 2, "fp explosion for {conj:?}");
        }
        assert_eq!(server.filter_count(), 3);
    }

    #[test]
    fn zmf_unknown_second_keyword_empty() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(35);
        let idx = index();
        let client = BiexZmfClient::new(&SymmetricKey::from_bytes(&[2u8; 32]));
        let server = BiexZmfServer::new(KvStore::new(), b"zmf:");
        client.setup(&mut rng, &idx, &server).unwrap();
        let q = BiexQuery::conjunction(vec![b"red".to_vec(), b"nope".to_vec()]);
        let resp = server.search(&client.search_token(&q)).unwrap();
        assert_eq!(client.resolve(&q, &resp).unwrap(), vec![]);
    }

    #[test]
    fn space_vs_read_tradeoff_is_visible() {
        // BIEX-2Lev materializes pair entries; ZMF stores one filter per
        // keyword. On a co-occurrence-heavy index the pair count exceeds
        // the filter count — the paper's "storage impl. complexity" vs
        // space efficiency contrast.
        let mut rng = rand::rngs::StdRng::seed_from_u64(36);
        let idx = index();
        let c1 = Biex2LevClient::new(&SymmetricKey::from_bytes(&[1u8; 32]));
        let s1 = Biex2LevServer::new(KvStore::new(), b"biex:");
        c1.setup(&mut rng, &idx, &s1).unwrap();
        let c2 = BiexZmfClient::new(&SymmetricKey::from_bytes(&[2u8; 32]));
        let s2 = BiexZmfServer::new(KvStore::new(), b"zmf:");
        c2.setup(&mut rng, &idx, &s2).unwrap();
        assert!(s1.pair_count() > s2.filter_count());
    }

    #[test]
    fn one_key_schedule_per_pair_label() {
        // Regression for the per-op rebuild: repeated conjunction searches
        // reuse the pair ciphers built at setup instead of re-deriving.
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let idx = index();
        let client = Biex2LevClient::new(&SymmetricKey::from_bytes(&[1u8; 32]));
        let server = Biex2LevServer::new(KvStore::new(), b"biex:");
        client.setup(&mut rng, &idx, &server).unwrap();
        let after_setup = client.cipher_cache_stats();
        assert_eq!(after_setup.misses as usize, server.pair_count(), "one cipher per stored pair");
        let q = BiexQuery::conjunction(vec![b"red".to_vec(), b"blue".to_vec()]);
        for _ in 0..5 {
            let resp = server.search(&client.search_token(&q)).unwrap();
            client.resolve(&q, &resp).unwrap();
        }
        let s = client.cipher_cache_stats();
        assert_eq!(s.misses, after_setup.misses, "searches never rebuild a pair schedule");
        assert_eq!(s.hits, after_setup.hits + 5);
    }

    #[test]
    fn tokens_encode_roundtrip() {
        let client = Biex2LevClient::new(&SymmetricKey::from_bytes(&[1u8; 32]));
        let q = BiexQuery::dnf(vec![vec![b"a".to_vec()], vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]]);
        let t = client.search_token(&q);
        assert_eq!(Biex2LevToken::decode(&t.encode()).unwrap(), t);

        let zc = BiexZmfClient::new(&SymmetricKey::from_bytes(&[2u8; 32]));
        let zt = zc.search_token(&q);
        assert_eq!(BiexZmfToken::decode(&zt.encode()).unwrap(), zt);
        assert!(Biex2LevToken::decode(b"junk").is_err());
        assert!(BiexZmfToken::decode(b"junk").is_err());
    }
}
