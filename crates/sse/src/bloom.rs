//! Bloom filters — the substrate for the BIEX-ZMF ("matryoshka filter")
//! boolean tactic.

use crate::encoding::{Reader, Writer};
use crate::SseError;

/// A fixed-size Bloom filter with double hashing over two 64-bit seeds.
///
/// # Examples
///
/// ```
/// use datablinder_sse::bloom::BloomFilter;
///
/// let mut f = BloomFilter::with_capacity(100, 0.01);
/// f.insert(b"item");
/// assert!(f.contains(b"item"));
/// assert!(!f.contains(b"other"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    nbits: usize,
    nhashes: u32,
}

impl BloomFilter {
    /// Sizes the filter for `capacity` items at the given false-positive
    /// rate.
    ///
    /// # Panics
    ///
    /// Panics if `fp_rate` is not in `(0, 1)` or `capacity` is zero.
    pub fn with_capacity(capacity: usize, fp_rate: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(fp_rate > 0.0 && fp_rate < 1.0, "fp_rate must be in (0,1)");
        let nbits = (-(capacity as f64) * fp_rate.ln() / (2f64.ln().powi(2))).ceil() as usize;
        let nbits = nbits.max(64);
        let nhashes = ((nbits as f64 / capacity as f64) * 2f64.ln()).round().max(1.0) as u32;
        BloomFilter { bits: vec![0; nbits.div_ceil(64)], nbits, nhashes }
    }

    /// Number of bits in the filter.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Number of hash functions.
    pub fn nhashes(&self) -> u32 {
        self.nhashes
    }

    fn hash_pair(item: &[u8]) -> (u64, u64) {
        let d = datablinder_primitives::sha256::digest(item);
        (u64::from_be_bytes(d[..8].try_into().unwrap()), u64::from_be_bytes(d[8..16].try_into().unwrap()))
    }

    fn positions(&self, item: &[u8]) -> impl Iterator<Item = usize> + '_ {
        let (h1, h2) = Self::hash_pair(item);
        let nbits = self.nbits as u64;
        (0..self.nhashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % nbits) as usize)
    }

    /// Inserts an item.
    pub fn insert(&mut self, item: &[u8]) {
        let positions: Vec<usize> = self.positions(item).collect();
        for p in positions {
            self.bits[p / 64] |= 1 << (p % 64);
        }
    }

    /// Membership test (no false negatives; tunable false positives).
    pub fn contains(&self, item: &[u8]) -> bool {
        self.positions(item).all(|p| self.bits[p / 64] & (1 << (p % 64)) != 0)
    }

    /// Fraction of set bits (useful for saturation diagnostics).
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.nbits as f64
    }

    /// Serializes the filter.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.nbits as u64).u32(self.nhashes);
        let mut raw = Vec::with_capacity(self.bits.len() * 8);
        for word in &self.bits {
            raw.extend_from_slice(&word.to_be_bytes());
        }
        w.bytes(&raw);
        w.finish()
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on framing or size mismatch.
    pub fn decode(buf: &[u8]) -> Result<Self, SseError> {
        let mut r = Reader::new(buf);
        let nbits = r.u64()? as usize;
        let nhashes = r.u32()?;
        let raw = r.bytes()?;
        r.finish()?;
        if raw.len() != nbits.div_ceil(64) * 8 || nhashes == 0 || nbits == 0 {
            return Err(SseError::Malformed("bloom filter"));
        }
        let bits = raw.chunks(8).map(|c| u64::from_be_bytes(c.try_into().unwrap())).collect();
        Ok(BloomFilter { bits, nbits, nhashes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000u32 {
            f.insert(&i.to_be_bytes());
        }
        for i in 0..1000u32 {
            assert!(f.contains(&i.to_be_bytes()), "lost item {i}");
        }
    }

    #[test]
    fn false_positive_rate_in_ballpark() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000u32 {
            f.insert(&i.to_be_bytes());
        }
        let fps = (1000..11000u32).filter(|i| f.contains(&i.to_be_bytes())).count();
        let rate = fps as f64 / 10_000.0;
        assert!(rate < 0.05, "fp rate {rate} far above target 0.01");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut f = BloomFilter::with_capacity(64, 0.05);
        f.insert(b"alpha");
        f.insert(b"beta");
        let f2 = BloomFilter::decode(&f.encode()).unwrap();
        assert_eq!(f, f2);
        assert!(f2.contains(b"alpha"));
        assert!(BloomFilter::decode(b"garbage").is_err());
    }

    #[test]
    fn fill_ratio_grows() {
        let mut f = BloomFilter::with_capacity(100, 0.01);
        let before = f.fill_ratio();
        for i in 0..100u32 {
            f.insert(&i.to_be_bytes());
        }
        assert!(f.fill_ratio() > before);
        assert!(f.fill_ratio() < 0.75, "should be near 50% at capacity");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        BloomFilter::with_capacity(0, 0.01);
    }
}
