//! Deterministic encryption (DET) — protection class 4, leakage
//! *Equalities*.
//!
//! SIV-style construction: the synthetic IV is `HMAC(k_mac, plaintext)`
//! truncated to 16 bytes; the body is AES-CTR under `k_enc` with that IV.
//! Identical plaintexts yield identical ciphertexts — that is exactly the
//! (useful) leakage: the cloud can index and equality-match ciphertexts
//! directly. Used five times in the paper's benchmark schema (`effective`,
//! `issued`, and friends).

use datablinder_primitives::aes::Aes;
use datablinder_primitives::ct::constant_time_eq;
use datablinder_primitives::ctr::ctr_xor;
use datablinder_primitives::hmac::HmacCtx;
use datablinder_primitives::keys::SymmetricKey;

use crate::SseError;

/// Deterministic authenticated cipher.
///
/// # Examples
///
/// ```
/// use datablinder_sse::det::DetCipher;
/// use datablinder_primitives::keys::SymmetricKey;
///
/// # fn main() -> Result<(), datablinder_sse::SseError> {
/// let det = DetCipher::new(&SymmetricKey::from_bytes(&[1u8; 32]))?;
/// let c1 = det.encrypt(b"final");
/// let c2 = det.encrypt(b"final");
/// assert_eq!(c1, c2, "determinism is the point");
/// assert_eq!(det.decrypt(&c1)?, b"final");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct DetCipher {
    aes: Aes,
    // HMAC midstates for the SIV key, precomputed once: each encrypt/
    // decrypt skips key preparation and both pad compressions.
    mac: HmacCtx,
}

impl DetCipher {
    /// Derives the SIV subkeys from `key`.
    ///
    /// # Errors
    ///
    /// Propagates AES key-schedule errors (never for 32-byte input keys).
    pub fn new(key: &SymmetricKey) -> Result<Self, SseError> {
        let enc_key = key.derive(b"det/enc", 16);
        let mac_key = key.derive(b"det/mac", 32);
        Ok(DetCipher { aes: Aes::new(enc_key.as_bytes())?, mac: HmacCtx::new(mac_key.as_bytes()) })
    }

    /// Encrypts deterministically: `siv(16) || body`.
    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let tag = self.mac.mac(plaintext);
        let mut siv = [0u8; 16];
        siv.copy_from_slice(&tag[..16]);
        let mut out = Vec::with_capacity(16 + plaintext.len());
        out.extend_from_slice(&siv);
        out.extend_from_slice(plaintext);
        ctr_xor(&self.aes, &siv, &mut out[16..]);
        out
    }

    /// Encrypts a contiguous batch of plaintexts with one cipher context.
    ///
    /// Byte-identical to mapping [`DetCipher::encrypt`] over the batch
    /// (DET is deterministic, so this is easy to verify — and tested).
    pub fn encrypt_many(&self, plaintexts: &[&[u8]]) -> Vec<Vec<u8>> {
        plaintexts.iter().map(|pt| self.encrypt(pt)).collect()
    }

    /// Decrypts and verifies the synthetic IV.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] for short inputs; [`SseError::Crypto`] when
    /// the recomputed SIV mismatches (tampering or wrong key).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, SseError> {
        if ciphertext.len() < 16 {
            return Err(SseError::Malformed("det ciphertext"));
        }
        let (siv_bytes, body) = ciphertext.split_at(16);
        let mut siv = [0u8; 16];
        siv.copy_from_slice(siv_bytes);
        let mut plaintext = body.to_vec();
        ctr_xor(&self.aes, &siv, &mut plaintext);
        let tag = self.mac.mac(&plaintext);
        if !constant_time_eq(&tag[..16], siv_bytes) {
            return Err(SseError::Crypto(datablinder_primitives::CryptoError::AuthenticationFailed));
        }
        Ok(plaintext)
    }

    /// The equality-search token for a value: its deterministic ciphertext.
    /// (Cloud-side equality search is ciphertext equality.)
    pub fn search_token(&self, value: &[u8]) -> Vec<u8> {
        self.encrypt(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> DetCipher {
        DetCipher::new(&SymmetricKey::from_bytes(&[9u8; 32])).unwrap()
    }

    #[test]
    fn deterministic_per_key() {
        let d = det();
        assert_eq!(d.encrypt(b"x"), d.encrypt(b"x"));
        let other = DetCipher::new(&SymmetricKey::from_bytes(&[8u8; 32])).unwrap();
        assert_ne!(d.encrypt(b"x"), other.encrypt(b"x"));
    }

    #[test]
    fn distinct_plaintexts_distinct_ciphertexts() {
        let d = det();
        assert_ne!(d.encrypt(b"a"), d.encrypt(b"b"));
        assert_ne!(d.encrypt(b""), d.encrypt(b"a"));
    }

    #[test]
    fn roundtrip_various_lengths() {
        let d = det();
        for len in [0usize, 1, 15, 16, 17, 1000] {
            let pt: Vec<u8> = (0..len as u32).map(|i| (i * 7) as u8).collect();
            assert_eq!(d.decrypt(&d.encrypt(&pt)).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn tamper_detected() {
        let d = det();
        let mut c = d.encrypt(b"payload");
        c[20] ^= 1;
        assert!(matches!(d.decrypt(&c), Err(SseError::Crypto(_))));
        c[20] ^= 1;
        c[0] ^= 1; // IV tamper
        assert!(matches!(d.decrypt(&c), Err(SseError::Crypto(_))));
    }

    #[test]
    fn short_input_rejected() {
        let d = det();
        assert!(matches!(d.decrypt(&[0u8; 15]), Err(SseError::Malformed(_))));
    }

    #[test]
    fn encrypt_many_matches_per_value_encrypt() {
        let d = det();
        let plains: Vec<Vec<u8>> = (0..6usize).map(|i| vec![i as u8; 5 * i]).collect();
        let refs: Vec<&[u8]> = plains.iter().map(|p| p.as_slice()).collect();
        let batch = d.encrypt_many(&refs);
        for (pt, ct) in plains.iter().zip(&batch) {
            assert_eq!(ct, &d.encrypt(pt));
            assert_eq!(&d.decrypt(ct).unwrap(), pt);
        }
    }

    #[test]
    fn search_token_matches_stored_ciphertext() {
        let d = det();
        assert_eq!(d.search_token(b"2012-05-12"), d.encrypt(b"2012-05-12"));
    }
}
