//! Length-prefixed byte encoding helpers shared by the scheme tokens.
//!
//! All tokens crossing the gateway↔cloud channel use these so the framing
//! is uniform and fuzz-resistant.

use crate::SseError;

/// Incremental writer for length-prefixed fields.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends a length-prefixed byte field.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(&(b.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(b);
        self
    }

    /// Appends a raw u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a raw u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a list of byte fields (count-prefixed).
    pub fn list(&mut self, items: &[Vec<u8>]) -> &mut Self {
        self.u32(items.len() as u32);
        for item in items {
            self.bytes(item);
        }
        self
    }

    /// Finishes, returning the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Incremental reader matching [`Writer`].
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Reads a length-prefixed byte field.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on truncation.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SseError> {
        let len = self.u32()? as usize;
        if self.buf.len() < len {
            return Err(SseError::Malformed("truncated byte field"));
        }
        let (head, rest) = self.buf.split_at(len);
        self.buf = rest;
        Ok(head.to_vec())
    }

    /// Reads a fixed-size array field.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on truncation or wrong length.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], SseError> {
        let b = self.bytes()?;
        b.try_into().map_err(|_| SseError::Malformed("wrong-length array field"))
    }

    /// Reads a raw u32.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on truncation.
    pub fn u32(&mut self) -> Result<u32, SseError> {
        if self.buf.len() < 4 {
            return Err(SseError::Malformed("truncated u32"));
        }
        let (head, rest) = self.buf.split_at(4);
        self.buf = rest;
        Ok(u32::from_be_bytes(head.try_into().unwrap()))
    }

    /// Reads a raw u64.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on truncation.
    pub fn u64(&mut self) -> Result<u64, SseError> {
        if self.buf.len() < 8 {
            return Err(SseError::Malformed("truncated u64"));
        }
        let (head, rest) = self.buf.split_at(8);
        self.buf = rest;
        Ok(u64::from_be_bytes(head.try_into().unwrap()))
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on truncation.
    pub fn u8(&mut self) -> Result<u8, SseError> {
        if self.buf.is_empty() {
            return Err(SseError::Malformed("truncated u8"));
        }
        let b = self.buf[0];
        self.buf = &self.buf[1..];
        Ok(b)
    }

    /// Reads a count-prefixed list of byte fields.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on truncation.
    pub fn list(&mut self) -> Result<Vec<Vec<u8>>, SseError> {
        let n = self.u32()? as usize;
        // Guard absurd counts (cheap DoS resistance on the decode path).
        if n > self.buf.len() {
            return Err(SseError::Malformed("list count exceeds buffer"));
        }
        (0..n).map(|_| self.bytes()).collect()
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Reads a count that bounds further per-item reads: rejects counts
    /// larger than the remaining buffer (so hostile counts cannot drive
    /// huge preallocations).
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on truncation or absurd counts.
    pub fn count(&mut self) -> Result<usize, SseError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() {
            return Err(SseError::Malformed("count exceeds buffer"));
        }
        Ok(n)
    }

    /// Asserts the buffer is fully consumed.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] if bytes remain.
    pub fn finish(self) -> Result<(), SseError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(SseError::Malformed("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut w = Writer::new();
        w.u8(7).u32(42).u64(1 << 40).bytes(b"hello").list(&[b"a".to_vec(), b"bb".to_vec()]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 42);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.list().unwrap(), vec![b"a".to_vec(), b"bb".to_vec()]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.bytes(b"hello");
        let buf = w.finish();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(r.bytes().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.u8(1).u8(2);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(SseError::Malformed(_))));
    }

    #[test]
    fn absurd_list_count_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = Reader::new(&buf);
        assert!(r.list().is_err());
    }

    #[test]
    fn array_length_enforced() {
        let mut w = Writer::new();
        w.bytes(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(r.array::<16>().is_err());
        let mut r2 = Reader::new(&buf);
        assert_eq!(r2.array::<3>().unwrap(), [1, 2, 3]);
    }
}
