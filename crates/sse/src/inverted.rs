//! Plaintext inverted-index builder used by the *setup* phase of the
//! static schemes (2Lev, BIEX).

use std::collections::{BTreeMap, BTreeSet};

use crate::DocId;

/// A plaintext inverted index: keyword → set of document ids.
///
/// Built in the trusted zone during a static scheme's setup, then consumed
/// to produce the encrypted structures. Never leaves the gateway.
///
/// # Examples
///
/// ```
/// use datablinder_sse::inverted::InvertedIndex;
/// use datablinder_sse::DocId;
///
/// let mut idx = InvertedIndex::new();
/// idx.add(b"cancer", DocId::from_name("doc-1"));
/// idx.add(b"cancer", DocId::from_name("doc-2"));
/// assert_eq!(idx.postings(b"cancer").len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvertedIndex {
    map: BTreeMap<Vec<u8>, BTreeSet<DocId>>,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Adds a (keyword, document) pair.
    pub fn add(&mut self, keyword: &[u8], id: DocId) {
        self.map.entry(keyword.to_vec()).or_default().insert(id);
    }

    /// Adds every keyword of a document.
    pub fn add_document<'a, I: IntoIterator<Item = &'a [u8]>>(&mut self, keywords: I, id: DocId) {
        for kw in keywords {
            self.add(kw, id);
        }
    }

    /// The postings (sorted) for a keyword; empty if unknown.
    pub fn postings(&self, keyword: &[u8]) -> Vec<DocId> {
        self.map.get(keyword).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// All keywords, sorted.
    pub fn keywords(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.map.keys()
    }

    /// Number of distinct keywords.
    pub fn keyword_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of (keyword, doc) pairs.
    pub fn pair_count(&self) -> usize {
        self.map.values().map(|s| s.len()).sum()
    }

    /// Ids in the intersection of two keywords' postings.
    pub fn intersection(&self, a: &[u8], b: &[u8]) -> Vec<DocId> {
        match (self.map.get(a), self.map.get(b)) {
            (Some(sa), Some(sb)) => sa.intersection(sb).copied().collect(),
            _ => Vec::new(),
        }
    }

    /// Iterates `(keyword, postings)` pairs in keyword order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &BTreeSet<DocId>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u8) -> DocId {
        DocId([n; 16])
    }

    #[test]
    fn build_and_query() {
        let mut idx = InvertedIndex::new();
        idx.add_document([b"a".as_slice(), b"b".as_slice()], id(1));
        idx.add_document([b"b".as_slice(), b"c".as_slice()], id(2));
        assert_eq!(idx.postings(b"a"), vec![id(1)]);
        assert_eq!(idx.postings(b"b"), vec![id(1), id(2)]);
        assert_eq!(idx.postings(b"zzz"), vec![]);
        assert_eq!(idx.keyword_count(), 3);
        assert_eq!(idx.pair_count(), 4);
    }

    #[test]
    fn duplicates_ignored() {
        let mut idx = InvertedIndex::new();
        idx.add(b"w", id(1));
        idx.add(b"w", id(1));
        assert_eq!(idx.postings(b"w").len(), 1);
    }

    #[test]
    fn intersections() {
        let mut idx = InvertedIndex::new();
        idx.add(b"a", id(1));
        idx.add(b"a", id(2));
        idx.add(b"b", id(2));
        idx.add(b"b", id(3));
        assert_eq!(idx.intersection(b"a", b"b"), vec![id(2)]);
        assert_eq!(idx.intersection(b"a", b"nope"), vec![]);
    }
}
