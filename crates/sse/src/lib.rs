//! Searchable symmetric encryption (SSE) schemes.
//!
//! This crate implements the data protection tactics of Table 2 of the
//! DataBlinder paper, each split into a **client** (gateway) half that
//! holds keys and produces tokens, and a **server** (cloud) half that
//! operates over a [`datablinder_kvstore::KvStore`] and never sees keys or
//! plaintexts:
//!
//! | Scheme | Module | Class | Leakage | Properties |
//! |--------|--------|-------|---------|------------|
//! | DET    | [`det`]    | 4 | Equalities  | deterministic, equality search |
//! | RND    | [`rnd`]    | 1 | Structure   | probabilistic AEAD, no search |
//! | Mitra  | [`mitra`]  | 2 | Identifiers | forward & backward private, dynamic |
//! | Sophos | [`sophos`] | 2 | Identifiers | forward private via RSA trapdoor permutation |
//! | 2Lev   | [`twolev`] | — | (substrate) | static, read-efficient dictionary+array index |
//! | BIEX-2Lev | [`biex`] | 3 | Predicates | boolean (CNF) queries, read-efficient |
//! | BIEX-ZMF  | [`biex`] | 3 | Predicates | boolean queries, space-efficient (Bloom/matryoshka filters) |
//!
//! All tokens and responses have explicit byte encodings so they can cross
//! the simulated gateway↔cloud channel.

#![warn(missing_docs)]
pub mod biex;
pub mod bloom;
pub mod det;
pub mod encoding;
pub mod inverted;
pub mod mitra;
pub mod rnd;
pub mod sophos;
pub mod twolev;

use datablinder_primitives::CryptoError;

/// A fixed-size document identifier.
///
/// The middleware's `DocIDGen` SPI mints these; SSE payloads need
/// fixed-width identifiers for XOR masking and padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub [u8; 16]);

impl DocId {
    /// Lowercase hex rendering (the form stored in the document store).
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parses the hex rendering.
    pub fn from_hex(s: &str) -> Option<DocId> {
        if s.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(DocId(out))
    }

    /// Derives a stable id from an arbitrary string (for external ids).
    pub fn from_name(name: &str) -> DocId {
        let h = datablinder_primitives::sha256::digest(name.as_bytes());
        let mut out = [0u8; 16];
        out.copy_from_slice(&h[..16]);
        DocId(out)
    }
}

/// Whether an index update adds or removes a (keyword, document) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// The document now contains the keyword.
    Add,
    /// The pair is revoked.
    Delete,
}

impl UpdateOp {
    fn to_byte(self) -> u8 {
        match self {
            UpdateOp::Add => 0,
            UpdateOp::Delete => 1,
        }
    }

    fn from_byte(b: u8) -> Option<UpdateOp> {
        match b {
            0 => Some(UpdateOp::Add),
            1 => Some(UpdateOp::Delete),
            _ => None,
        }
    }
}

/// Errors across the SSE schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SseError {
    /// A token, entry or response failed to decode.
    Malformed(&'static str),
    /// Underlying cipher failure (bad tag, wrong key...).
    Crypto(CryptoError),
    /// The server-side store rejected an operation.
    Storage(String),
    /// A static index (2Lev/BIEX) was asked to update after setup.
    StaticScheme,
}

impl std::fmt::Display for SseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SseError::Malformed(what) => write!(f, "malformed {what}"),
            SseError::Crypto(e) => write!(f, "crypto failure: {e}"),
            SseError::Storage(e) => write!(f, "storage failure: {e}"),
            SseError::StaticScheme => write!(f, "static scheme does not support updates"),
        }
    }
}

impl std::error::Error for SseError {}

impl From<CryptoError> for SseError {
    fn from(e: CryptoError) -> Self {
        SseError::Crypto(e)
    }
}

impl From<datablinder_kvstore::KvError> for SseError {
    fn from(e: datablinder_kvstore::KvError) -> Self {
        SseError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn docid_hex_roundtrip() {
        let id = DocId([0xAB; 16]);
        let hex = id.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(DocId::from_hex(&hex), Some(id));
        assert_eq!(DocId::from_hex("short"), None);
        assert_eq!(DocId::from_hex(&"zz".repeat(16)), None);
    }

    #[test]
    fn docid_from_name_stable_and_distinct() {
        assert_eq!(DocId::from_name("a"), DocId::from_name("a"));
        assert_ne!(DocId::from_name("a"), DocId::from_name("b"));
    }

    #[test]
    fn update_op_bytes() {
        assert_eq!(UpdateOp::from_byte(UpdateOp::Add.to_byte()), Some(UpdateOp::Add));
        assert_eq!(UpdateOp::from_byte(UpdateOp::Delete.to_byte()), Some(UpdateOp::Delete));
        assert_eq!(UpdateOp::from_byte(9), None);
    }
}
