//! Mitra — forward and backward private dynamic SSE
//! (Ghareh Chamani, Papadopoulos, Papamanthou, Jalili; CCS 2018).
//!
//! Protection class 2, leakage *Identifiers*. Table 2 lists its integration
//! challenge as **local storage**: the client must keep a counter per
//! keyword, which [`MitraClient`] holds and can export/import so a gateway
//! can persist it.
//!
//! Construction (faithful to the paper's Mitra):
//!
//! * per keyword `w` the client keeps `FileCnt[w]`;
//! * update `(w, id, op)`: `c = FileCnt[w] += 1`;
//!   `addr = H(K_w, c || 0)`, `val = (id || op) ⊕ H(K_w, c || 1)`;
//!   the server stores the opaque `addr → val` pair;
//! * search `w`: the client sends all `addr_1..addr_c`; the server returns
//!   the values; the client unmasks and filters deletions locally.
//!
//! The server sees only random-looking addresses — updates leak nothing
//! about which keyword they touch (forward privacy), and deletions are
//! indistinguishable from additions (backward privacy type-II).

use std::collections::HashMap;

use datablinder_kvstore::KvStore;
use datablinder_primitives::keys::SymmetricKey;
use datablinder_primitives::prf::{HmacPrf, Prf};

use crate::encoding::{Reader, Writer};
use crate::{DocId, SseError, UpdateOp};

/// One masked index entry travelling gateway → cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MitraUpdateToken {
    /// Pseudorandom storage address.
    pub addr: [u8; 32],
    /// Masked `(id || op)` payload (17 bytes XOR keystream).
    pub val: [u8; 17],
}

impl MitraUpdateToken {
    /// Serializes for the channel.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.addr).bytes(&self.val);
        w.finish()
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on bad framing.
    pub fn decode(buf: &[u8]) -> Result<Self, SseError> {
        let mut r = Reader::new(buf);
        let addr = r.array::<32>()?;
        let val = r.array::<17>()?;
        r.finish()?;
        Ok(MitraUpdateToken { addr, val })
    }
}

/// A search request: the addresses of every version of the keyword's list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MitraSearchToken {
    /// Addresses `addr_1..addr_c`.
    pub addrs: Vec<[u8; 32]>,
}

impl MitraSearchToken {
    /// Serializes for the channel.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.list(&self.addrs.iter().map(|a| a.to_vec()).collect::<Vec<_>>());
        w.finish()
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on bad framing.
    pub fn decode(buf: &[u8]) -> Result<Self, SseError> {
        let mut r = Reader::new(buf);
        let items = r.list()?;
        r.finish()?;
        let addrs = items
            .into_iter()
            .map(|v| v.try_into().map_err(|_| SseError::Malformed("mitra addr")))
            .collect::<Result<Vec<[u8; 32]>, _>>()?;
        Ok(MitraSearchToken { addrs })
    }
}

/// The gateway-side half: keys plus the per-keyword counter state.
pub struct MitraClient {
    prf: HmacPrf,
    counters: HashMap<Vec<u8>, u64>,
}

impl MitraClient {
    /// Creates a client with empty state.
    pub fn new(key: &SymmetricKey) -> Self {
        MitraClient { prf: HmacPrf::new(key.derive(b"mitra", 32)), counters: HashMap::new() }
    }

    /// Produces the update token for `(keyword, id, op)`, bumping the
    /// local counter.
    pub fn update_token(&mut self, keyword: &[u8], id: DocId, op: UpdateOp) -> MitraUpdateToken {
        let c = {
            let entry = self.counters.entry(keyword.to_vec()).or_insert(0);
            *entry += 1;
            *entry
        };
        let addr = self.addr(keyword, c);
        let mask = self.prf.eval_parts(&[b"mask", keyword, &c.to_be_bytes()]);
        let mut val = [0u8; 17];
        val[..16].copy_from_slice(&id.0);
        val[16] = op.to_byte();
        for (v, m) in val.iter_mut().zip(mask.iter()) {
            *v ^= m;
        }
        MitraUpdateToken { addr, val }
    }

    /// Produces the search token for `keyword` (all current addresses).
    pub fn search_token(&self, keyword: &[u8]) -> MitraSearchToken {
        let c = self.counters.get(keyword).copied().unwrap_or(0);
        let addrs = (1..=c).map(|i| self.addr(keyword, i)).collect();
        MitraSearchToken { addrs }
    }

    /// Unmasks server results and resolves add/delete history into the
    /// live set of document ids.
    ///
    /// Zero-length entries mark addresses the server has no value for. That
    /// happens when an update was minted locally (advancing the counter) but
    /// its write never reached the cloud — e.g. an aborted batch tail or a
    /// dropped message. Such gaps are skipped so that a failed write degrades
    /// to "that update is missing" instead of poisoning every later search
    /// for the keyword.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] if a present entry has the wrong size or op
    /// byte.
    pub fn resolve(&self, keyword: &[u8], values: &[Vec<u8>]) -> Result<Vec<DocId>, SseError> {
        let mut live: Vec<DocId> = Vec::new();
        for (i, v) in values.iter().enumerate() {
            if v.is_empty() {
                continue;
            }
            if v.len() != 17 {
                return Err(SseError::Malformed("mitra entry size"));
            }
            let c = (i + 1) as u64;
            let mask = self.prf.eval_parts(&[b"mask", keyword, &c.to_be_bytes()]);
            let mut plain = [0u8; 17];
            for (j, p) in plain.iter_mut().enumerate() {
                *p = v[j] ^ mask[j];
            }
            let mut idb = [0u8; 16];
            idb.copy_from_slice(&plain[..16]);
            let id = DocId(idb);
            match UpdateOp::from_byte(plain[16]).ok_or(SseError::Malformed("mitra op byte"))? {
                UpdateOp::Add => live.push(id),
                UpdateOp::Delete => live.retain(|x| *x != id),
            }
        }
        live.sort();
        live.dedup();
        Ok(live)
    }

    /// Number of updates issued for `keyword`.
    pub fn counter(&self, keyword: &[u8]) -> u64 {
        self.counters.get(keyword).copied().unwrap_or(0)
    }

    /// Exports the counter state (the paper's "local storage" challenge) so
    /// the gateway can persist it.
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.counters.len() as u32);
        let mut entries: Vec<_> = self.counters.iter().collect();
        entries.sort();
        for (k, v) in entries {
            w.bytes(k).u64(*v);
        }
        w.finish()
    }

    /// Restores exported state.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on bad framing.
    pub fn import_state(&mut self, state: &[u8]) -> Result<(), SseError> {
        let mut r = Reader::new(state);
        let n = r.u32()?;
        let mut counters = HashMap::new();
        for _ in 0..n {
            let k = r.bytes()?;
            let v = r.u64()?;
            counters.insert(k, v);
        }
        r.finish()?;
        self.counters = counters;
        Ok(())
    }

    fn addr(&self, keyword: &[u8], c: u64) -> [u8; 32] {
        self.prf.eval_parts(&[b"addr", keyword, &c.to_be_bytes()])
    }
}

/// The cloud-side half: a dumb encrypted map over the KV store.
pub struct MitraServer {
    kv: KvStore,
    prefix: Vec<u8>,
}

impl MitraServer {
    /// Creates a server storing under `prefix` in `kv`.
    pub fn new(kv: KvStore, prefix: &[u8]) -> Self {
        MitraServer { kv, prefix: prefix.to_vec() }
    }

    /// Stores one masked entry.
    pub fn apply_update(&self, token: &MitraUpdateToken) {
        self.kv.set(&self.key(&token.addr), &token.val);
    }

    /// Fetches the values for a search token, in address order.
    /// Missing addresses yield empty entries (malformed tokens are the
    /// gateway's problem, surfaced at resolution).
    pub fn search(&self, token: &MitraSearchToken) -> Vec<Vec<u8>> {
        token.addrs.iter().map(|a| self.kv.get(&self.key(a)).unwrap_or_default()).collect()
    }

    /// Number of stored entries under this server's prefix.
    pub fn entry_count(&self) -> usize {
        self.kv.keys_with_prefix(&self.prefix).len()
    }

    fn key(&self, addr: &[u8; 32]) -> Vec<u8> {
        let mut k = self.prefix.clone();
        k.extend_from_slice(addr);
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MitraClient, MitraServer) {
        let key = SymmetricKey::from_bytes(&[3u8; 32]);
        (MitraClient::new(&key), MitraServer::new(KvStore::new(), b"mitra:"))
    }

    fn id(n: u8) -> DocId {
        DocId([n; 16])
    }

    #[test]
    fn add_and_search() {
        let (mut client, server) = setup();
        for n in 1..=3 {
            let t = client.update_token(b"cancer", id(n), UpdateOp::Add);
            server.apply_update(&t);
        }
        server.apply_update(&client.update_token(b"diabetes", id(9), UpdateOp::Add));

        let token = client.search_token(b"cancer");
        let results = server.search(&token);
        let ids = client.resolve(b"cancer", &results).unwrap();
        assert_eq!(ids, vec![id(1), id(2), id(3)]);

        let ids = client.resolve(b"diabetes", &server.search(&client.search_token(b"diabetes"))).unwrap();
        assert_eq!(ids, vec![id(9)]);
    }

    #[test]
    fn delete_removes_from_results() {
        let (mut client, server) = setup();
        server.apply_update(&client.update_token(b"w", id(1), UpdateOp::Add));
        server.apply_update(&client.update_token(b"w", id(2), UpdateOp::Add));
        server.apply_update(&client.update_token(b"w", id(1), UpdateOp::Delete));
        let ids = client.resolve(b"w", &server.search(&client.search_token(b"w"))).unwrap();
        assert_eq!(ids, vec![id(2)]);
    }

    #[test]
    fn search_unknown_keyword_is_empty() {
        let (client, server) = setup();
        let token = client.search_token(b"never-seen");
        assert!(token.addrs.is_empty());
        assert!(server.search(&token).is_empty());
        assert_eq!(client.resolve(b"never-seen", &[]).unwrap(), vec![]);
    }

    #[test]
    fn forward_privacy_shape_updates_look_random() {
        // Two updates for the same keyword share no address bytes pattern:
        // addresses must differ, and so must the masked values even for the
        // same document id.
        let (mut client, _) = setup();
        let t1 = client.update_token(b"w", id(1), UpdateOp::Add);
        let t2 = client.update_token(b"w", id(1), UpdateOp::Add);
        assert_ne!(t1.addr, t2.addr);
        assert_ne!(t1.val, t2.val);
    }

    #[test]
    fn tokens_encode_roundtrip() {
        let (mut client, _) = setup();
        let t = client.update_token(b"w", id(7), UpdateOp::Delete);
        assert_eq!(MitraUpdateToken::decode(&t.encode()).unwrap(), t);
        client.update_token(b"w", id(8), UpdateOp::Add);
        let s = client.search_token(b"w");
        assert_eq!(MitraSearchToken::decode(&s.encode()).unwrap(), s);
        assert!(MitraUpdateToken::decode(b"junk").is_err());
        assert!(MitraSearchToken::decode(&[0, 0, 0, 2, 0, 0, 0, 1, 9]).is_err());
    }

    #[test]
    fn state_export_import() {
        let (mut client, server) = setup();
        server.apply_update(&client.update_token(b"w", id(1), UpdateOp::Add));
        server.apply_update(&client.update_token(b"w", id(2), UpdateOp::Add));
        let state = client.export_state();

        // A fresh client (e.g. gateway restart) resumes from the state.
        let key = SymmetricKey::from_bytes(&[3u8; 32]);
        let mut client2 = MitraClient::new(&key);
        client2.import_state(&state).unwrap();
        assert_eq!(client2.counter(b"w"), 2);
        let ids = client2.resolve(b"w", &server.search(&client2.search_token(b"w"))).unwrap();
        assert_eq!(ids, vec![id(1), id(2)]);

        // Continue updating from restored state without address collisions.
        server.apply_update(&client2.update_token(b"w", id(3), UpdateOp::Add));
        let ids = client2.resolve(b"w", &server.search(&client2.search_token(b"w"))).unwrap();
        assert_eq!(ids, vec![id(1), id(2), id(3)]);
    }

    #[test]
    fn import_rejects_garbage() {
        let (mut client, _) = setup();
        assert!(client.import_state(&[1, 2, 3]).is_err());
    }

    #[test]
    fn resolve_rejects_bad_entries() {
        let (mut client, _) = setup();
        client.update_token(b"w", id(1), UpdateOp::Add);
        assert!(client.resolve(b"w", &[vec![0u8; 5]]).is_err());
    }

    #[test]
    fn resolve_skips_missing_entries() {
        // Counter advanced twice but only the second write reached the
        // server: the gap resolves to "update lost", not an error.
        let (mut client, server) = setup();
        let _lost = client.update_token(b"w", id(1), UpdateOp::Add);
        server.apply_update(&client.update_token(b"w", id(2), UpdateOp::Add));
        let ids = client.resolve(b"w", &server.search(&client.search_token(b"w"))).unwrap();
        assert_eq!(ids, vec![id(2)]);
    }
}
