//! Randomized encryption (RND) — protection class 1, leakage *Structure*.
//!
//! AES-GCM with a fresh random nonce per encryption, plus optional padding
//! to a bucket size so even plaintext lengths are hidden up to the bucket
//! granularity. The strongest tactic in Table 2 — and the least functional:
//! no search at all (the paper assigns it to `performer`, ops `[I]` only).

use datablinder_primitives::gcm::{AesGcm, NONCE_LEN};
use datablinder_primitives::keys::SymmetricKey;
use rand::RngCore;

use crate::SseError;

/// Probabilistic authenticated cipher with length bucketing.
///
/// # Examples
///
/// ```
/// use datablinder_sse::rnd::RndCipher;
/// use datablinder_primitives::keys::SymmetricKey;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), datablinder_sse::SseError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let rnd = RndCipher::new(&SymmetricKey::from_bytes(&[1u8; 32]))?;
/// let c1 = rnd.encrypt(&mut rng, b"John Smith");
/// let c2 = rnd.encrypt(&mut rng, b"John Smith");
/// assert_ne!(c1, c2, "probabilistic");
/// assert_eq!(rnd.decrypt(&c1)?, b"John Smith");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct RndCipher {
    gcm: AesGcm,
    bucket: usize,
}

/// Default padding bucket (bytes). Plaintexts are padded to the next
/// multiple, hiding lengths within a bucket.
pub const DEFAULT_BUCKET: usize = 32;

impl RndCipher {
    /// Creates a cipher with the default padding bucket.
    ///
    /// # Errors
    ///
    /// Propagates key-schedule errors.
    pub fn new(key: &SymmetricKey) -> Result<Self, SseError> {
        Self::with_bucket(key, DEFAULT_BUCKET)
    }

    /// Creates a cipher with a custom padding bucket (`0` disables padding).
    ///
    /// # Errors
    ///
    /// Propagates key-schedule errors.
    pub fn with_bucket(key: &SymmetricKey, bucket: usize) -> Result<Self, SseError> {
        let enc = key.derive(b"rnd/enc", 32);
        Ok(RndCipher { gcm: AesGcm::new(&enc)?, bucket })
    }

    /// Encrypts with a fresh nonce: `nonce(12) || gcm(len(8) || padded)`.
    pub fn encrypt<R: RngCore + ?Sized>(&self, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        let mut framed = Vec::with_capacity(8 + plaintext.len());
        framed.extend_from_slice(&(plaintext.len() as u64).to_be_bytes());
        framed.extend_from_slice(plaintext);
        if self.bucket > 0 {
            let target = framed.len().div_ceil(self.bucket) * self.bucket;
            framed.resize(target, 0);
        }
        let sealed = self.gcm.seal(&nonce, b"rnd", &framed);
        let mut out = Vec::with_capacity(NONCE_LEN + sealed.len());
        out.extend_from_slice(&nonce);
        out.extend_from_slice(&sealed);
        out
    }

    /// Encrypts a batch of `(nonce, plaintext)` pairs with one cipher
    /// context and a reused framing buffer.
    ///
    /// Nonces are supplied by the caller (drawn from its RNG in item
    /// order), so the output is byte-identical to calling
    /// [`RndCipher::encrypt`] per item with the same RNG stream — the
    /// batch path changes throughput, never ciphertexts.
    pub fn encrypt_many(&self, items: &[([u8; NONCE_LEN], &[u8])]) -> Vec<Vec<u8>> {
        let mut framed = Vec::new();
        items
            .iter()
            .map(|(nonce, plaintext)| {
                framed.clear();
                framed.extend_from_slice(&(plaintext.len() as u64).to_be_bytes());
                framed.extend_from_slice(plaintext);
                if self.bucket > 0 {
                    let target = framed.len().div_ceil(self.bucket) * self.bucket;
                    framed.resize(target, 0);
                }
                let mut out = Vec::with_capacity(NONCE_LEN + framed.len() + datablinder_primitives::gcm::TAG_LEN);
                out.extend_from_slice(nonce);
                self.gcm.seal_into(nonce, b"rnd", &framed, &mut out);
                out
            })
            .collect()
    }

    /// Decrypts, verifying the tag and stripping padding.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] for structurally bad input,
    /// [`SseError::Crypto`] for tag failures.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, SseError> {
        if ciphertext.len() < NONCE_LEN {
            return Err(SseError::Malformed("rnd ciphertext"));
        }
        let (nonce_bytes, sealed) = ciphertext.split_at(NONCE_LEN);
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(nonce_bytes);
        let framed = self.gcm.open(&nonce, b"rnd", sealed)?;
        if framed.len() < 8 {
            return Err(SseError::Malformed("rnd frame"));
        }
        let len = u64::from_be_bytes(framed[..8].try_into().unwrap()) as usize;
        if framed.len() < 8 + len {
            return Err(SseError::Malformed("rnd frame length"));
        }
        Ok(framed[8..8 + len].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (RndCipher, rand::rngs::StdRng) {
        (RndCipher::new(&SymmetricKey::from_bytes(&[4u8; 32])).unwrap(), rand::rngs::StdRng::seed_from_u64(1))
    }

    #[test]
    fn roundtrip_and_probabilism() {
        let (rnd, mut rng) = setup();
        for len in [0usize, 1, 31, 32, 33, 500] {
            let pt: Vec<u8> = (0..len as u32).map(|i| i as u8).collect();
            let c1 = rnd.encrypt(&mut rng, &pt);
            let c2 = rnd.encrypt(&mut rng, &pt);
            assert_ne!(c1, c2, "len {len}");
            assert_eq!(rnd.decrypt(&c1).unwrap(), pt);
            assert_eq!(rnd.decrypt(&c2).unwrap(), pt);
        }
    }

    #[test]
    fn padding_hides_lengths_within_bucket() {
        let (rnd, mut rng) = setup();
        // 1-byte and 20-byte plaintexts both fit the first 32-byte bucket
        // (with the 8-byte length frame), so ciphertext lengths match.
        let short = rnd.encrypt(&mut rng, b"x");
        let longer = rnd.encrypt(&mut rng, &[7u8; 20]);
        assert_eq!(short.len(), longer.len());
        // Crossing the bucket boundary changes the size.
        let big = rnd.encrypt(&mut rng, &[7u8; 40]);
        assert_ne!(short.len(), big.len());
    }

    #[test]
    fn unpadded_mode() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let rnd = RndCipher::with_bucket(&SymmetricKey::from_bytes(&[4u8; 32]), 0).unwrap();
        let c = rnd.encrypt(&mut rng, b"abc");
        assert_eq!(rnd.decrypt(&c).unwrap(), b"abc");
    }

    #[test]
    fn encrypt_many_matches_sequential_encrypt() {
        let (rnd, _) = setup();
        let plains: Vec<Vec<u8>> =
            [0usize, 1, 20, 32, 40, 500].iter().map(|&len| (0..len as u32).map(|i| i as u8).collect()).collect();
        // Same seed, two rngs: one drives the sequential path, one draws
        // the nonces handed to the batch path.
        let mut seq_rng = rand::rngs::StdRng::seed_from_u64(77);
        let sequential: Vec<Vec<u8>> = plains.iter().map(|pt| rnd.encrypt(&mut seq_rng, pt)).collect();
        let mut batch_rng = rand::rngs::StdRng::seed_from_u64(77);
        let items: Vec<([u8; NONCE_LEN], &[u8])> = plains
            .iter()
            .map(|pt| {
                let mut nonce = [0u8; NONCE_LEN];
                batch_rng.fill_bytes(&mut nonce);
                (nonce, pt.as_slice())
            })
            .collect();
        let batched = rnd.encrypt_many(&items);
        assert_eq!(batched, sequential);
        for (ct, pt) in batched.iter().zip(&plains) {
            assert_eq!(&rnd.decrypt(ct).unwrap(), pt);
        }
    }

    #[test]
    fn tamper_detected() {
        let (rnd, mut rng) = setup();
        let mut c = rnd.encrypt(&mut rng, b"secret");
        let mid = c.len() / 2;
        c[mid] ^= 1;
        assert!(matches!(rnd.decrypt(&c), Err(SseError::Crypto(_))));
    }

    #[test]
    fn short_input_rejected() {
        let (rnd, _) = setup();
        assert!(rnd.decrypt(&[0u8; 5]).is_err());
        assert!(rnd.decrypt(&[0u8; 12]).is_err());
    }
}
