//! Sophos (Σoφoς) — forward-private dynamic SSE (Bost, CCS 2016).
//!
//! Protection class 2, leakage *Identifiers*. Table 2 lists its challenge
//! as **key management**: the scheme needs an asymmetric trapdoor
//! permutation keypair, which the gateway stores in the KMS.
//!
//! Construction:
//!
//! * an RSA trapdoor permutation `π(x) = x^e mod N` with trapdoor
//!   `π^{-1}(x) = x^d mod N`;
//! * per keyword the client keeps `(ST_c, c)`; the first search token
//!   `ST_1` is random, and each update *inverts* the permutation:
//!   `ST_{c+1} = π^{-1}(ST_c)` — only the client can move forward, so the
//!   server cannot correlate a new update with past searches (forward
//!   privacy);
//! * update: `UT = H1(K_w, ST_c)`, `e = id ⊕ H2(K_w, ST_c)`; the server
//!   stores `UT → e`;
//! * search: the client reveals `(K_w, ST_c, c)`; the server walks
//!   *backwards* with the public direction `ST_{i-1} = π(ST_i)`, unmasking
//!   nothing — it returns the masked entries for the client to resolve.
//!
//! Deletions are not part of Sophos; DataBlinder layers a gateway-side
//! revocation list on top when needed (the middleware does this).

use std::collections::HashMap;
use std::sync::Arc;

use datablinder_bigint::{prime, BigUint, MontgomeryCtx};
use datablinder_kvstore::KvStore;
use datablinder_primitives::keys::SymmetricKey;
use datablinder_primitives::prf::{HmacPrf, Prf};
use datablinder_primitives::sha256::Sha256;
use rand::Rng;

use crate::encoding::{Reader, Writer};
use crate::{DocId, SseError};

/// The public half of the trapdoor permutation (cloud side).
///
/// Caches a [`MontgomeryCtx`] for `N` behind an `Arc`, so the server's
/// chain walk (`count` successive `forward` calls per search) pays the
/// Montgomery domain setup once per key, not once per permutation step.
#[derive(Debug, Clone)]
pub struct SophosPublicKey {
    n: BigUint,
    e: BigUint,
    ctx: Arc<MontgomeryCtx>,
}

impl PartialEq for SophosPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e
    }
}

impl Eq for SophosPublicKey {}

impl SophosPublicKey {
    /// Assembles a key from an odd RSA modulus, building the cached
    /// Montgomery context once.
    fn assemble(n: BigUint, e: BigUint) -> Self {
        debug_assert!(n.is_odd());
        let ctx = Arc::new(MontgomeryCtx::new(&n));
        SophosPublicKey { n, e, ctx }
    }

    /// Applies the public direction `π`.
    pub fn forward(&self, x: &BigUint) -> BigUint {
        self.ctx.modpow(x, &self.e)
    }

    /// Modulus width in bytes (serialization width for search tokens).
    pub fn width(&self) -> usize {
        self.n.bits().div_ceil(8)
    }

    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.n.to_bytes_be()).bytes(&self.e.to_bytes_be());
        w.finish()
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on framing errors or a modulus that cannot
    /// be an RSA modulus (zero or even).
    pub fn decode(buf: &[u8]) -> Result<Self, SseError> {
        let mut r = Reader::new(buf);
        let n = BigUint::from_bytes_be(&r.bytes()?);
        let e = BigUint::from_bytes_be(&r.bytes()?);
        r.finish()?;
        if n.is_zero() || n.is_even() {
            return Err(SseError::Malformed("sophos modulus"));
        }
        Ok(SophosPublicKey::assemble(n, e))
    }
}

/// The full trapdoor keypair (gateway side; persisted via the KMS).
#[derive(Debug, Clone)]
pub struct SophosKeypair {
    public: SophosPublicKey,
    d: BigUint,
}

impl SophosKeypair {
    /// Generates an RSA trapdoor permutation with an approximately
    /// `modulus_bits`-bit modulus.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, modulus_bits: usize) -> Self {
        loop {
            let (p, q) = prime::gen_prime_pair(rng, modulus_bits / 2);
            let n = &p * &q;
            let phi = (&p - &BigUint::one()) * (&q - &BigUint::one());
            let e = BigUint::from(65537u64);
            if let Ok(d) = e.modinv(&phi) {
                return SophosKeypair { public: SophosPublicKey::assemble(n, e), d };
            }
        }
    }

    /// The public half.
    pub fn public(&self) -> &SophosPublicKey {
        &self.public
    }

    /// Applies the trapdoor direction `π^{-1}`, through the cached
    /// Montgomery context.
    pub fn backward(&self, x: &BigUint) -> BigUint {
        self.public.ctx.modpow(x, &self.d)
    }

    /// Serializes (private material included — KMS storage only).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.public.n.to_bytes_be()).bytes(&self.public.e.to_bytes_be()).bytes(&self.d.to_bytes_be());
        w.finish()
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on framing errors.
    pub fn decode(buf: &[u8]) -> Result<Self, SseError> {
        let mut r = Reader::new(buf);
        let n = BigUint::from_bytes_be(&r.bytes()?);
        let e = BigUint::from_bytes_be(&r.bytes()?);
        let d = BigUint::from_bytes_be(&r.bytes()?);
        r.finish()?;
        if n.is_zero() || n.is_even() {
            return Err(SseError::Malformed("sophos modulus"));
        }
        Ok(SophosKeypair { public: SophosPublicKey::assemble(n, e), d })
    }
}

/// Hash H1 (update-token address) / H2 (payload mask), domain-separated.
fn h(tag: u8, k_w: &[u8; 32], st: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(b"sophos");
    hasher.update(&[tag]);
    hasher.update(k_w);
    hasher.update(st);
    hasher.finalize()
}

/// An update entry travelling gateway → cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SophosUpdateToken {
    /// `H1(K_w, ST_c)` — where the server files the entry.
    pub ut: [u8; 32],
    /// Masked document id.
    pub masked_id: [u8; 16],
}

impl SophosUpdateToken {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.ut).bytes(&self.masked_id);
        w.finish()
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on framing errors.
    pub fn decode(buf: &[u8]) -> Result<Self, SseError> {
        let mut r = Reader::new(buf);
        let ut = r.array::<32>()?;
        let masked_id = r.array::<16>()?;
        r.finish()?;
        Ok(SophosUpdateToken { ut, masked_id })
    }
}

/// A search request: enough for the server to walk the whole chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SophosSearchToken {
    /// Per-keyword PRF key (revealed at search time, as in the paper).
    pub k_w: [u8; 32],
    /// Latest search token `ST_c` (big-endian, modulus width).
    pub st: Vec<u8>,
    /// Chain length `c`.
    pub count: u64,
}

impl SophosSearchToken {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.k_w).bytes(&self.st).u64(self.count);
        w.finish()
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on framing errors.
    pub fn decode(buf: &[u8]) -> Result<Self, SseError> {
        let mut r = Reader::new(buf);
        let k_w = r.array::<32>()?;
        let st = r.bytes()?;
        let count = r.u64()?;
        r.finish()?;
        Ok(SophosSearchToken { k_w, st, count })
    }
}

/// Per-keyword client state.
#[derive(Debug, Clone)]
struct KeywordState {
    st: BigUint,
    count: u64,
}

/// The gateway-side half.
pub struct SophosClient {
    keypair: SophosKeypair,
    prf: HmacPrf,
    state: HashMap<Vec<u8>, KeywordState>,
}

impl SophosClient {
    /// Creates a client from the symmetric key and trapdoor keypair.
    pub fn new(key: &SymmetricKey, keypair: SophosKeypair) -> Self {
        SophosClient { keypair, prf: HmacPrf::new(key.derive(b"sophos", 32)), state: HashMap::new() }
    }

    /// The public key the server needs.
    pub fn public_key(&self) -> &SophosPublicKey {
        &self.keypair.public
    }

    fn k_w(&self, keyword: &[u8]) -> [u8; 32] {
        self.prf.eval_parts(&[b"kw", keyword])
    }

    /// Produces the update token for `(keyword, id)`, advancing the chain.
    pub fn update_token<R: Rng + ?Sized>(&mut self, rng: &mut R, keyword: &[u8], id: DocId) -> SophosUpdateToken {
        let n = self.keypair.public.n.clone();
        let st = match self.state.get(keyword) {
            None => loop {
                let candidate = BigUint::random_below(rng, &n);
                if !candidate.is_zero() && candidate.gcd(&n).is_one() {
                    break candidate;
                }
            },
            Some(s) => self.keypair.backward(&s.st),
        };
        let count = self.state.get(keyword).map_or(0, |s| s.count) + 1;
        let width = self.keypair.public.width();
        let st_bytes = st.to_bytes_be_padded(width);
        let k_w = self.k_w(keyword);
        let ut = h(1, &k_w, &st_bytes);
        let mask = h(2, &k_w, &st_bytes);
        let mut masked_id = [0u8; 16];
        for i in 0..16 {
            masked_id[i] = id.0[i] ^ mask[i];
        }
        self.state.insert(keyword.to_vec(), KeywordState { st, count });
        SophosUpdateToken { ut, masked_id }
    }

    /// Produces the search token (empty-result shortcut when the keyword
    /// was never updated).
    pub fn search_token(&self, keyword: &[u8]) -> Option<SophosSearchToken> {
        let s = self.state.get(keyword)?;
        let width = self.keypair.public.width();
        Some(SophosSearchToken { k_w: self.k_w(keyword), st: s.st.to_bytes_be_padded(width), count: s.count })
    }

    /// Unmasks the server's results into document ids.
    ///
    /// The server returns `(st_bytes, masked_id)` pairs so the client does
    /// not need to re-walk the permutation chain.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on wrong-size entries.
    pub fn resolve(&self, keyword: &[u8], entries: &[(Vec<u8>, Vec<u8>)]) -> Result<Vec<DocId>, SseError> {
        let k_w = self.k_w(keyword);
        let mut out = Vec::with_capacity(entries.len());
        for (st_bytes, masked) in entries {
            if masked.len() != 16 {
                return Err(SseError::Malformed("sophos entry"));
            }
            let mask = h(2, &k_w, st_bytes);
            let mut id = [0u8; 16];
            for i in 0..16 {
                id[i] = masked[i] ^ mask[i];
            }
            out.push(DocId(id));
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Chain length for a keyword.
    pub fn counter(&self, keyword: &[u8]) -> u64 {
        self.state.get(keyword).map_or(0, |s| s.count)
    }

    /// Exports per-keyword state for gateway persistence.
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.state.len() as u32);
        let mut entries: Vec<_> = self.state.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (kw, s) in entries {
            w.bytes(kw).bytes(&s.st.to_bytes_be()).u64(s.count);
        }
        w.finish()
    }

    /// Restores exported state.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on framing errors.
    pub fn import_state(&mut self, state: &[u8]) -> Result<(), SseError> {
        let mut r = Reader::new(state);
        let count = r.u32()?;
        let mut map = HashMap::new();
        for _ in 0..count {
            let kw = r.bytes()?;
            let st = BigUint::from_bytes_be(&r.bytes()?);
            let c = r.u64()?;
            map.insert(kw, KeywordState { st, count: c });
        }
        r.finish()?;
        self.state = map;
        Ok(())
    }
}

/// The cloud-side half.
pub struct SophosServer {
    kv: KvStore,
    prefix: Vec<u8>,
    public: SophosPublicKey,
}

impl SophosServer {
    /// Creates a server over `kv` with the client's public key.
    pub fn new(kv: KvStore, prefix: &[u8], public: SophosPublicKey) -> Self {
        SophosServer { kv, prefix: prefix.to_vec(), public }
    }

    /// Files one update entry.
    pub fn apply_update(&self, token: &SophosUpdateToken) {
        self.kv.set(&self.key(&token.ut), &token.masked_id);
    }

    /// Walks the permutation chain backwards, collecting
    /// `(st_bytes, masked_id)` pairs for the client to unmask.
    pub fn search(&self, token: &SophosSearchToken) -> Vec<(Vec<u8>, Vec<u8>)> {
        let width = self.public.width();
        let mut st = BigUint::from_bytes_be(&token.st);
        let mut out = Vec::with_capacity(token.count as usize);
        for _ in 0..token.count {
            let st_bytes = st.to_bytes_be_padded(width);
            let ut = h(1, &token.k_w, &st_bytes);
            if let Some(masked) = self.kv.get(&self.key(&ut)) {
                out.push((st_bytes.clone(), masked));
            }
            st = self.public.forward(&st);
        }
        out
    }

    /// Stored entry count under this prefix.
    pub fn entry_count(&self) -> usize {
        self.kv.keys_with_prefix(&self.prefix).len()
    }

    fn key(&self, ut: &[u8; 32]) -> Vec<u8> {
        let mut k = self.prefix.clone();
        k.extend_from_slice(ut);
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (SophosClient, SophosServer, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x50F0);
        let keypair = SophosKeypair::generate(&mut rng, 256); // small modulus for test speed
        let key = SymmetricKey::from_bytes(&[6u8; 32]);
        let server = SophosServer::new(KvStore::new(), b"sophos:", keypair.public().clone());
        let client = SophosClient::new(&key, keypair);
        (client, server, rng)
    }

    fn id(n: u8) -> DocId {
        DocId([n; 16])
    }

    #[test]
    fn trapdoor_permutation_inverts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let kp = SophosKeypair::generate(&mut rng, 128);
        let x = BigUint::from(123456789u64);
        let y = kp.backward(&x);
        assert_eq!(kp.public().forward(&y), x);
        assert_eq!(kp.public().forward(&kp.backward(&y)), y);
    }

    #[test]
    fn add_and_search() {
        let (mut client, server, mut rng) = setup();
        for n in 1..=4 {
            server.apply_update(&client.update_token(&mut rng, b"cancer", id(n)));
        }
        server.apply_update(&client.update_token(&mut rng, b"flu", id(9)));

        let token = client.search_token(b"cancer").unwrap();
        let results = server.search(&token);
        assert_eq!(results.len(), 4);
        let ids = client.resolve(b"cancer", &results).unwrap();
        assert_eq!(ids, vec![id(1), id(2), id(3), id(4)]);

        let ids = client.resolve(b"flu", &server.search(&client.search_token(b"flu").unwrap())).unwrap();
        assert_eq!(ids, vec![id(9)]);
    }

    #[test]
    fn unknown_keyword_no_token() {
        let (client, _, _) = setup();
        assert!(client.search_token(b"nope").is_none());
    }

    #[test]
    fn forward_privacy_shape() {
        // Consecutive updates of the same keyword produce unlinkable UTs,
        // and a search token only unlocks entries made *before* it.
        let (mut client, server, mut rng) = setup();
        let t1 = client.update_token(&mut rng, b"w", id(1));
        let t2 = client.update_token(&mut rng, b"w", id(2));
        assert_ne!(t1.ut, t2.ut);
        server.apply_update(&t1);
        server.apply_update(&t2);
        let token_at_2 = client.search_token(b"w").unwrap();
        // New update after the search token was issued:
        server.apply_update(&client.update_token(&mut rng, b"w", id(3)));
        // The old token cannot see the new entry (count = 2).
        let results = server.search(&token_at_2);
        let ids = client.resolve(b"w", &results).unwrap();
        assert_eq!(ids, vec![id(1), id(2)]);
        // A fresh token sees all three.
        let ids = client.resolve(b"w", &server.search(&client.search_token(b"w").unwrap())).unwrap();
        assert_eq!(ids, vec![id(1), id(2), id(3)]);
    }

    #[test]
    fn tokens_and_keys_encode_roundtrip() {
        let (mut client, _, mut rng) = setup();
        let up = client.update_token(&mut rng, b"w", id(1));
        assert_eq!(SophosUpdateToken::decode(&up.encode()).unwrap(), up);
        let st = client.search_token(b"w").unwrap();
        assert_eq!(SophosSearchToken::decode(&st.encode()).unwrap(), st);
        let pk = client.public_key().clone();
        assert_eq!(SophosPublicKey::decode(&pk.encode()).unwrap(), pk);
        assert!(SophosUpdateToken::decode(b"x").is_err());
    }

    #[test]
    fn keypair_encode_roundtrip_via_kms_bytes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let kp = SophosKeypair::generate(&mut rng, 128);
        let kp2 = SophosKeypair::decode(&kp.encode()).unwrap();
        let x = BigUint::from(42u64);
        assert_eq!(kp.backward(&x), kp2.backward(&x));
        assert_eq!(kp.public(), kp2.public());
    }

    #[test]
    fn state_export_import_continues_chain() {
        let (mut client, server, mut rng) = setup();
        server.apply_update(&client.update_token(&mut rng, b"w", id(1)));
        let state = client.export_state();
        let keypair = SophosKeypair::decode(&{
            // reuse same keypair bytes through encode/decode
            client.keypair.encode()
        })
        .unwrap();
        let key = SymmetricKey::from_bytes(&[6u8; 32]);
        let mut client2 = SophosClient::new(&key, keypair);
        client2.import_state(&state).unwrap();
        assert_eq!(client2.counter(b"w"), 1);
        server.apply_update(&client2.update_token(&mut rng, b"w", id(2)));
        let ids = client2.resolve(b"w", &server.search(&client2.search_token(b"w").unwrap())).unwrap();
        assert_eq!(ids, vec![id(1), id(2)]);
    }
}
