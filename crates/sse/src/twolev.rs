//! 2Lev — static, read-efficient SSE (Cash et al., NDSS 2014; the Clusion
//! library's workhorse index).
//!
//! Two-level layout, as the name says:
//!
//! * a **dictionary** keyed by PRF labels: small postings lists are stored
//!   inline; large lists store (server-decryptable) pointers into
//! * an **array** of fixed-size encrypted buckets, globally shuffled at
//!   setup so bucket positions reveal nothing about keyword grouping.
//!
//! The dictionary entry is sealed under a per-keyword *unlock* key that
//! only travels to the server inside a search token — so before any search
//! the server sees just an opaque dictionary and a shuffled bucket array
//! (snapshot security), and each search leaks the access pattern of one
//! keyword (its bucket positions and count), never document ids: postings
//! buckets are encrypted under a client-only key.

use std::sync::Arc;

use datablinder_kvstore::KvStore;
use datablinder_obs::Recorder;
use datablinder_primitives::cache::{CacheStats, CipherCache};
use datablinder_primitives::gcm::AesGcm;
use datablinder_primitives::keys::SymmetricKey;
use datablinder_primitives::prf::{HmacPrf, Prf};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::encoding::{Reader, Writer};
use crate::inverted::InvertedIndex;
use crate::{DocId, SseError};

/// Entries per array bucket (postings are padded to a multiple of this).
pub const BUCKET_CAPACITY: usize = 8;
/// Lists up to this length are inlined in the dictionary.
pub const INLINE_THRESHOLD: usize = BUCKET_CAPACITY;

/// Padding id marking unused bucket slots.
const PAD_ID: [u8; 16] = [0xFF; 16];

/// A search token: the dictionary label plus the unlock key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoLevToken {
    /// Dictionary label `PRF(K_w, "label")`.
    pub label: [u8; 32],
    /// Key that lets the server open the dictionary entry (pointers only).
    pub unlock: [u8; 32],
}

impl TwoLevToken {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.label).bytes(&self.unlock);
        w.finish()
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`SseError::Malformed`] on framing errors.
    pub fn decode(buf: &[u8]) -> Result<Self, SseError> {
        let mut r = Reader::new(buf);
        let label = r.array::<32>()?;
        let unlock = r.array::<32>()?;
        r.finish()?;
        Ok(TwoLevToken { label, unlock })
    }
}

/// Cached per-keyword bucket ciphers kept per client (bounded).
const BUCKET_CIPHER_CACHE: usize = 512;

/// The gateway-side half: key material and token/bucket cryptography.
pub struct TwoLevClient {
    prf: HmacPrf,
    master: SymmetricKey,
    ciphers: CipherCache<AesGcm>,
}

impl TwoLevClient {
    /// Creates a client.
    pub fn new(key: &SymmetricKey) -> Self {
        TwoLevClient {
            prf: HmacPrf::new(key.derive(b"2lev/prf", 32)),
            master: key.derive(b"2lev/enc", 32),
            ciphers: CipherCache::new(BUCKET_CIPHER_CACHE),
        }
    }

    /// Attaches an observability recorder to the bucket-cipher cache
    /// (`primitives.cipher_cache.*`).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.ciphers.set_recorder(recorder);
    }

    /// Counters of the bucket-cipher cache.
    pub fn cipher_cache_stats(&self) -> CacheStats {
        self.ciphers.stats()
    }

    fn label(&self, keyword: &[u8]) -> [u8; 32] {
        self.prf.eval_parts(&[b"label", keyword])
    }

    fn unlock_key(&self, keyword: &[u8]) -> [u8; 32] {
        self.prf.eval_parts(&[b"unlock", keyword])
    }

    /// Per-keyword bucket cipher (client-only), derived once per keyword
    /// and then served from the bounded cache — the key schedule and GHASH
    /// table are built exactly once per label.
    fn bucket_cipher(&self, keyword: &[u8]) -> Result<Arc<AesGcm>, SseError> {
        let mut label = b"bucket/".to_vec();
        label.extend_from_slice(keyword);
        self.ciphers.get_or_try_build(&label, || Ok(AesGcm::new(&self.master.derive(&label, 32))?))
    }

    /// Builds the encrypted structures from a plaintext inverted index and
    /// installs them into the server. Static: one-shot at setup.
    ///
    /// # Errors
    ///
    /// Propagates crypto and storage failures.
    pub fn setup<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        index: &InvertedIndex,
        server: &TwoLevServer,
    ) -> Result<(), SseError> {
        // Pass 1: produce all buckets so they can be globally shuffled.
        struct Pending {
            label: [u8; 32],
            unlock: [u8; 32],
            inline: Option<Vec<u8>>,
            buckets: Vec<Vec<u8>>, // encrypted buckets awaiting positions
        }
        let mut pending = Vec::new();
        for (keyword, postings) in index.iter() {
            let ids: Vec<DocId> = postings.iter().copied().collect();
            let cipher = self.bucket_cipher(keyword)?;
            if ids.len() <= INLINE_THRESHOLD {
                let blob = seal_bucket(&cipher, keyword, 0, &ids);
                pending.push(Pending {
                    label: self.label(keyword),
                    unlock: self.unlock_key(keyword),
                    inline: Some(blob),
                    buckets: Vec::new(),
                });
            } else {
                let buckets = seal_buckets(&cipher, keyword, &ids);
                pending.push(Pending {
                    label: self.label(keyword),
                    unlock: self.unlock_key(keyword),
                    inline: None,
                    buckets,
                });
            }
        }

        // Global shuffle: assign array positions randomly across keywords.
        let total: usize = pending.iter().map(|p| p.buckets.len()).sum();
        let mut positions: Vec<u64> = (0..total as u64).collect();
        positions.shuffle(rng);
        let mut next = 0usize;

        for p in pending {
            let entry_plain = match &p.inline {
                Some(blob) => {
                    let mut w = Writer::new();
                    w.u8(0).bytes(blob);
                    w.finish()
                }
                None => {
                    let mut w = Writer::new();
                    w.u8(1).u32(p.buckets.len() as u32);
                    for b in &p.buckets {
                        let pos = positions[next];
                        next += 1;
                        w.u64(pos);
                        server.put_bucket(pos, b);
                    }
                    w.finish()
                }
            };
            // Seal the dictionary entry under the unlock key with a
            // deterministic nonce (one-time static setup).
            let entry_cipher = AesGcm::new(&SymmetricKey::from_bytes(&p.unlock))?;
            let sealed = entry_cipher.seal(&[0u8; 12], b"2lev-dict", &entry_plain);
            server.put_dict(&p.label, &sealed);
        }
        Ok(())
    }

    /// The search token for a keyword.
    pub fn search_token(&self, keyword: &[u8]) -> TwoLevToken {
        TwoLevToken { label: self.label(keyword), unlock: self.unlock_key(keyword) }
    }

    /// Decrypts the buckets the server returned into document ids.
    ///
    /// # Errors
    ///
    /// Crypto failures on tampered buckets.
    pub fn resolve(&self, keyword: &[u8], buckets: &[Vec<u8>]) -> Result<Vec<DocId>, SseError> {
        let cipher = self.bucket_cipher(keyword)?;
        let mut aad = b"2lev-bucket/".to_vec();
        aad.extend_from_slice(keyword);
        // Open the whole result set as one batch through the shared cipher.
        let nonces: Vec<[u8; 12]> = (0..buckets.len() as u64).map(bucket_nonce).collect();
        let items: Vec<(&[u8; 12], &[u8])> = nonces.iter().zip(buckets).map(|(n, b)| (n, b.as_slice())).collect();
        let plains = cipher.open_many(&aad, &items)?;
        let mut out = Vec::new();
        for plain in &plains {
            out.extend(decode_bucket(plain)?);
        }
        out.sort();
        out.dedup();
        Ok(out)
    }
}

fn bucket_nonce(index: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[4..].copy_from_slice(&index.to_be_bytes());
    nonce
}

fn bucket_plain(ids: &[DocId]) -> Vec<u8> {
    let mut plain = Vec::with_capacity(BUCKET_CAPACITY * 16);
    for id in ids {
        plain.extend_from_slice(&id.0);
    }
    for _ in ids.len()..BUCKET_CAPACITY {
        plain.extend_from_slice(&PAD_ID);
    }
    plain
}

fn seal_bucket(cipher: &AesGcm, keyword: &[u8], index: u64, ids: &[DocId]) -> Vec<u8> {
    let mut aad = b"2lev-bucket/".to_vec();
    aad.extend_from_slice(keyword);
    cipher.seal(&bucket_nonce(index), &aad, &bucket_plain(ids))
}

/// Seals every [`BUCKET_CAPACITY`]-sized chunk of `ids` as one contiguous
/// batch through [`AesGcm::seal_many`] — one cipher context, one pass.
fn seal_buckets(cipher: &AesGcm, keyword: &[u8], ids: &[DocId]) -> Vec<Vec<u8>> {
    let mut aad = b"2lev-bucket/".to_vec();
    aad.extend_from_slice(keyword);
    let plains: Vec<Vec<u8>> = ids.chunks(BUCKET_CAPACITY).map(bucket_plain).collect();
    let nonces: Vec<[u8; 12]> = (0..plains.len() as u64).map(bucket_nonce).collect();
    let items: Vec<(&[u8; 12], &[u8])> = nonces.iter().zip(&plains).map(|(n, p)| (n, p.as_slice())).collect();
    cipher.seal_many(&aad, &items)
}

fn decode_bucket(plain: &[u8]) -> Result<Vec<DocId>, SseError> {
    if !plain.len().is_multiple_of(16) {
        return Err(SseError::Malformed("2lev bucket size"));
    }
    Ok(plain
        .chunks(16)
        .filter(|c| *c != PAD_ID)
        .map(|c| {
            let mut id = [0u8; 16];
            id.copy_from_slice(c);
            DocId(id)
        })
        .collect())
}

/// The cloud-side half: dictionary + array over the KV store.
pub struct TwoLevServer {
    kv: KvStore,
    prefix: Vec<u8>,
}

impl TwoLevServer {
    /// Creates a server storing under `prefix`.
    pub fn new(kv: KvStore, prefix: &[u8]) -> Self {
        TwoLevServer { kv, prefix: prefix.to_vec() }
    }

    fn dict_key(&self, label: &[u8; 32]) -> Vec<u8> {
        let mut k = self.prefix.clone();
        k.extend_from_slice(b"dict:");
        k.extend_from_slice(label);
        k
    }

    fn arr_key(&self, pos: u64) -> Vec<u8> {
        let mut k = self.prefix.clone();
        k.extend_from_slice(b"arr:");
        k.extend_from_slice(&pos.to_be_bytes());
        k
    }

    fn put_dict(&self, label: &[u8; 32], sealed: &[u8]) {
        self.kv.set(&self.dict_key(label), sealed);
    }

    fn put_bucket(&self, pos: u64, blob: &[u8]) {
        self.kv.set(&self.arr_key(pos), blob);
    }

    /// Executes a search: opens the dictionary entry with the token's
    /// unlock key, follows pointers into the array, and returns the
    /// (still client-encrypted) buckets in chunk order.
    ///
    /// Returns an empty vec for unknown labels.
    ///
    /// # Errors
    ///
    /// [`SseError::Crypto`] if the unlock key does not open the entry,
    /// [`SseError::Malformed`] on corrupt entries.
    pub fn search(&self, token: &TwoLevToken) -> Result<Vec<Vec<u8>>, SseError> {
        let Some(sealed) = self.kv.get(&self.dict_key(&token.label)) else {
            return Ok(Vec::new());
        };
        let entry_cipher = AesGcm::new(&SymmetricKey::from_bytes(&token.unlock))?;
        let plain = entry_cipher.open(&[0u8; 12], b"2lev-dict", &sealed)?;
        let mut r = Reader::new(&plain);
        match r.u8()? {
            0 => {
                let blob = r.bytes()?;
                r.finish()?;
                Ok(vec![blob])
            }
            1 => {
                let count = r.u32()? as usize;
                let mut out = Vec::with_capacity(count);
                for _ in 0..count {
                    let pos = r.u64()?;
                    let blob = self.kv.get(&self.arr_key(pos)).ok_or(SseError::Malformed("2lev dangling pointer"))?;
                    out.push(blob);
                }
                r.finish()?;
                Ok(out)
            }
            _ => Err(SseError::Malformed("2lev entry kind")),
        }
    }

    /// Dictionary entry count.
    pub fn dict_size(&self) -> usize {
        let mut k = self.prefix.clone();
        k.extend_from_slice(b"dict:");
        self.kv.keys_with_prefix(&k).len()
    }

    /// Array bucket count.
    pub fn array_size(&self) -> usize {
        let mut k = self.prefix.clone();
        k.extend_from_slice(b"arr:");
        self.kv.keys_with_prefix(&k).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn id(n: u16) -> DocId {
        let mut b = [0u8; 16];
        b[..2].copy_from_slice(&n.to_be_bytes());
        DocId(b)
    }

    fn setup(index: &InvertedIndex) -> (TwoLevClient, TwoLevServer) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let client = TwoLevClient::new(&SymmetricKey::from_bytes(&[2u8; 32]));
        let server = TwoLevServer::new(KvStore::new(), b"2lev:");
        client.setup(&mut rng, index, &server).unwrap();
        (client, server)
    }

    #[test]
    fn small_lists_inline() {
        let mut idx = InvertedIndex::new();
        idx.add(b"rare", id(1));
        idx.add(b"rare", id(2));
        let (client, server) = setup(&idx);
        assert_eq!(server.dict_size(), 1);
        assert_eq!(server.array_size(), 0, "small lists never hit the array");
        let buckets = server.search(&client.search_token(b"rare")).unwrap();
        let ids = client.resolve(b"rare", &buckets).unwrap();
        assert_eq!(ids, vec![id(1), id(2)]);
    }

    #[test]
    fn large_lists_use_array() {
        let mut idx = InvertedIndex::new();
        for n in 0..50 {
            idx.add(b"common", id(n));
        }
        idx.add(b"rare", id(500));
        let (client, server) = setup(&idx);
        assert_eq!(server.array_size(), 50usize.div_ceil(BUCKET_CAPACITY));
        let buckets = server.search(&client.search_token(b"common")).unwrap();
        let ids = client.resolve(b"common", &buckets).unwrap();
        assert_eq!(ids, (0..50).map(id).collect::<Vec<_>>());
    }

    #[test]
    fn unknown_keyword_empty() {
        let mut idx = InvertedIndex::new();
        idx.add(b"w", id(1));
        let (client, server) = setup(&idx);
        let buckets = server.search(&client.search_token(b"other")).unwrap();
        assert!(buckets.is_empty());
        assert_eq!(client.resolve(b"other", &buckets).unwrap(), vec![]);
    }

    #[test]
    fn wrong_unlock_key_fails_closed() {
        let mut idx = InvertedIndex::new();
        idx.add(b"w", id(1));
        let (client, server) = setup(&idx);
        let mut token = client.search_token(b"w");
        token.unlock[0] ^= 1;
        assert!(matches!(server.search(&token), Err(SseError::Crypto(_))));
    }

    #[test]
    fn padding_hides_exact_sizes() {
        // 1-posting and 8-posting keywords produce identical inline blob sizes.
        let mut idx = InvertedIndex::new();
        idx.add(b"one", id(1));
        for n in 0..BUCKET_CAPACITY as u16 {
            idx.add(b"eight", id(n));
        }
        let (client, server) = setup(&idx);
        let b1 = server.search(&client.search_token(b"one")).unwrap();
        let b8 = server.search(&client.search_token(b"eight")).unwrap();
        assert_eq!(b1[0].len(), b8[0].len());
    }

    #[test]
    fn token_encode_roundtrip() {
        let client = TwoLevClient::new(&SymmetricKey::from_bytes(&[2u8; 32]));
        let t = client.search_token(b"w");
        assert_eq!(TwoLevToken::decode(&t.encode()).unwrap(), t);
        assert!(TwoLevToken::decode(b"short").is_err());
    }

    #[test]
    fn one_key_schedule_per_keyword_label() {
        // Regression for the per-op rebuild: repeated searches over the
        // same keywords must build each bucket cipher exactly once.
        let mut idx = InvertedIndex::new();
        for n in 0..40 {
            idx.add(b"alpha", id(n));
            idx.add(b"beta", id(n + 100));
        }
        let (client, server) = setup(&idx);
        let after_setup = client.cipher_cache_stats();
        assert_eq!(after_setup.misses, 2, "setup builds one cipher per keyword");
        for _ in 0..5 {
            for kw in [&b"alpha"[..], b"beta"] {
                let buckets = server.search(&client.search_token(kw)).unwrap();
                client.resolve(kw, &buckets).unwrap();
            }
        }
        let s = client.cipher_cache_stats();
        assert_eq!(s.misses, 2, "searches reuse the cached schedules");
        assert_eq!(s.hits, after_setup.hits + 10);
    }

    #[test]
    fn cross_keyword_bucket_isolation() {
        // Buckets are bound to their keyword via AAD: resolving keyword A's
        // buckets as keyword B must fail, not silently return wrong ids.
        let mut idx = InvertedIndex::new();
        for n in 0..20 {
            idx.add(b"a", id(n));
            idx.add(b"b", id(n + 100));
        }
        let (client, server) = setup(&idx);
        let buckets_a = server.search(&client.search_token(b"a")).unwrap();
        assert!(client.resolve(b"b", &buckets_a).is_err());
    }
}
