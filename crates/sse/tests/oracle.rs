//! Property tests: every SSE scheme's search results must equal a
//! plaintext oracle over random update sequences (the crate-level
//! correctness contract of searchable encryption).

use std::collections::BTreeSet;

use datablinder_kvstore::KvStore;
use datablinder_primitives::keys::SymmetricKey;
use datablinder_sse::biex::{Biex2LevClient, Biex2LevServer, BiexQuery, BiexZmfClient, BiexZmfServer};
use datablinder_sse::inverted::InvertedIndex;
use datablinder_sse::mitra::{MitraClient, MitraServer};
use datablinder_sse::sophos::{SophosClient, SophosKeypair, SophosServer};
use datablinder_sse::twolev::{TwoLevClient, TwoLevServer};
use datablinder_sse::{DocId, UpdateOp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
enum Update {
    Add(u8, u8), // (keyword, doc)
    Delete(u8, u8),
}

fn arb_updates() -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u8..6, 0u8..30).prop_map(|(k, d)| Update::Add(k, d)),
            1 => (0u8..6, 0u8..30).prop_map(|(k, d)| Update::Delete(k, d)),
        ],
        0..60,
    )
}

fn kw(k: u8) -> Vec<u8> {
    format!("kw-{k}").into_bytes()
}

fn id(d: u8) -> DocId {
    DocId([d; 16])
}

/// Oracle semantics: per keyword, the live set after applying the
/// add/delete sequence in order.
fn oracle(updates: &[Update]) -> Vec<BTreeSet<u8>> {
    let mut sets = vec![BTreeSet::new(); 6];
    for u in updates {
        match *u {
            Update::Add(k, d) => {
                sets[k as usize].insert(d);
            }
            Update::Delete(k, d) => {
                sets[k as usize].remove(&d);
            }
        }
    }
    sets
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn mitra_matches_oracle(updates in arb_updates()) {
        let mut client = MitraClient::new(&SymmetricKey::from_bytes(&[1u8; 32]));
        let server = MitraServer::new(KvStore::new(), b"m:");
        for u in &updates {
            let token = match *u {
                Update::Add(k, d) => client.update_token(&kw(k), id(d), UpdateOp::Add),
                Update::Delete(k, d) => client.update_token(&kw(k), id(d), UpdateOp::Delete),
            };
            server.apply_update(&token);
        }
        let expect = oracle(&updates);
        for k in 0u8..6 {
            let results = server.search(&client.search_token(&kw(k)));
            let got: BTreeSet<u8> = client.resolve(&kw(k), &results).unwrap().into_iter().map(|i| i.0[0]).collect();
            prop_assert_eq!(&got, &expect[k as usize], "keyword {}", k);
        }
    }

    #[test]
    fn sophos_matches_oracle_on_adds(updates in arb_updates()) {
        // Sophos is add-only at the scheme level: the oracle here counts
        // only additions (dedup by (k, d)).
        let mut rng = StdRng::seed_from_u64(9);
        let keypair = SophosKeypair::generate(&mut rng, 128);
        let server = SophosServer::new(KvStore::new(), b"s:", keypair.public().clone());
        let mut client = SophosClient::new(&SymmetricKey::from_bytes(&[2u8; 32]), keypair);
        let mut expect = vec![BTreeSet::new(); 6];
        for u in &updates {
            if let Update::Add(k, d) = *u {
                server.apply_update(&client.update_token(&mut rng, &kw(k), id(d)));
                expect[k as usize].insert(d);
            }
        }
        for k in 0u8..6 {
            let got: BTreeSet<u8> = match client.search_token(&kw(k)) {
                None => BTreeSet::new(),
                Some(token) => client.resolve(&kw(k), &server.search(&token)).unwrap().into_iter().map(|i| i.0[0]).collect(),
            };
            prop_assert_eq!(&got, &expect[k as usize], "keyword {}", k);
        }
    }

    #[test]
    fn static_schemes_match_oracle(updates in arb_updates()) {
        // 2Lev / BIEX are static: build the index from the final oracle
        // state and verify single-keyword and conjunctive searches.
        let expect = oracle(&updates);
        let mut idx = InvertedIndex::new();
        for (k, set) in expect.iter().enumerate() {
            for &d in set {
                idx.add(&kw(k as u8), id(d));
            }
        }
        let mut rng = StdRng::seed_from_u64(10);

        // 2Lev single-keyword.
        let c2lev = TwoLevClient::new(&SymmetricKey::from_bytes(&[3u8; 32]));
        let s2lev = TwoLevServer::new(KvStore::new(), b"t:");
        c2lev.setup(&mut rng, &idx, &s2lev).unwrap();
        for k in 0u8..6 {
            let buckets = s2lev.search(&c2lev.search_token(&kw(k))).unwrap();
            let got: BTreeSet<u8> = c2lev.resolve(&kw(k), &buckets).unwrap().into_iter().map(|i| i.0[0]).collect();
            prop_assert_eq!(&got, &expect[k as usize], "2lev keyword {}", k);
        }

        // BIEX conjunction kw-0 AND kw-1 under both variants.
        let conj_expect: BTreeSet<u8> = expect[0].intersection(&expect[1]).copied().collect();
        let query = BiexQuery::conjunction(vec![kw(0), kw(1)]);

        let cb = Biex2LevClient::new(&SymmetricKey::from_bytes(&[4u8; 32]));
        let sb = Biex2LevServer::new(KvStore::new(), b"b:");
        cb.setup(&mut rng, &idx, &sb).unwrap();
        let resp = sb.search(&cb.search_token(&query)).unwrap();
        let got: BTreeSet<u8> = cb.resolve(&query, &resp).unwrap().into_iter().map(|i| i.0[0]).collect();
        prop_assert_eq!(&got, &conj_expect, "biex-2lev conjunction");

        let cz = BiexZmfClient::new(&SymmetricKey::from_bytes(&[5u8; 32]));
        let sz = BiexZmfServer::new(KvStore::new(), b"z:");
        cz.setup(&mut rng, &idx, &sz).unwrap();
        let resp = sz.search(&cz.search_token(&query)).unwrap();
        let got: BTreeSet<u8> = cz.resolve(&query, &resp).unwrap().into_iter().map(|i| i.0[0]).collect();
        // ZMF admits Bloom false positives: superset, bounded growth.
        prop_assert!(got.is_superset(&conj_expect), "zmf false negative");
        prop_assert!(got.len() <= conj_expect.len() + 2, "zmf fp explosion");
    }
}
