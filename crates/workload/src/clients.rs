//! The three evaluation scenarios of §5.2 as pluggable clients:
//!
//! * [`PlainClient`] — **S_A**: "the application only does data operations
//!   and does not use the middleware or any tactic";
//! * [`HardcodedClient`] — **S_B**: "the data protection tactics are
//!   implemented hard-coded into the application without using the
//!   middleware" — the same 8 tactics (Mitra, RND, Paillier, five times
//!   DET), statically dispatched, no registry/policy/schema machinery;
//! * [`MiddlewareClient`] — **S_C**: "the application uses DataBlinder to
//!   enforce the required data protection tactics".
//!
//! All three run the paper's medical-document workload against the same
//! cloud engine over the same channel, so the measured differences are
//! exactly (a) tactic cost (S_A→S_B) and (b) middleware overhead
//! (S_B→S_C).

use datablinder_core::cloud::{get_many_payload, with_collection};
use datablinder_core::cloudproto::{FindIdsEq, PaillierSum, PaillierSumResponse};
use datablinder_core::gateway::GatewayEngine;
use datablinder_core::model::{AggFn, FieldAnnotation, FieldOp, FieldType, ProtectionClass, Schema};
use datablinder_core::tactics::{decode_ids, shadow_field};
use datablinder_core::wire::{canonical_bytes, decode_documents, decode_value, encode_document, field_keyword};
use datablinder_docstore::{Document, Value};
use datablinder_kms::Kms;
use datablinder_netsim::{Channel, ResilienceConfig, ResilientChannel};
use datablinder_obs::Recorder;
use datablinder_paillier::{Ciphertext, Keypair};
use datablinder_primitives::keys::SymmetricKey;
use datablinder_sse::det::DetCipher;
use datablinder_sse::encoding::Reader;
use datablinder_sse::mitra::MitraClient;
use datablinder_sse::rnd::RndCipher;
use datablinder_sse::{DocId, UpdateOp};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The operations the benchmark issues (the paper's balanced
/// read / write / aggregate mix).
pub trait BenchClient: Send {
    /// Write: insert one observation (secure indexing included).
    ///
    /// # Errors
    ///
    /// Any scenario failure, stringified.
    fn insert(&mut self, doc: &Document) -> Result<(), String>;

    /// Read: equality search on `subject`, returning the hit count after
    /// full document retrieval and decryption.
    ///
    /// # Errors
    ///
    /// Any scenario failure, stringified.
    fn search_subject(&mut self, subject: &str) -> Result<usize, String>;

    /// Aggregate: average of `value` over the whole collection
    /// (homomorphic where tactics apply).
    ///
    /// # Errors
    ///
    /// Any scenario failure, stringified.
    fn average_value(&mut self) -> Result<f64, String>;

    /// Scenario label (`S_A`, `S_B`, `S_C`).
    fn label(&self) -> &'static str;
}

/// The benchmark schema matching the paper's §5.2 tactic census: "there
/// were in total 8 tactics involved, namely Mitra, RND, Paillier, and
/// five times DET".
pub fn bench_schema() -> Schema {
    bench_schema_named("observation")
}

/// [`bench_schema`] under a custom collection name (per-worker isolation
/// in multi-worker runs: each worker is an independent tenant, like the
/// per-user sessions of the paper's Locust users).
pub fn bench_schema_named(name: &str) -> Schema {
    use FieldOp::*;
    Schema::new(name)
        .plain_field("identifier", FieldType::Integer, true)
        .plain_field("interpretation", FieldType::Text, false)
        // C4 → DET (equalities admissible, cheapest equality tactic).
        .sensitive_field(
            "status",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C4, vec![Insert, Equality]),
        )
        .sensitive_field(
            "code",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C4, vec![Insert, Equality]),
        )
        .sensitive_field(
            "effective",
            FieldType::Integer,
            true,
            FieldAnnotation::new(ProtectionClass::C5, vec![Insert, Equality]),
        )
        .sensitive_field(
            "issued",
            FieldType::Integer,
            true,
            FieldAnnotation::new(ProtectionClass::C5, vec![Insert, Equality]),
        )
        // C2 → Mitra.
        .sensitive_field(
            "subject",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![Insert, Equality]),
        )
        // C1 → RND.
        .sensitive_field("performer", FieldType::Text, true, FieldAnnotation::new(ProtectionClass::C1, vec![Insert]))
        // 5th DET + Paillier.
        .sensitive_field(
            "value",
            FieldType::Float,
            true,
            FieldAnnotation::new(ProtectionClass::C4, vec![Insert, Equality]).with_aggs(vec![AggFn::Avg]),
        )
}

// ====================================================================
// S_A
// ====================================================================

/// The no-protection baseline: plaintext documents straight to the cloud.
pub struct PlainClient {
    channel: Channel,
    collection: String,
    counter: u64,
    worker: u64,
}

impl PlainClient {
    /// Creates a client for `worker` (ids are worker-disambiguated).
    pub fn new(channel: Channel, worker: u64) -> Self {
        let client = PlainClient { channel, collection: format!("observation-w{worker}"), counter: 0, worker };
        // Index the search field like any sane deployment would.
        let _ = client.channel.call("doc/ensure_index", &with_collection(&client.collection, b"subject"));
        client
    }

    fn next_id(&mut self) -> DocId {
        self.counter += 1;
        let mut id = [0u8; 16];
        id[..8].copy_from_slice(&self.worker.to_be_bytes());
        id[8..].copy_from_slice(&self.counter.to_be_bytes());
        DocId(id)
    }
}

impl BenchClient for PlainClient {
    fn insert(&mut self, doc: &Document) -> Result<(), String> {
        let id = self.next_id();
        let mut stored = Document::new(id.to_hex());
        for (f, v) in doc.iter() {
            stored.set(f.clone(), v.clone());
        }
        self.channel
            .call("doc/insert", &with_collection(&self.collection, &encode_document(&stored)))
            .map_err(|e| e.to_string())?;
        Ok(())
    }

    fn search_subject(&mut self, subject: &str) -> Result<usize, String> {
        let req =
            FindIdsEq { collection: self.collection.clone(), field: "subject".into(), value: Value::from(subject) };
        let out = self.channel.call("doc/find_ids_eq", &req.encode()).map_err(|e| e.to_string())?;
        let ids = decode_ids(&out).map_err(|e| e.to_string())?;
        if ids.is_empty() {
            return Ok(0);
        }
        let docs =
            self.channel.call("doc/get_many", &get_many_payload(&self.collection, &ids)).map_err(|e| e.to_string())?;
        let docs = decode_documents(&docs).map_err(|e| e.to_string())?;
        Ok(docs.len())
    }

    fn average_value(&mut self) -> Result<f64, String> {
        let out = self
            .channel
            .call("doc/agg_plain", &with_collection(&self.collection, b"value"))
            .map_err(|e| e.to_string())?;
        if out.len() != 16 {
            return Err("agg_plain response".into());
        }
        let sum = f64::from_be_bytes(out[..8].try_into().unwrap());
        let count = u64::from_be_bytes(out[8..].try_into().unwrap());
        Ok(if count == 0 { 0.0 } else { sum / count as f64 })
    }

    fn label(&self) -> &'static str {
        "S_A"
    }
}

// ====================================================================
// S_B
// ====================================================================

/// DET-protected fields in the hard-coded scenario.
const DET_FIELDS: [&str; 5] = ["status", "code", "effective", "issued", "value"];

/// Tactics hard-wired into the application: no registry, no policies, no
/// schema validation — the S_B reference DataBlinder is compared against.
pub struct HardcodedClient {
    channel: Channel,
    collection: String,
    det: Vec<DetCipher>,
    rnd: RndCipher,
    mitra: MitraClient,
    paillier: Keypair,
    paillier_setup_sent: bool,
    scope: String,
    rng: StdRng,
    counter: u64,
    worker: u64,
}

impl HardcodedClient {
    /// Creates the client with freshly derived keys (mirrors an app
    /// embedding its own key material).
    ///
    /// # Panics
    ///
    /// Panics on key-schedule failures (cannot happen for 32-byte keys).
    pub fn new(channel: Channel, worker: u64, paillier_bits: usize) -> Self {
        let master = SymmetricKey::from_bytes(&{
            let mut k = [7u8; 32];
            k[..8].copy_from_slice(&worker.to_be_bytes());
            k
        });
        let mut rng = StdRng::seed_from_u64(0xB0B + worker);
        let det = DET_FIELDS
            .iter()
            .map(|f| DetCipher::new(&master.derive(format!("det/{f}").as_bytes(), 32)).expect("det key"))
            .collect();
        let client = HardcodedClient {
            channel,
            collection: format!("observation-w{worker}"),
            det,
            rnd: RndCipher::new(&master.derive(b"rnd/performer", 32)).expect("rnd key"),
            mitra: MitraClient::new(&master.derive(b"mitra/subject", 32)),
            paillier: Keypair::generate(&mut rng, paillier_bits),
            paillier_setup_sent: false,
            scope: format!("hardcoded-w{worker}"),
            rng,
            counter: 0,
            worker,
        };
        for f in DET_FIELDS {
            let _ = client
                .channel
                .call("doc/ensure_index", &with_collection(&client.collection, shadow_field(f, "det").as_bytes()));
        }
        client
    }

    fn next_id(&mut self) -> DocId {
        self.counter += 1;
        let mut id = [0u8; 16];
        id[..8].copy_from_slice(&self.worker.to_be_bytes());
        id[8..].copy_from_slice(&self.counter.to_be_bytes());
        DocId(id)
    }

    fn ensure_paillier_setup(&mut self) -> Result<(), String> {
        if self.paillier_setup_sent {
            return Ok(());
        }
        self.channel
            .call(&format!("tactic/paillier/{}/setup", self.scope), &self.paillier.public().to_bytes())
            .map_err(|e| e.to_string())?;
        self.paillier_setup_sent = true;
        Ok(())
    }
}

impl BenchClient for HardcodedClient {
    fn insert(&mut self, doc: &Document) -> Result<(), String> {
        let id = self.next_id();
        self.ensure_paillier_setup()?;
        let mut stored = Document::new(id.to_hex());
        // Plain metadata fields.
        for f in ["identifier", "interpretation"] {
            if let Some(v) = doc.get(f) {
                stored.set(f, v.clone());
            }
        }
        // 5 × DET.
        for (i, f) in DET_FIELDS.iter().enumerate() {
            let v = doc.get(f).ok_or_else(|| format!("missing {f}"))?;
            stored.set(shadow_field(f, "det"), Value::Bytes(self.det[i].encrypt(&canonical_bytes(v))));
        }
        // RND performer.
        let performer = doc.get("performer").ok_or("missing performer")?;
        stored.set(
            shadow_field("performer", "rnd"),
            Value::Bytes(self.rnd.encrypt(&mut self.rng, &canonical_bytes(performer))),
        );
        // Mitra subject index.
        let subject = doc.get("subject").ok_or("missing subject")?;
        let kw = field_keyword("subject", subject);
        let token = self.mitra.update_token(&kw, id, UpdateOp::Add);
        self.channel
            .call(&format!("tactic/mitra/{}/update", self.scope), &token.encode())
            .map_err(|e| e.to_string())?;
        // RND for subject payload (recoverable storage, like the engine).
        stored.set(
            shadow_field("subject", "rnd"),
            Value::Bytes(self.rnd.encrypt(&mut self.rng, &canonical_bytes(subject))),
        );
        // Paillier value.
        let value = doc.get("value").and_then(Value::as_f64).ok_or("missing value")?;
        let scaled = (value * 1000.0).round() as u64;
        let ct = self.paillier.public().encrypt_u64(&mut self.rng, scaled);
        stored.set(shadow_field("value", "phe"), Value::Bytes(ct.to_bytes()));

        self.channel
            .call("doc/insert", &with_collection(&self.collection, &encode_document(&stored)))
            .map_err(|e| e.to_string())?;
        Ok(())
    }

    fn search_subject(&mut self, subject: &str) -> Result<usize, String> {
        let kw = field_keyword("subject", &Value::from(subject));
        let token = self.mitra.search_token(&kw);
        let out = self
            .channel
            .call(&format!("tactic/mitra/{}/search", self.scope), &token.encode())
            .map_err(|e| e.to_string())?;
        let mut r = Reader::new(&out);
        let values = r.list().map_err(|e| e.to_string())?;
        let ids = self.mitra.resolve(&kw, &values).map_err(|e| e.to_string())?;
        if ids.is_empty() {
            return Ok(0);
        }
        let docs =
            self.channel.call("doc/get_many", &get_many_payload(&self.collection, &ids)).map_err(|e| e.to_string())?;
        let docs = decode_documents(&docs).map_err(|e| e.to_string())?;
        // Decrypt the full documents like a real application (and like the
        // middleware's retrieval path) would: all five DET fields plus the
        // two RND payloads.
        let mut count = 0usize;
        for d in &docs {
            for (i, f) in DET_FIELDS.iter().enumerate() {
                if let Some(Value::Bytes(ct)) = d.get(&shadow_field(f, "det")) {
                    let plain = self.det[i].decrypt(ct).map_err(|e| e.to_string())?;
                    let mut slice = plain.as_slice();
                    let _ = decode_value(&mut slice).map_err(|e| e.to_string())?;
                }
            }
            for f in ["performer", "subject"] {
                if let Some(Value::Bytes(ct)) = d.get(&shadow_field(f, "rnd")) {
                    let plain = self.rnd.decrypt(ct).map_err(|e| e.to_string())?;
                    let mut slice = plain.as_slice();
                    let _ = decode_value(&mut slice).map_err(|e| e.to_string())?;
                }
            }
            count += 1;
        }
        Ok(count)
    }

    fn average_value(&mut self) -> Result<f64, String> {
        self.ensure_paillier_setup()?;
        let req = PaillierSum { collection: self.collection.clone(), field: shadow_field("value", "phe"), ids: vec![] };
        let out = self
            .channel
            .call(&format!("tactic/paillier/{}/sum", self.scope), &req.encode())
            .map_err(|e| e.to_string())?;
        let resp = PaillierSumResponse::decode(&out).map_err(|e| e.to_string())?;
        if resp.count == 0 {
            return Ok(0.0);
        }
        let sum = self.paillier.decrypt(&Ciphertext::from_bytes(&resp.ciphertext)).map_err(|e| e.to_string())?;
        let sum = sum.to_u64().ok_or("sum overflow")? as f64 / 1000.0;
        Ok(sum / resp.count as f64)
    }

    fn label(&self) -> &'static str {
        "S_B"
    }
}

// ====================================================================
// S_C
// ====================================================================

/// The full middleware: schema registration, policy-driven selection,
/// runtime tactic loading — everything S_B skips.
pub struct MiddlewareClient {
    engine: GatewayEngine,
    schema: String,
}

impl MiddlewareClient {
    /// Creates the client over a fresh gateway engine.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark schema fails to register (a bug, not an
    /// input condition).
    pub fn new(channel: Channel, worker: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(0x5C + worker);
        let kms = Kms::generate(&mut rng);
        let engine = GatewayEngine::new(&format!("bench-w{worker}"), kms, channel, 0xC0DE + worker);
        let schema = format!("observation-w{worker}");
        engine.register_schema(bench_schema_named(&schema)).expect("bench schema registers");
        MiddlewareClient { engine, schema }
    }

    /// As [`MiddlewareClient::new`], but with `recorder` installed on the
    /// gateway before the schema registers, so every route the workload
    /// drives lands in the shared recorder (and through it, the channel
    /// metrics of the gateway↔cloud path). Workers typically share one
    /// recorder: its internals are sharded atomics, clones share state.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark schema fails to register (a bug, not an
    /// input condition).
    pub fn new_observed(channel: Channel, worker: u64, recorder: Recorder) -> Self {
        let mut rng = StdRng::seed_from_u64(0x5C + worker);
        let kms = Kms::generate(&mut rng);
        let mut engine = GatewayEngine::new(&format!("bench-w{worker}"), kms, channel, 0xC0DE + worker);
        engine.set_recorder(recorder);
        let schema = format!("observation-w{worker}");
        engine.register_schema(bench_schema_named(&schema)).expect("bench schema registers");
        MiddlewareClient { engine, schema }
    }

    /// Access to the engine (used by the healthcare example and tests).
    pub fn engine_mut(&mut self) -> &mut GatewayEngine {
        &mut self.engine
    }
}

impl BenchClient for MiddlewareClient {
    fn insert(&mut self, doc: &Document) -> Result<(), String> {
        self.engine.insert(&self.schema, doc).map(|_| ()).map_err(|e| e.to_string())
    }

    fn search_subject(&mut self, subject: &str) -> Result<usize, String> {
        self.engine
            .find_equal(&self.schema, "subject", &Value::from(subject))
            .map(|docs| docs.len())
            .map_err(|e| e.to_string())
    }

    fn average_value(&mut self) -> Result<f64, String> {
        self.engine.aggregate(&self.schema, "value", AggFn::Avg, None).map_err(|e| e.to_string())
    }

    fn label(&self) -> &'static str {
        "S_C"
    }
}

// ====================================================================
// S_C, shared gateway
// ====================================================================

/// Collection name used by shared-gateway runs (one tenant, many threads —
/// in contrast to the per-worker collections of the per-worker clients).
pub const SHARED_SCHEMA: &str = "observation-shared";

/// Builds ONE gateway engine for all workers to share: registers the
/// benchmark schema, installs `recorder`, and (optionally) attaches a
/// worker pool for parallel batch encryption. This is the deployment shape
/// the `&self` engine routes exist for — one middleware instance behind
/// many application threads, not one engine per thread.
///
/// # Panics
///
/// Panics if the benchmark schema fails to register (a bug, not an input
/// condition).
pub fn shared_gateway(
    channel: Channel,
    recorder: Recorder,
    pool: Option<std::sync::Arc<datablinder_core::pool::WorkerPool>>,
) -> std::sync::Arc<GatewayEngine> {
    let resilient = ResilientChannel::new(channel, ResilienceConfig { seed: 0xC0DE, ..ResilienceConfig::default() });
    shared_gateway_over(resilient, recorder, pool)
}

/// [`shared_gateway`] over any pre-wrapped resilient transport — the same
/// engine, schema and seeds whether the hop underneath is the simulated
/// channel or a real TCP connection to `datablinder-cloudd` (the `--tcp`
/// bench rung uses this).
///
/// # Panics
///
/// Panics if the benchmark schema fails to register (a bug, not an input
/// condition).
pub fn shared_gateway_over(
    channel: ResilientChannel,
    recorder: Recorder,
    pool: Option<std::sync::Arc<datablinder_core::pool::WorkerPool>>,
) -> std::sync::Arc<GatewayEngine> {
    let mut rng = StdRng::seed_from_u64(0x5C);
    let kms = Kms::generate(&mut rng);
    let mut engine = GatewayEngine::with_resilience("bench-shared", kms, channel, 0xC0DE);
    engine.set_recorder(recorder);
    if let Some(pool) = pool {
        engine.set_worker_pool(pool);
    }
    engine.register_schema(bench_schema_named(SHARED_SCHEMA)).expect("bench schema registers");
    std::sync::Arc::new(engine)
}

/// A thin per-worker handle onto one shared [`GatewayEngine`]: every
/// worker issues its operations against the *same* engine instance, so a
/// run measures the engine's internal concurrency (sharded locks,
/// per-tactic mutexes) instead of N independent gateways.
pub struct SharedMiddlewareClient {
    engine: std::sync::Arc<GatewayEngine>,
}

impl SharedMiddlewareClient {
    /// Wraps a handle to `engine` (built by [`shared_gateway`]).
    pub fn new(engine: std::sync::Arc<GatewayEngine>) -> Self {
        SharedMiddlewareClient { engine }
    }
}

impl BenchClient for SharedMiddlewareClient {
    fn insert(&mut self, doc: &Document) -> Result<(), String> {
        self.engine.insert(SHARED_SCHEMA, doc).map(|_| ()).map_err(|e| e.to_string())
    }

    fn search_subject(&mut self, subject: &str) -> Result<usize, String> {
        self.engine
            .find_equal(SHARED_SCHEMA, "subject", &Value::from(subject))
            .map(|docs| docs.len())
            .map_err(|e| e.to_string())
    }

    fn average_value(&mut self) -> Result<f64, String> {
        self.engine.aggregate(SHARED_SCHEMA, "value", AggFn::Avg, None).map_err(|e| e.to_string())
    }

    fn label(&self) -> &'static str {
        "S_C/shared"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablinder_core::cloud::CloudEngine;
    use datablinder_fhir::ObservationGenerator;
    use datablinder_netsim::LatencyModel;

    fn channel() -> Channel {
        Channel::connect(CloudEngine::new(), LatencyModel::instant())
    }

    fn drive(client: &mut dyn BenchClient) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut gen = ObservationGenerator::new(5);
        let mut docs = Vec::new();
        for _ in 0..20 {
            let doc = gen.generate(&mut rng);
            client.insert(&doc).unwrap();
            docs.push(doc);
        }
        // Search for a known subject: count hits against the oracle.
        let subject = docs[0].get("subject").unwrap().as_str().unwrap().to_string();
        let expect = docs.iter().filter(|d| d.get("subject").unwrap().as_str() == Some(&subject)).count();
        assert_eq!(client.search_subject(&subject).unwrap(), expect, "{}", client.label());
        assert_eq!(client.search_subject("Nobody").unwrap(), 0);
        // Average agrees with the oracle within fixed-point error.
        let oracle: f64 =
            docs.iter().map(|d| d.get("value").unwrap().as_f64().unwrap()).sum::<f64>() / docs.len() as f64;
        let avg = client.average_value().unwrap();
        assert!((avg - oracle).abs() < 0.01, "{}: {avg} vs {oracle}", client.label());
    }

    #[test]
    fn plain_client_correct() {
        drive(&mut PlainClient::new(channel(), 0));
    }

    #[test]
    fn hardcoded_client_correct() {
        drive(&mut HardcodedClient::new(channel(), 0, 256));
    }

    #[test]
    fn middleware_client_correct() {
        drive(&mut MiddlewareClient::new(channel(), 0));
    }

    #[test]
    fn bench_schema_uses_the_papers_8_tactics() {
        let mut client = MiddlewareClient::new(channel(), 9);
        let engine = client.engine_mut();
        let mut det_count = 0;
        for field in ["status", "code", "effective", "issued", "subject", "performer", "value"] {
            let sel = engine.selection("observation-w9", field).unwrap();
            for t in sel.listed_tactics() {
                if t == "det" {
                    det_count += 1;
                }
            }
        }
        assert_eq!(det_count, 5, "five times DET");
        assert_eq!(engine.selection("observation-w9", "subject").unwrap().listed_tactics(), vec!["mitra"]);
        assert_eq!(engine.selection("observation-w9", "performer").unwrap().listed_tactics(), vec!["rnd"]);
        assert!(engine
            .selection("observation-w9", "value")
            .unwrap()
            .listed_tactics()
            .contains(&"paillier".to_string()));
    }

    #[test]
    fn middleware_protects_the_cloud_view() {
        // The cloud document must not contain any plaintext sensitive value.
        let cloud = CloudEngine::new();
        let docs_handle = cloud.docs().clone();
        let ch = Channel::connect(cloud, LatencyModel::instant());
        let mut client = MiddlewareClient::new(ch, 1);
        let mut gen = ObservationGenerator::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        let doc = gen.generate(&mut rng);
        client.insert(&doc).unwrap();
        let stored = docs_handle.collection("observation-w1").find(&datablinder_docstore::Filter::All);
        assert_eq!(stored.len(), 1);
        let subject = doc.get("subject").unwrap().as_str().unwrap();
        for (field, value) in stored[0].iter() {
            if let Value::Str(s) = value {
                assert_ne!(s, subject, "plaintext subject leaked into field {field}");
            }
        }
        assert!(stored[0].get("subject").is_none(), "raw sensitive field must not exist");
        assert!(stored[0].get("subject__rnd").is_some(), "payload ciphertext expected");
    }
}
