//! Fixed-memory latency histograms.
//!
//! The implementation now lives in the observability crate
//! ([`datablinder_obs::histogram`]) so gateway, cloud and channel
//! instrumentation can share the exact bucket layout with workload
//! reports; this module re-exports it so existing callers keep working.

pub use datablinder_obs::histogram::{AtomicHistogram, LatencyHistogram};
