//! Workload generation and the paper's evaluation scenarios.
//!
//! The paper drove its benchmarks with the Locust load-testing framework
//! against the medical-document application of §5.1; this crate is the
//! substitute (DESIGN.md §5): a closed-loop multi-worker generator with
//! the same metric definitions (throughput = completed requests/second,
//! latency percentiles over all requests) and the three §5.2 scenarios:
//!
//! * `S_A` — no middleware, no tactics ([`clients::PlainClient`]),
//! * `S_B` — tactics hard-coded into the application
//!   ([`clients::HardcodedClient`]),
//! * `S_C` — tactics enforced through DataBlinder
//!   ([`clients::MiddlewareClient`]).
//!
//! # Examples
//!
//! ```
//! use datablinder_workload::clients::PlainClient;
//! use datablinder_workload::runner::{run_scenario, ScenarioSpec};
//! use datablinder_core::cloud::CloudEngine;
//! use datablinder_netsim::{Channel, LatencyModel};
//!
//! let spec = ScenarioSpec { workers: 2, requests: 50, ..ScenarioSpec::default() };
//! let report = run_scenario("S_A", spec, |w| {
//!     Box::new(PlainClient::new(Channel::connect(CloudEngine::new(), LatencyModel::instant()), w as u64))
//! });
//! assert_eq!(report.failed, 0);
//! ```

#![warn(missing_docs)]
pub mod clients;
pub mod report;
pub mod runner;
