//! Plain-text rendering of Figure 5 and the §5.2 latency table.

use std::time::Duration;

use crate::runner::{OpKind, ScenarioReport};

fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
    let mut s = String::new();
    for _ in 0..filled.min(width) {
        s.push('█');
    }
    for _ in filled.min(width)..width {
        s.push('·');
    }
    s
}

fn fmt_dur(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.2}s", d.as_secs_f64())
    } else if d >= Duration::from_millis(1) {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0}µs", d.as_secs_f64() * 1e6)
    }
}

/// Renders the Figure 5 throughput comparison: per-operation and overall
/// bars for the three scenarios.
pub fn render_figure5(reports: &[&ScenarioReport]) -> String {
    let mut out = String::new();
    out.push_str("Figure 5 — Per-operation and overall throughput comparison\n");
    out.push_str("(requests/second; larger is better)\n\n");
    for (title, extract) in [
        (
            "insert",
            Box::new(|r: &ScenarioReport| r.op_throughput(OpKind::Insert)) as Box<dyn Fn(&ScenarioReport) -> f64>,
        ),
        ("equality search", Box::new(|r: &ScenarioReport| r.op_throughput(OpKind::Search))),
        ("aggregate", Box::new(|r: &ScenarioReport| r.op_throughput(OpKind::Aggregate))),
        ("overall", Box::new(|r: &ScenarioReport| r.throughput())),
    ] {
        out.push_str(&format!("{title}:\n"));
        let max = reports.iter().map(|r| extract(r)).fold(0.0f64, f64::max);
        for r in reports {
            let v = extract(r);
            out.push_str(&format!("  {:<4} {} {:>10.1} req/s\n", r.label, bar(v, max, 40), v));
        }
        out.push('\n');
    }
    // The headline numbers of §5.2.
    if let [sa, sb, sc] = reports {
        let tactic_loss = 100.0 * (1.0 - sc.throughput() / sa.throughput());
        let middleware_loss = 100.0 * (1.0 - sc.throughput() / sb.throughput());
        out.push_str(&format!("overall throughput loss S_A -> S_C (tactics): {tactic_loss:.1}% (paper: ~44%)\n"));
        out.push_str(&format!("additional loss S_B -> S_C (middleware):      {middleware_loss:.1}% (paper: ~1.4%)\n"));
    }
    out
}

/// Renders a scenario's observability snapshot as aligned text tables
/// (counters, gauges, histograms, EWMAs and the leakage ledger). Returns
/// a note instead when the run used a disabled recorder.
pub fn render_snapshot(report: &ScenarioReport) -> String {
    if report.snapshot.counters.is_empty() && report.snapshot.histograms.is_empty() {
        return format!("{}: no observability snapshot (run used a disabled recorder)\n", report.label);
    }
    format!("observability snapshot — {}\n\n{}", report.label, report.snapshot.to_text())
}

/// Renders a scenario's observability snapshot as a JSON document.
pub fn render_snapshot_json(report: &ScenarioReport) -> String {
    report.snapshot.to_json()
}

/// Renders every slow operation captured in `recorder`'s ring as a text
/// timeline, oldest first — one tree per operation that crossed the
/// armed threshold. Returns a note when the ring is empty (threshold
/// disarmed, or nothing was slow enough).
pub fn render_slow_ops(recorder: &datablinder_obs::Recorder) -> String {
    let trees = recorder.slow_ops();
    if trees.is_empty() {
        return "no slow operations captured (threshold disarmed or never crossed)\n".to_string();
    }
    let mut out = format!("slow operations — {} captured\n\n", trees.len());
    for tree in &trees {
        out.push_str(&datablinder_obs::render_trace_timeline(tree));
        out.push('\n');
    }
    out
}

/// Renders the §5.2 latency table: overall average, p50, p75, p99.
pub fn render_latency_table(reports: &[&ScenarioReport]) -> String {
    let mut out = String::new();
    out.push_str("§5.2 latency table — overall request latency\n\n");
    out.push_str(&format!("{:<6} {:>10} {:>10} {:>10} {:>10}\n", "", "avg", "p50", "p75", "p99"));
    for r in reports {
        out.push_str(&format!(
            "{:<6} {:>10} {:>10} {:>10} {:>10}\n",
            r.label,
            fmt_dur(r.overall.mean()),
            fmt_dur(r.overall.percentile(0.50)),
            fmt_dur(r.overall.percentile(0.75)),
            fmt_dur(r.overall.percentile(0.99)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablinder_obs::histogram::LatencyHistogram;

    fn fake(label: &'static str, per_op_ms: u64) -> ScenarioReport {
        let mut h = LatencyHistogram::new();
        for _ in 0..10 {
            h.record(Duration::from_millis(per_op_ms));
        }
        let mut overall = LatencyHistogram::new();
        overall.merge(&h);
        ScenarioReport {
            label,
            elapsed: Duration::from_secs(1),
            completed: 10,
            failed: 0,
            insert: h.clone(),
            search: LatencyHistogram::new(),
            aggregate: LatencyHistogram::new(),
            overall,
            snapshot: datablinder_obs::Snapshot::default(),
        }
    }

    #[test]
    fn renders_include_labels_and_headline() {
        let (a, b, c) = (fake("S_A", 1), fake("S_B", 2), fake("S_C", 2));
        let fig = render_figure5(&[&a, &b, &c]);
        assert!(fig.contains("S_A"));
        assert!(fig.contains("overall"));
        assert!(fig.contains("paper: ~44%"));
        let tbl = render_latency_table(&[&a, &b, &c]);
        assert!(tbl.contains("p99"));
        assert!(tbl.contains("S_C"));
    }

    #[test]
    fn snapshot_renderers_handle_empty_and_populated() {
        let r = fake("S_C", 1);
        assert!(render_snapshot(&r).contains("disabled recorder"));
        let rec = datablinder_obs::Recorder::new();
        rec.count("gateway.insert.count", 3);
        let mut r = fake("S_C", 1);
        r.snapshot = rec.snapshot();
        assert!(render_snapshot(&r).contains("gateway.insert.count"));
        let json = render_snapshot_json(&r);
        let doc = datablinder_obs::Json::parse(&json).expect("snapshot JSON parses");
        assert!(doc.get("counters").is_some());
    }

    #[test]
    fn slow_op_renderer_handles_empty_and_captured_rings() {
        let rec = datablinder_obs::Recorder::new();
        assert!(render_slow_ops(&rec).contains("no slow operations"));
        rec.set_slow_op_threshold(Duration::from_nanos(1));
        {
            let _root = rec.span("workload.insert");
            let _child = rec.quiet_span("channel.call");
        }
        let text = render_slow_ops(&rec);
        assert!(text.contains("1 captured"), "{text}");
        assert!(text.contains("workload.insert"), "{text}");
        assert!(text.contains("channel.call"), "{text}");
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(10.0, 10.0, 4), "████");
        assert_eq!(bar(0.0, 10.0, 4), "····");
        assert_eq!(bar(5.0, 10.0, 4), "██··");
        assert_eq!(bar(1.0, 0.0, 2), "··");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_dur(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00s");
    }
}
