//! The closed-loop load generator (the Locust substitute): N concurrent
//! workers issuing a balanced read / write / aggregate mix, measuring
//! per-operation latency and overall throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use datablinder_fhir::ObservationGenerator;
use datablinder_obs::{Recorder, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clients::BenchClient;
use datablinder_obs::histogram::LatencyHistogram;

/// The kinds of operation in the mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Insertion + secure indexing.
    Insert,
    /// Equality-search protocol (plus retrieval).
    Search,
    /// Aggregate (homomorphic average where applicable).
    Aggregate,
}

/// Relative operation weights. The paper's experiment balances read
/// (equality search), write (insertion + secure indexing) and aggregate
/// operations.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Weight of inserts.
    pub insert: u32,
    /// Weight of searches.
    pub search: u32,
    /// Weight of aggregates.
    pub aggregate: u32,
}

impl Default for OpMix {
    /// The paper's balanced mix: inserts dominate slightly (~50k docs and
    /// ~50k Paillier executions out of ~151k requests), searches and
    /// aggregates split the rest evenly.
    fn default() -> Self {
        OpMix { insert: 1, search: 1, aggregate: 1 }
    }
}

impl OpMix {
    fn pick<R: Rng>(&self, rng: &mut R) -> OpKind {
        let total = self.insert + self.search + self.aggregate;
        let roll = rng.gen_range(0..total);
        if roll < self.insert {
            OpKind::Insert
        } else if roll < self.insert + self.search {
            OpKind::Search
        } else {
            OpKind::Aggregate
        }
    }
}

/// Scenario sizing.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Concurrent workers (the paper used 1,000 Locust users).
    pub workers: usize,
    /// Total requests across all workers.
    pub requests: usize,
    /// Operation mix.
    pub mix: OpMix,
    /// Distinct patients (controls search-result sizes).
    pub patient_pool: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec { workers: 8, requests: 2_000, mix: OpMix::default(), patient_pool: 50, seed: 7 }
    }
}

/// Measured results for one scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Scenario label.
    pub label: &'static str,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Completed requests.
    pub completed: u64,
    /// Failed requests (should be zero).
    pub failed: u64,
    /// Per-operation latency histograms.
    pub insert: LatencyHistogram,
    /// Search latency.
    pub search: LatencyHistogram,
    /// Aggregate latency.
    pub aggregate: LatencyHistogram,
    /// All operations combined.
    pub overall: LatencyHistogram,
    /// Observability snapshot taken at the end of the run: workload
    /// metrics plus whatever the supplied recorder collected from the
    /// layers underneath (gateway routes, channel retries, WAL, ledger).
    /// Empty when the run used a disabled recorder.
    pub snapshot: Snapshot,
}

impl ScenarioReport {
    /// Overall throughput in requests per second.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Per-operation throughput (ops of that kind per second of run).
    pub fn op_throughput(&self, op: OpKind) -> f64 {
        let count = match op {
            OpKind::Insert => self.insert.count(),
            OpKind::Search => self.search.count(),
            OpKind::Aggregate => self.aggregate.count(),
        };
        count as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs one scenario: spawns `spec.workers` threads, each with its own
/// client from `factory`, and drives `spec.requests` operations total.
///
/// The factory receives the worker index; clients share the cloud through
/// their channels but hold independent gateway state (like independent
/// application instances behind one load balancer).
pub fn run_scenario<F>(label: &'static str, spec: ScenarioSpec, factory: F) -> ScenarioReport
where
    F: Fn(usize) -> Box<dyn BenchClient> + Sync,
{
    run_scenario_observed(label, spec, factory, Recorder::disabled())
}

/// As [`run_scenario`], but measured through `recorder`: each operation
/// also lands in the recorder's `workload.<op>.latency` histogram and
/// `workload.<op>.count` / `workload.<op>.errors` counters, and the
/// returned report carries `recorder.snapshot()` — which therefore also
/// contains whatever the layers under the client recorded, when they
/// share the same recorder.
pub fn run_scenario_observed<F>(
    label: &'static str,
    spec: ScenarioSpec,
    factory: F,
    recorder: Recorder,
) -> ScenarioReport
where
    F: Fn(usize) -> Box<dyn BenchClient> + Sync,
{
    let per_worker = spec.requests / spec.workers.max(1);
    let completed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    // Client construction (key generation!) happens before the barrier so
    // setup cost is excluded from the measured window.
    let barrier = std::sync::Barrier::new(spec.workers + 1);

    let mut start = Instant::now();
    let histograms: Vec<(LatencyHistogram, LatencyHistogram, LatencyHistogram)> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..spec.workers {
            let factory = &factory;
            let completed = &completed;
            let failed = &failed;
            let barrier = &barrier;
            let recorder = &recorder;
            handles.push(scope.spawn(move |_| {
                let mut client = factory(w);
                barrier.wait();
                let mut rng = StdRng::seed_from_u64(spec.seed ^ (w as u64).wrapping_mul(0x9E37_79B9));
                let mut gen = ObservationGenerator::new(spec.patient_pool);
                let mut insert_h = LatencyHistogram::new();
                let mut search_h = LatencyHistogram::new();
                let mut agg_h = LatencyHistogram::new();
                // Prime each worker with a few documents so early
                // searches/aggregates have data.
                for _ in 0..4 {
                    let doc = gen.generate(&mut rng);
                    let t = Instant::now();
                    let ok = client.insert(&doc).is_ok();
                    let d = t.elapsed();
                    recorder.record_op("workload.insert", None, None, d, ok);
                    if ok {
                        insert_h.record(d);
                        completed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                for _ in 0..per_worker.saturating_sub(4) {
                    match spec.mix.pick(&mut rng) {
                        OpKind::Insert => {
                            let doc = gen.generate(&mut rng);
                            let t = Instant::now();
                            let ok = client.insert(&doc).is_ok();
                            let d = t.elapsed();
                            recorder.record_op("workload.insert", None, None, d, ok);
                            if ok {
                                insert_h.record(d);
                                completed.fetch_add(1, Ordering::Relaxed);
                            } else {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        OpKind::Search => {
                            let subject = gen.patient(rng.gen_range(0..spec.patient_pool));
                            let t = Instant::now();
                            let ok = client.search_subject(&subject).is_ok();
                            let d = t.elapsed();
                            recorder.record_op("workload.search", None, None, d, ok);
                            if ok {
                                search_h.record(d);
                                completed.fetch_add(1, Ordering::Relaxed);
                            } else {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        OpKind::Aggregate => {
                            let t = Instant::now();
                            let ok = client.average_value().is_ok();
                            let d = t.elapsed();
                            recorder.record_op("workload.aggregate", None, None, d, ok);
                            if ok {
                                agg_h.record(d);
                                completed.fetch_add(1, Ordering::Relaxed);
                            } else {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                (insert_h, search_h, agg_h)
            }));
        }
        barrier.wait();
        start = Instant::now();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("scope");
    let elapsed = start.elapsed();

    let mut insert = LatencyHistogram::new();
    let mut search = LatencyHistogram::new();
    let mut aggregate = LatencyHistogram::new();
    for (i, s, a) in &histograms {
        insert.merge(i);
        search.merge(s);
        aggregate.merge(a);
    }
    let mut overall = LatencyHistogram::new();
    overall.merge(&insert);
    overall.merge(&search);
    overall.merge(&aggregate);

    ScenarioReport {
        label,
        elapsed,
        completed: completed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        insert,
        search,
        aggregate,
        overall,
        snapshot: recorder.snapshot(),
    }
}

/// Runs a scenario against ONE shared gateway engine: every worker gets a
/// [`SharedMiddlewareClient`] handle onto `engine` instead of its own
/// gateway, so the run exercises the engine's internal concurrency (the
/// shape of a middleware instance behind a thread-pooled app server).
/// Measure with the same `recorder` the engine carries to see gateway
/// routes, pool gauges and shard contention in the report snapshot.
pub fn run_shared_scenario(
    label: &'static str,
    spec: ScenarioSpec,
    engine: &std::sync::Arc<datablinder_core::gateway::GatewayEngine>,
    recorder: Recorder,
) -> ScenarioReport {
    run_scenario_observed(
        label,
        spec,
        |_| Box::new(crate::clients::SharedMiddlewareClient::new(std::sync::Arc::clone(engine))),
        recorder,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::PlainClient;
    use datablinder_core::cloud::CloudEngine;
    use datablinder_netsim::{Channel, LatencyModel};

    #[test]
    fn runner_completes_all_requests() {
        let spec = ScenarioSpec { workers: 4, requests: 200, ..ScenarioSpec::default() };
        let report = run_scenario("S_A", spec, |w| {
            Box::new(PlainClient::new(Channel::connect(CloudEngine::new(), LatencyModel::instant()), w as u64))
        });
        assert_eq!(report.failed, 0);
        assert_eq!(report.completed, 200);
        assert!(report.throughput() > 0.0);
        assert_eq!(report.insert.count() + report.search.count() + report.aggregate.count(), report.overall.count());
    }

    #[test]
    fn observed_runner_populates_snapshot() {
        let spec = ScenarioSpec { workers: 2, requests: 100, ..ScenarioSpec::default() };
        let rec = Recorder::new();
        let report = run_scenario_observed(
            "S_A",
            spec,
            |w| Box::new(PlainClient::new(Channel::connect(CloudEngine::new(), LatencyModel::instant()), w as u64)),
            rec.clone(),
        );
        assert_eq!(report.failed, 0);
        let total: u64 = report
            .snapshot
            .counters_with_prefix("workload.")
            .iter()
            .filter(|(name, _)| name.ends_with(".count"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, report.completed, "recorder counted every completed op");
        assert!(report.snapshot.histogram("workload.insert.latency").is_some());
    }

    #[test]
    fn shared_gateway_runner_completes_all_requests() {
        use crate::clients::shared_gateway;
        let rec = Recorder::new();
        let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
        let pool = std::sync::Arc::new(datablinder_core::pool::WorkerPool::new(2));
        let engine = shared_gateway(channel, rec.clone(), Some(pool));
        let spec = ScenarioSpec { workers: 4, requests: 120, ..ScenarioSpec::default() };
        let report = run_shared_scenario("S_C/shared", spec, &engine, rec);
        assert_eq!(report.failed, 0);
        assert_eq!(report.completed, 120);
        assert!(report.snapshot.counters_with_prefix("gateway.").iter().any(|(n, _)| n == "gateway.insert.count"));
    }

    #[test]
    fn mix_respects_weights() {
        let mix = OpMix { insert: 1, search: 0, aggregate: 0 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(mix.pick(&mut rng), OpKind::Insert);
        }
    }
}
