//! Crypto agility — the paper's headline property: "the ability to plug
//! and play cryptographic schemes depending on their evolution in time".
//!
//! Three demonstrations:
//!
//! 1. **Deprecation**: a leakage-abuse attack is published against the
//!    class-2 workhorse (Mitra); the operator deprecates it and new fields
//!    transparently select the next admissible tactic (Sophos) — no
//!    application change.
//! 2. **Custom tactic registration**: a security team plugs in its own
//!    tactic through the SPI; selection picks it up purely from its
//!    descriptor.
//! 3. **Key rotation**: the KMS rotates a field's key; old ciphertexts
//!    remain decryptable via versioned keys while new data uses the new key.
//!
//! ```sh
//! cargo run --example crypto_agility
//! ```

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::*;
use datablinder::core::registry::TacticRegistry;
use datablinder::core::tactics::rnd::RndTactic;
use datablinder::docstore::{Document, Value};
use datablinder::kms::{KeyScope, Kms};
use datablinder::netsim::{Channel, LatencyModel};
use rand::SeedableRng;

fn schema() -> Schema {
    Schema::new("records").sensitive_field(
        "owner",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);

    // ---------------------------------------------------------------- (1)
    println!("1) tactic deprecation");
    let mut registry = TacticRegistry::with_builtins();
    let before = registry.select("owner", &FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Equality]))?;
    println!("   before: class-2 equality -> {:?}", before.search_tactics);

    registry.deprecate("mitra"); // the hypothetical break
    let after = registry.select("owner", &FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Equality]))?;
    println!("   after deprecating mitra   -> {:?}", after.search_tactics);
    assert_eq!(after.search_tactics, vec!["sophos"]);

    // The application keeps working against the re-routed registry.
    let kms = Kms::generate(&mut rng);
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let gateway = GatewayEngine::with_registry("agile", kms.clone(), channel, 11, registry);
    gateway.register_schema(schema())?;
    gateway.insert("records", &Document::new("x").with("owner", Value::from("dana")))?;
    let hits = gateway.find_equal("records", "owner", &Value::from("dana"))?;
    println!("   search through the replacement tactic: {} hit(s)", hits.len());
    assert_eq!(hits.len(), 1);

    // ---------------------------------------------------------------- (2)
    println!("\n2) custom tactic via the SPI");
    let mut registry = TacticRegistry::with_builtins();
    let custom = TacticDescriptor {
        name: "acme-seal".into(),
        family: "proprietary sealed storage".into(),
        operations: vec![OpProfile {
            op: TacticOp::Update,
            leakage: LeakageLevel::Structure,
            metrics: PerfMetrics::new(1, 1, 1),
        }],
        serves: vec![FieldOp::Insert],
        serves_agg: vec![],
        gateway_interfaces: 3,
        cloud_interfaces: 2,
        gateway_state: false,
    };
    // The demo reuses RND's implementation under the custom descriptor;
    // a real provider would ship its own GatewayTactic/CloudTactic pair.
    registry.register(custom, Box::new(|ctx, _| Ok(Box::new(RndTactic::build(ctx)?))));
    println!(
        "   registry now knows {} tactics, including {:?}",
        registry.descriptors().len(),
        registry.descriptor("acme-seal").map(|d| &d.name)
    );
    assert!(registry.descriptor("acme-seal").is_some());

    // ---------------------------------------------------------------- (3)
    println!("\n3) key rotation through the KMS");
    let scope = KeyScope::new("agile", "records.owner", "rnd");
    let v0 = kms.current_version(&scope);
    let k0 = kms.key_for(&scope);
    let new_version = kms.rotate(&scope);
    let k1 = kms.key_for(&scope);
    println!("   rotated {scope:?}: version {v0} -> {new_version}");
    assert_ne!(k0, k1);
    // Historical ciphertexts stay recoverable through versioned keys.
    assert_eq!(kms.key_for_version(&scope, v0), k0);
    println!("   old-version key still derivable for re-encryption jobs");

    Ok(())
}
