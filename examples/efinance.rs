//! The e-finance case: DataBlinder was "developed in close collaboration
//! with businesses that ... offer cloud-based applications in e-finance"
//! (UnifiedPost). This example protects an invoice-processing collection:
//!
//! * `customer` — class 2 equality search (who are this customer's invoices for?),
//! * `amount`   — class 5 range queries (overdue invoices above €10k) and
//!   homomorphic sums (total receivables without decrypting),
//! * `status`   — class 4 equality + boolean filters,
//! * `iban`     — class 1: stored, never searched.
//!
//! ```sh
//! cargo run --example efinance
//! ```

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::*;
use datablinder::docstore::{Document, Value};
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, LatencyModel};
use rand::Rng;
use rand::SeedableRng;

fn invoice_schema() -> Schema {
    use FieldOp::*;
    Schema::new("invoices")
        .plain_field("number", FieldType::Integer, true)
        .sensitive_field(
            "customer",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![Insert, Equality]),
        )
        .sensitive_field(
            "amount",
            FieldType::Float,
            true,
            FieldAnnotation::new(ProtectionClass::C5, vec![Insert, Range]).with_aggs(vec![AggFn::Sum, AggFn::Avg]),
        )
        .sensitive_field(
            "status",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C4, vec![Insert, Equality, Boolean]),
        )
        .sensitive_field("iban", FieldType::Text, true, FieldAnnotation::new(ProtectionClass::C1, vec![Insert]))
        .sensitive_field(
            "due",
            FieldType::Integer,
            true,
            FieldAnnotation::new(ProtectionClass::C5, vec![Insert, Range]),
        )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::lan());
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let gateway = GatewayEngine::new("unifiedpost", Kms::generate(&mut rng), channel, 3);
    gateway.register_schema(invoice_schema())?;

    println!("invoice field protection:");
    for field in ["customer", "amount", "status", "iban", "due"] {
        let sel = gateway.selection("invoices", field).expect("registered");
        println!("  {:<9} {:<18} {}", field, sel.listed_tactics().join(", "), sel.reason);
    }

    // A synthetic ledger.
    let customers = ["ACME GmbH", "Globex BV", "Initech SARL"];
    let statuses = ["open", "paid", "overdue"];
    let mut total_expected = 0.0f64;
    for i in 0..60i64 {
        let customer = customers[rng.gen_range(0..customers.len())];
        let status = statuses[rng.gen_range(0..statuses.len())];
        let amount = (rng.gen_range(50.0..25_000.0f64) * 100.0).round() / 100.0;
        total_expected += amount;
        let doc = Document::new("ignored")
            .with("number", Value::from(1000 + i))
            .with("customer", Value::from(customer))
            .with("amount", Value::from(amount))
            .with("status", Value::from(status))
            .with("iban", Value::from(format!("BE{:014}", i * 37)))
            .with("due", Value::from(1_700_000_000i64 + i * 86_400));
        gateway.insert("invoices", &doc)?;
    }

    // Equality: one customer's invoices.
    let acme = gateway.find_equal("invoices", "customer", &Value::from("ACME GmbH"))?;
    println!("\nACME GmbH invoices: {}", acme.len());

    // Boolean over DET fields: open OR overdue.
    let dnf =
        vec![vec![("status".to_string(), Value::from("open"))], vec![("status".to_string(), Value::from("overdue"))]];
    let outstanding = gateway.find_boolean("invoices", &dnf)?;
    println!("outstanding invoices (open or overdue): {}", outstanding.len());

    // Range: big-ticket invoices, found via OPE without decryption.
    let big = gateway.find_range("invoices", "amount", &Value::from(10_000.0f64), &Value::from(1e9f64))?;
    println!("invoices over €10k: {}", big.len());
    for d in big.iter().take(3) {
        println!("  #{:?} {:?} €{:?}", d.get("number"), d.get("customer").and_then(Value::as_str), d.get("amount"));
    }

    // Homomorphic sum: total receivables computed by the cloud on
    // ciphertexts.
    let total = gateway.aggregate("invoices", "amount", AggFn::Sum, None)?;
    println!("\ntotal invoiced (homomorphic sum): €{total:.2}");
    assert!((total - total_expected).abs() < 0.5, "sum {total} vs oracle {total_expected}");

    // Due-date window (range on a second OPE field).
    let this_month = gateway.find_range(
        "invoices",
        "due",
        &Value::from(1_700_000_000i64),
        &Value::from(1_700_000_000i64 + 30 * 86_400),
    )?;
    println!("invoices due in the first 30 days: {}", this_month.len());

    Ok(())
}
