//! The paper's §5.1 healthcare validation case: FHIR-style glucose
//! observations with the exact published annotations, exercising every
//! query family the paper motivates in its introduction:
//!
//! * boolean search — "the patient with a particular gastric cancer who
//!   was admitted on 12/05/2012",
//! * aggregate — "the average heart rate of a patient",
//! * range — "health problems between particular date ranges".
//!
//! ```sh
//! cargo run --example healthcare
//! ```

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::AggFn;
use datablinder::docstore::Value;
use datablinder::fhir::{example_observation, observation_schema, ObservationGenerator};
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, LatencyModel};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::lan());
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let gateway = GatewayEngine::new("ehealth", Kms::generate(&mut rng), channel, 99);

    gateway.register_schema(observation_schema())?;

    // Reproduce the §5.1 selection table.
    println!("§5.1 tactic selection (Sensitives / Tactic Selection / Reason):");
    for field in ["status", "code", "subject", "effective", "issued", "performer", "value"] {
        let sel = gateway.selection("observation", field).expect("registered");
        println!("  {:<10} {:<22} {}", field, sel.listed_tactics().join(", "), sel.reason);
    }

    // Initial cloud migration: bulk-load a corpus, building the *static*
    // BIEX base index in one batched round trip...
    let mut generator = ObservationGenerator::new(20);
    let corpus: Vec<_> = (0..120).map(|_| generator.generate(&mut rng)).collect();
    gateway.migrate("observation", &corpus)?;
    // ...then go live: the paper's example document arrives as a dynamic
    // insert layered on top of the static base.
    gateway.insert("observation", &example_observation())?;
    println!("\nstored observations: {}", gateway.count("observation")?);

    // Equality search (Mitra, identifier-level protection).
    let johns = gateway.find_equal("observation", "subject", &Value::from("John Doe"))?;
    println!("observations for John Doe: {}", johns.len());
    assert_eq!(johns.len(), 1);

    // Boolean cross-field search (BIEX-2Lev): final glucose observations.
    let dnf = vec![vec![("status".to_string(), Value::from("final")), ("code".to_string(), Value::from("glucose"))]];
    let finals = gateway.find_boolean("observation", &dnf)?;
    println!("final AND glucose: {} observations", finals.len());
    assert!(finals.iter().any(|d| d.get("subject") == Some(&Value::from("John Doe"))));

    // Range query over the encrypted timestamp (DET+OPE on `effective`).
    let lo = Value::from(1_359_900_000i64);
    let hi = Value::from(1_360_000_000i64);
    let in_range = gateway.find_range("observation", "effective", &lo, &hi)?;
    println!("observations effective in [{:?}, {:?}]: {}", lo, hi, in_range.len());
    assert!(in_range.iter().any(|d| d.get("effective") == Some(&Value::from(1_359_966_610i64))));

    // Cloud-side homomorphic average of the glucose values (Paillier),
    // restricted by a boolean filter.
    let avg_all = gateway.aggregate("observation", "value", AggFn::Avg, None)?;
    let glucose_filter = vec![vec![("code".to_string(), Value::from("glucose"))]];
    let avg_glucose = gateway.aggregate("observation", "value", AggFn::Avg, Some(&glucose_filter))?;
    println!("average value (all observations):  {avg_all:.2}");
    println!("average value (glucose only):      {avg_glucose:.2}");
    assert!(avg_glucose > 0.0);

    println!("\nchannel round trips: {}", gateway.channel().metrics().round_trips());
    Ok(())
}
