//! Leakage audit: measure what the cloud actually learns under each
//! protection class — the §3.1 taxonomy made empirical.
//!
//! Inserts the same corpus under the benchmark schema, then audits each
//! stored shadow field from the cloud's point of view.
//!
//! ```sh
//! cargo run --example leakage_audit
//! ```

use std::collections::HashMap;

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::leakage::audit_field;
use datablinder::docstore::Value;
use datablinder::fhir::ObservationGenerator;
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, LatencyModel};
use datablinder::workload::clients::bench_schema;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cloud = CloudEngine::new();
    let docs = cloud.docs().clone();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let gateway = GatewayEngine::new("audit", Kms::generate(&mut rng), channel, 8);
    gateway.register_schema(bench_schema())?;

    // Insert a corpus and remember the plaintext order of `effective`
    // (auditor knowledge, for the order-correlation measurement).
    let mut generator = ObservationGenerator::new(12);
    let mut effective_order: HashMap<String, i64> = HashMap::new();
    for _ in 0..60 {
        let obs = generator.generate(&mut rng);
        let id = gateway.insert("observation", &obs)?;
        effective_order
            .insert(datablinder::sse::DocId::to_hex(id), obs.get("effective").and_then(Value::as_i64).unwrap());
    }

    let collection = docs.collection("observation");
    println!("cloud-side audit of {} stored observations:\n", collection.len());
    println!(
        "{:<18} {:>6} {:>9} {:>10} {:>8} {:>7}  observed level",
        "stored field", "docs", "distinct", "max class", "lengths", "order"
    );
    for (field, order) in [
        ("performer__rnd", None),                   // class 1
        ("subject__rnd", None),                     // payload of Mitra field
        ("status__det", None),                      // class 4
        ("effective__det", Some(&effective_order)), // DET on a numeric field
        ("value__phe", None),                       // Paillier ciphertexts
    ] {
        let audit = audit_field(&collection, field, order);
        println!(
            "{:<18} {:>6} {:>9} {:>10} {:>8} {:>7}  {}",
            audit.field,
            audit.population,
            audit.distinct_ciphertexts,
            audit.largest_equality_class,
            audit.distinct_lengths,
            audit.order_correlation.map(|c| format!("{c:.2}")).unwrap_or_else(|| "-".into()),
            audit.observed_level(),
        );
    }

    println!(
        "\nreading: RND/Paillier fields show one equality class per document\n\
         (Structure); DET fields expose equality classes (Equalities) — the\n\
         functional trade the annotations opted into; none of the stored\n\
         fields exposes order (OPE would, at class C5)."
    );
    Ok(())
}
