//! Quickstart: protect a collection of notes with DataBlinder.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Shows the minimal flow: connect a gateway to a (simulated) cloud,
//! annotate a schema, insert, search and read back — with every sensitive
//! byte leaving the trusted zone encrypted.

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::*;
use datablinder::docstore::{Document, Value};
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, LatencyModel};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The untrusted zone: a cloud engine behind a metered channel.
    let cloud = CloudEngine::new();
    let cloud_docs = cloud.docs().clone(); // keep a peek handle for the demo
    let channel = Channel::connect(cloud, LatencyModel::wan());

    // The trusted zone: KMS + gateway.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let kms = Kms::generate(&mut rng);
    let gateway = GatewayEngine::new("quickstart", kms, channel, 7);

    // Annotate the schema: author is searchable at protection class 2
    // (identifier-level leakage), the body is class 1 (structure only).
    let schema = Schema::new("notes")
        .sensitive_field(
            "author",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
        )
        .sensitive_field(
            "body",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C1, vec![FieldOp::Insert]),
        );
    gateway.register_schema(schema)?;

    println!("tactic selection:");
    for field in ["author", "body"] {
        let sel = gateway.selection("notes", field).expect("registered");
        println!("  {field:<8} -> {:?}  ({})", sel.listed_tactics(), sel.reason);
    }

    // Insert a few notes.
    let notes = [("alice", "meet at noon"), ("bob", "ship the release"), ("alice", "rotate the keys")];
    for (author, body) in notes {
        let doc = Document::new("ignored").with("author", Value::from(author)).with("body", Value::from(body));
        gateway.insert("notes", &doc)?;
    }

    // Search over encrypted data.
    let hits = gateway.find_equal("notes", "author", &Value::from("alice"))?;
    println!("\nnotes by alice: {}", hits.len());
    for doc in &hits {
        println!("  {} -> {:?}", doc.id(), doc.get("body").and_then(Value::as_str));
    }
    assert_eq!(hits.len(), 2);

    // What the cloud actually sees: ciphertext shadow fields only.
    let stored = cloud_docs.collection("notes").find(&datablinder::docstore::Filter::All);
    let sample = &stored[0];
    println!("\ncloud view of one document ({} fields):", sample.len());
    for (field, value) in sample.iter() {
        let rendered = match value {
            Value::Bytes(b) => format!("<{} ciphertext bytes>", b.len()),
            other => format!("{other:?}"),
        };
        println!("  {field}: {rendered}");
    }

    let m = gateway.channel().metrics();
    println!(
        "\nchannel: {} round trips, {} B out, {} B in, {:?} simulated WAN time",
        m.round_trips(),
        m.bytes_sent(),
        m.bytes_received(),
        m.virtual_time()
    );
    Ok(())
}
