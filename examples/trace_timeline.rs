//! Distributed tracing end-to-end: one gateway write through a 5-node
//! replicated cluster, rendered as a causal timeline plus a federated
//! Prometheus exposition.
//!
//! ```sh
//! cargo run --example trace_timeline
//! ```
//!
//! Shows the observability pipeline: a root span opens at the gateway
//! route, propagates through the resilient channel's traced envelope to
//! the cluster coordinator, fans out to the write quorum, and every
//! replica's apply lands in the same tree. The slow-op ring captures the
//! whole operation, and `ClusterCloud::snapshot()` federates each node's
//! recorder into one cluster view.

use std::sync::Arc;
use std::time::Duration;

use datablinder::core::cluster::{ClusterCloud, ClusterConfig};
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::*;
use datablinder::docstore::{Document, Value};
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, LatencyModel};
use datablinder::obs::{render_multi_exposition, Recorder};
use datablinder::workload::report::render_slow_ops;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The untrusted zone: a 5-node replicated cluster (R=3, W=2), each
    // node carrying its own recorder.
    let mut cluster = ClusterCloud::new(ClusterConfig::volatile(5, 3, 2, 0x7ACE))?;
    cluster.set_recorder(Recorder::new());
    let cluster = Arc::new(cluster);

    // The trusted zone: a gateway whose recorder roots one trace per
    // operation. The 1ns slow-op threshold captures every operation for
    // the demo; production would arm something like 50ms.
    let obs = Recorder::new();
    obs.set_slow_op_threshold(Duration::from_nanos(1));
    let channel = Channel::from_arc(cluster.clone(), LatencyModel::lan());
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut gateway = GatewayEngine::new("trace-demo", Kms::generate(&mut rng), channel, 7);
    gateway.set_recorder(obs.clone());

    let schema = Schema::new("notes").sensitive_field(
        "author",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
    );
    gateway.register_schema(schema)?;

    let doc = Document::new("ignored").with("author", Value::from("alice"));
    gateway.insert("notes", &doc)?;
    let hits = gateway.find_equal("notes", "author", &Value::from("alice"))?;
    assert_eq!(hits.len(), 1);

    // Where did each operation spend its time? The ring holds the full
    // tree: gateway root, channel attempts, per-replica applies.
    println!("{}", render_slow_ops(&obs));

    // Federation: the coordinator pulls every live node's recorder over
    // the obs/snapshot route and merges them into one cluster view.
    let federated = cluster.snapshot();
    println!("federated snapshot — {} members:", federated.nodes.len());
    for node in &federated.nodes {
        println!("  {:<8} {:>4} spans recorded", node.label.as_deref().unwrap_or("?"), node.spans_recorded);
    }
    println!("  merged   {:>4} spans recorded\n", federated.merged.spans_recorded);

    // The same data as a Prometheus/OpenMetrics exposition (excerpt).
    let mut snapshots = vec![obs.snapshot()];
    snapshots.extend(federated.nodes);
    let exposition = render_multi_exposition(&snapshots);
    println!("prometheus exposition ({} lines, excerpt):", exposition.lines().count());
    for line in exposition.lines().filter(|l| l.contains("gateway_insert") || l.contains("cloud_apply")).take(10) {
        println!("  {line}");
    }
    Ok(())
}
