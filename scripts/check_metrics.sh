#!/usr/bin/env bash
# Metric-name registry lint: the dotted observability names used in source
# must equal the names documented in docs/METRICS.md, both ways. Catches
# undocumented names sneaking into code and stale rows lingering in docs.
#
# Extraction: every quoted lowercase dotted literal in crates/*/src whose
# first segment is a known metric family. Runtime-formatted segments are
# normalized ({i}, {slot}, {tactic}, … → {}), and literals containing a
# purely numeric segment (concrete shard/slot instances in tests) are
# folded into their {} row.
set -euo pipefail

cd "$(dirname "$0")/.."

FAMILIES='gateway|channel|cloud|cluster|paillier|primitives|workload|tactic|obs'
DOC=docs/METRICS.md

[ -f "$DOC" ] || { echo "check_metrics: $DOC missing" >&2; exit 1; }

from_source="$(mktemp -t metrics_src.XXXXXX)"
from_docs="$(mktemp -t metrics_doc.XXXXXX)"
trap 'rm -f "$from_source" "$from_docs"' EXIT

grep -rhoE '"[a-z][a-z0-9_]*(\.[a-z0-9_{}]+)+"' crates/*/src |
    tr -d '"' |
    grep -E "^($FAMILIES)\." |
    sed -E 's/\{[a-z_]+\}/{}/g' |
    grep -vE '\.[0-9]+(\.|$)' |
    sort -u > "$from_source"

grep -oE '`[a-z][a-z0-9_]*(\.[a-z0-9_{}]+)+`' "$DOC" |
    tr -d '\`' |
    grep -E "^($FAMILIES)\." |
    sort -u > "$from_docs"

undocumented="$(comm -23 "$from_source" "$from_docs" || true)"
stale="$(comm -13 "$from_source" "$from_docs" || true)"

status=0
if [ -n "$undocumented" ]; then
    echo "check_metrics: names in crates/*/src missing from $DOC:" >&2
    printf '  %s\n' $undocumented >&2
    status=1
fi
if [ -n "$stale" ]; then
    echo "check_metrics: names in $DOC with no source occurrence (stale rows):" >&2
    printf '  %s\n' $stale >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "check_metrics: $(wc -l < "$from_source" | tr -d ' ') names in sync with $DOC"
fi
exit "$status"
