#!/usr/bin/env bash
# Full local verification: the tier-1 gate (release build + tests) plus
# lints and formatting. Run before sending a change.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --release --test resilience (crash storms under optimization)"
cargo test --release -q --test resilience

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: all green"
