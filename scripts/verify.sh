#!/usr/bin/env bash
# Full local verification: the tier-1 gate (release build + tests) plus
# lints and formatting. Run before sending a change.
set -euo pipefail

cd "$(dirname "$0")/.."

# Offline sandboxes vendor the dependency graph under .devstubs and route
# crates.io there via a source replacement; inject it transparently so the
# same script runs with or without network. cargo-clippy re-invokes cargo
# and drops a pre-subcommand --config, so it needs the flag after the
# subcommand.
if [ -f .devstubs/config.toml ]; then
    cargo() {
        if [ "${1:-}" = clippy ]; then
            shift
            command cargo clippy --config .devstubs/config.toml "$@"
        else
            command cargo --config .devstubs/config.toml "$@"
        fi
    }
fi

echo "==> metric-name registry lint (scripts/check_metrics.sh)"
bash scripts/check_metrics.sh

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --release --test resilience (crash storms under optimization)"
cargo test --release -q --test resilience

echo "==> cargo test --release --test concurrency (shared-gateway model suite)"
cargo test --release -q --test concurrency

echo "==> cargo test --release --test symmetric_props (table-GHASH / batched-CTR / batch-seal differential oracles)"
cargo test --release -q -p datablinder-primitives --test symmetric_props

echo "==> cargo test --release --test cluster (replicated-cloud crash + membership-churn storms under optimization)"
cargo test --release -q -p datablinder-core --test cluster
cargo test --release -q -p datablinder-core --test cluster membership_churn_storm_converges -- --exact

echo "==> metrics smoke: observed fig5 run emits a parseable snapshot with live route counters"
cargo run --release -q -p datablinder-bench --bin fig5_throughput -- \
    --net instant --workers 4 --requests 200 --observe |
    tail -1 |
    grep -q '"name":"gateway.insert.count","value":[1-9]' ||
    { echo "metrics smoke: gateway route counters missing from snapshot JSON" >&2; exit 1; }
cargo test --release -q --test observability
cargo test --release -q -p datablinder-core --test trace

echo "==> shared-gateway smoke: scaling ladder emits per-shard contention counters"
cargo run --release -q -p datablinder-bench --bin fig5_throughput -- \
    --shared-gateway --net instant --workers 4 --requests 200 |
    tail -1 |
    grep -q '"name":"cloud.kv.shard.0.contention"' ||
    { echo "shared-gateway smoke: per-shard counters missing from snapshot JSON" >&2; exit 1; }

echo "==> crypto-bench smoke: fig_crypto --quick emits BENCH_crypto.json with CRT no slower than plain decrypt"
CRYPTO_JSON="$(mktemp -t BENCH_crypto.XXXXXX.json)"
cargo run --release -q -p datablinder-bench --bin fig_crypto -- --quick --out "$CRYPTO_JSON"
[ -s "$CRYPTO_JSON" ] ||
    { echo "crypto smoke: BENCH_crypto.json not produced" >&2; exit 1; }
grep -q '"crt_not_slower":true' "$CRYPTO_JSON" ||
    { echo "crypto smoke: CRT decrypt slower than plain-lambda decrypt" >&2; cat "$CRYPTO_JSON" >&2; exit 1; }
grep -q '"cached_encrypt_faster":true' "$CRYPTO_JSON" ||
    { echo "crypto smoke: amortized encryption not faster than per-call-context path" >&2; cat "$CRYPTO_JSON" >&2; exit 1; }
grep -q '"ghash_tables_mib_per_sec":' "$CRYPTO_JSON" && grep -q '"ctr_batched_mib_per_sec":' "$CRYPTO_JSON" &&
    grep -q '"seal_batched_ops_per_sec":' "$CRYPTO_JSON" && grep -q '"hmac_ctx_ops_per_sec":' "$CRYPTO_JSON" ||
    { echo "crypto smoke: symmetric throughput fields missing" >&2; cat "$CRYPTO_JSON" >&2; exit 1; }
grep -q '"ghash_tables_faster":true' "$CRYPTO_JSON" ||
    { echo "crypto smoke: table GHASH under the 5x floor over the bit-loop" >&2; cat "$CRYPTO_JSON" >&2; exit 1; }
grep -q '"ctr_batched_faster":true' "$CRYPTO_JSON" ||
    { echo "crypto smoke: batched CTR regressed against the path it replaced" >&2; cat "$CRYPTO_JSON" >&2; exit 1; }
grep -q '"seal_batched_faster":true' "$CRYPTO_JSON" ||
    { echo "crypto smoke: batch seal not faster than the scalar seal pipeline" >&2; cat "$CRYPTO_JSON" >&2; exit 1; }
rm -f "$CRYPTO_JSON"

echo "==> cluster-bench smoke: node-count ladder emits BENCH_cluster.json with quorum throughput fields"
CLUSTER_JSON="$(mktemp -t BENCH_cluster.XXXXXX.json)"
cargo run --release -q -p datablinder-bench --bin fig5_throughput -- \
    --cluster --requests 300 --out "$CLUSTER_JSON" > /dev/null
[ -s "$CLUSTER_JSON" ] ||
    { echo "cluster smoke: BENCH_cluster.json not produced" >&2; exit 1; }
grep -q '"quorum_write_per_s":[1-9]' "$CLUSTER_JSON" ||
    { echo "cluster smoke: quorum write throughput missing or zero" >&2; cat "$CLUSTER_JSON" >&2; exit 1; }
grep -q '"quorum_read_per_s":[1-9]' "$CLUSTER_JSON" ||
    { echo "cluster smoke: quorum read throughput missing or zero" >&2; cat "$CLUSTER_JSON" >&2; exit 1; }
grep -q '"rejoins":1' "$CLUSTER_JSON" ||
    { echo "cluster smoke: mid-run kill/rejoin did not happen on a multi-node rung" >&2; cat "$CLUSTER_JSON" >&2; exit 1; }
grep -Eq '"resync_ms":[0-9]*\.[0-9]+' "$CLUSTER_JSON" ||
    { echo "cluster smoke: rejoin resync time missing from rung reports" >&2; cat "$CLUSTER_JSON" >&2; exit 1; }
grep -q '"anti_entropy_rounds":[1-9]' "$CLUSTER_JSON" ||
    { echo "cluster smoke: anti-entropy convergence rounds missing from rung reports" >&2; cat "$CLUSTER_JSON" >&2; exit 1; }
grep -Eq '"obs_disabled_write_per_s":[1-9][0-9]*\.' "$CLUSTER_JSON" ||
    { echo "cluster smoke: obs-off baseline throughput missing or zero" >&2; cat "$CLUSTER_JSON" >&2; exit 1; }
grep -Eq '"obs_enabled_write_per_s":[1-9][0-9]*\.' "$CLUSTER_JSON" ||
    { echo "cluster smoke: obs-on throughput missing or zero" >&2; cat "$CLUSTER_JSON" >&2; exit 1; }
grep -Eq '"obs_overhead_pct":-?[0-9]+\.[0-9]+' "$CLUSTER_JSON" ||
    { echo "cluster smoke: observability overhead percentage missing" >&2; cat "$CLUSTER_JSON" >&2; exit 1; }
rm -f "$CLUSTER_JSON"

echo "==> tcp transport: frame/pipelining suites and the netsim-vs-TCP differential oracle"
cargo test --release -q -p datablinder-netsim --test tcp_transport
cargo test --release -q -p datablinder-netsim --test tcpframe_props
cargo test --release -q -p datablinder-core --test transport_differential

echo "==> tcp smoke: loopback datablinder-cloudd answers a wire ping"
cargo build --release -q -p datablinder-cloudd
# --listen :0 makes the kernel pick a free port (port-in-use safe); the
# daemon prints "LISTENING <addr>" for us to parse.
CLOUDD_LOG="$(mktemp -t cloudd.XXXXXX.log)"
./target/release/datablinder-cloudd --listen 127.0.0.1:0 > "$CLOUDD_LOG" &
CLOUDD_PID=$!
trap 'kill "$CLOUDD_PID" 2> /dev/null || true' EXIT
CLOUDD_ADDR=""
for _ in $(seq 1 50); do
    CLOUDD_ADDR="$(sed -n 's/^LISTENING //p' "$CLOUDD_LOG")"
    [ -n "$CLOUDD_ADDR" ] && break
    sleep 0.1
done
[ -n "$CLOUDD_ADDR" ] ||
    { echo "tcp smoke: daemon never printed LISTENING" >&2; cat "$CLOUDD_LOG" >&2; exit 1; }
./target/release/datablinder-cloudd --smoke "$CLOUDD_ADDR" | grep -q '^PONG' ||
    { echo "tcp smoke: ping against $CLOUDD_ADDR failed" >&2; exit 1; }
kill "$CLOUDD_PID" 2> /dev/null || true
wait "$CLOUDD_PID" 2> /dev/null || true
trap - EXIT
rm -f "$CLOUDD_LOG"

echo "==> tcp-bench smoke: loopback rung emits BENCH_tcp.json with a throughput field"
TCP_JSON="$(mktemp -t BENCH_tcp.XXXXXX.json)"
cargo run --release -q -p datablinder-bench --bin fig5_throughput -- \
    --tcp --net instant --workers 4 --requests 200 --out "$TCP_JSON" > /dev/null
[ -s "$TCP_JSON" ] ||
    { echo "tcp smoke: BENCH_tcp.json not produced" >&2; exit 1; }
grep -q '"ops_per_s":[1-9]' "$TCP_JSON" ||
    { echo "tcp smoke: ops_per_s missing or zero" >&2; cat "$TCP_JSON" >&2; exit 1; }
grep -q '"round_trips":[1-9]' "$TCP_JSON" ||
    { echo "tcp smoke: no wire round trips recorded" >&2; cat "$TCP_JSON" >&2; exit 1; }
grep -q '"failed":0' "$TCP_JSON" ||
    { echo "tcp smoke: rung reported failed requests" >&2; cat "$TCP_JSON" >&2; exit 1; }
rm -f "$TCP_JSON"

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: all green"
