//! # DataBlinder (Rust reproduction)
//!
//! A from-scratch reproduction of *"DataBlinder: A distributed data
//! protection middleware supporting search and computation on encrypted
//! data"* (Heydari Beni et al., Middleware Industry '19).
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on one crate:
//!
//! * [`core`] — the middleware itself (models, SPI, registry, engines),
//! * [`sse`], [`ope`], [`ore`], [`paillier`] — the cryptographic tactics,
//! * [`primitives`], [`bigint`] — the crypto substrate,
//! * [`kvstore`], [`docstore`], [`kms`], [`netsim`] — the system substrate,
//! * [`fhir`], [`workload`] — the healthcare validation case and the
//!   evaluation harness.
//!
//! Start with `examples/quickstart.rs`; the architecture map lives in
//! `DESIGN.md` and the measured reproduction of the paper's evaluation in
//! `EXPERIMENTS.md`.
//!
//! # Examples
//!
//! ```
//! use datablinder::core::cloud::CloudEngine;
//! use datablinder::core::gateway::GatewayEngine;
//! use datablinder::core::model::*;
//! use datablinder::docstore::{Document, Value};
//! use datablinder::kms::Kms;
//! use datablinder::netsim::{Channel, LatencyModel};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), datablinder::core::CoreError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let channel = Channel::connect(CloudEngine::new(), LatencyModel::lan());
//! let mut gateway = GatewayEngine::new("app", Kms::generate(&mut rng), channel, 7);
//! gateway.register_schema(datablinder::fhir::observation_schema())?;
//! let id = gateway.insert("observation", &datablinder::fhir::example_observation())?;
//! assert_eq!(
//!     gateway.get("observation", id)?.get("subject"),
//!     Some(&Value::from("John Doe"))
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
pub use datablinder_bigint as bigint;
pub use datablinder_core as core;
pub use datablinder_docstore as docstore;
pub use datablinder_fhir as fhir;
pub use datablinder_kms as kms;
pub use datablinder_kvstore as kvstore;
pub use datablinder_netsim as netsim;
pub use datablinder_obs as obs;
pub use datablinder_ope as ope;
pub use datablinder_ore as ore;
pub use datablinder_paillier as paillier;
pub use datablinder_primitives as primitives;
pub use datablinder_sse as sse;
pub use datablinder_workload as workload;
