//! Crypto-agility integration tests: tactic deprecation re-routing, the
//! ORE fallback path, and key rotation with live re-encryption.

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::*;
use datablinder::core::registry::TacticRegistry;
use datablinder::docstore::{Document, Filter, Value};
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, LatencyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn range_schema() -> Schema {
    Schema::new("events").sensitive_field(
        "at",
        FieldType::Integer,
        true,
        FieldAnnotation::new(ProtectionClass::C5, vec![FieldOp::Insert, FieldOp::Range]),
    )
}

#[test]
fn ore_serves_ranges_when_ope_is_deprecated() {
    // An OPE-reconstruction attack is published: the operator pulls OPE.
    let mut registry = TacticRegistry::with_builtins();
    assert!(registry.deprecate("ope"));
    let selection = registry
        .select("at", &FieldAnnotation::new(ProtectionClass::C5, vec![FieldOp::Insert, FieldOp::Range]))
        .unwrap();
    assert_eq!(selection.search_tactics, vec!["ore"], "ORE takes over range duty");

    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0x0AE);
    let gw = GatewayEngine::with_registry("agile", Kms::generate(&mut rng), channel, 1, registry);
    gw.register_schema(range_schema()).unwrap();

    for t in [100i64, 200, 300, 400] {
        gw.insert("events", &Document::new("x").with("at", Value::from(t))).unwrap();
    }
    let hits = gw.find_range("events", "at", &Value::from(150i64), &Value::from(350i64)).unwrap();
    assert_eq!(hits.len(), 2);
    let mut values: Vec<i64> = hits.iter().map(|d| d.get("at").unwrap().as_i64().unwrap()).collect();
    values.sort();
    assert_eq!(values, vec![200, 300]);
}

#[test]
fn payload_key_rotation_reencrypts_documents() {
    let cloud = CloudEngine::new();
    let docs = cloud.docs().clone();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0x0707);
    let gw = GatewayEngine::new("rotate", Kms::generate(&mut rng), channel, 2);

    let schema = Schema::new("vault").sensitive_field(
        "secret",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C1, vec![FieldOp::Insert]),
    );
    gw.register_schema(schema).unwrap();

    let mut ids = Vec::new();
    for i in 0..5 {
        let id = gw.insert("vault", &Document::new("x").with("secret", Value::from(format!("payload-{i}")))).unwrap();
        ids.push(id);
    }
    // Snapshot the ciphertexts before rotation.
    let before: Vec<Vec<u8>> = docs
        .collection("vault")
        .find(&Filter::All)
        .iter()
        .map(|d| d.get("secret__rnd").unwrap().as_bytes().unwrap().to_vec())
        .collect();

    let version = gw.rotate_payload_key("vault", "secret").unwrap();
    assert_eq!(version, 1);

    // Every ciphertext changed...
    let after: Vec<Vec<u8>> = docs
        .collection("vault")
        .find(&Filter::All)
        .iter()
        .map(|d| d.get("secret__rnd").unwrap().as_bytes().unwrap().to_vec())
        .collect();
    for a in &after {
        assert!(!before.contains(a), "ciphertext not re-encrypted");
    }
    // ...and every plaintext still decrypts with the post-rotation engine.
    for (i, id) in ids.iter().enumerate() {
        let doc = gw.get("vault", *id).unwrap();
        assert_eq!(doc.get("secret"), Some(&Value::from(format!("payload-{i}"))));
    }
    // New inserts use the rotated key and coexist with re-encrypted data.
    let id = gw.insert("vault", &Document::new("x").with("secret", Value::from("fresh"))).unwrap();
    assert_eq!(gw.get("vault", id).unwrap().get("secret"), Some(&Value::from("fresh")));
}

#[test]
fn rotation_of_det_keeps_equality_search_consistent() {
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0x0708);
    let gw = GatewayEngine::new("rotate-det", Kms::generate(&mut rng), channel, 3);
    let schema = Schema::new("cards").sensitive_field(
        "kind",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C4, vec![FieldOp::Insert, FieldOp::Equality]),
    );
    gw.register_schema(schema).unwrap();

    for kind in ["visa", "visa", "amex"] {
        gw.insert("cards", &Document::new("x").with("kind", Value::from(kind))).unwrap();
    }
    assert_eq!(gw.find_equal("cards", "kind", &Value::from("visa")).unwrap().len(), 2);

    gw.rotate_payload_key("cards", "kind").unwrap();

    // Searches after rotation use fresh tokens against re-encrypted
    // shadow fields: results unchanged.
    assert_eq!(gw.find_equal("cards", "kind", &Value::from("visa")).unwrap().len(), 2);
    assert_eq!(gw.find_equal("cards", "kind", &Value::from("amex")).unwrap().len(), 1);
    // And inserts after rotation land in the same searchable space.
    gw.insert("cards", &Document::new("x").with("kind", Value::from("visa"))).unwrap();
    assert_eq!(gw.find_equal("cards", "kind", &Value::from("visa")).unwrap().len(), 3);
}

#[test]
fn zmf_variant_serves_boolean_when_2lev_deprecated() {
    let mut registry = TacticRegistry::with_builtins();
    registry.deprecate("biex-2lev");
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0x0709);
    let gw = GatewayEngine::with_registry("zmf", Kms::generate(&mut rng), channel, 4, registry);
    let schema = Schema::new("posts")
        .sensitive_field(
            "tag",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C3, vec![FieldOp::Insert, FieldOp::Equality, FieldOp::Boolean]),
        )
        .sensitive_field(
            "lang",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C3, vec![FieldOp::Insert, FieldOp::Equality, FieldOp::Boolean]),
        );
    gw.register_schema(schema).unwrap();
    assert_eq!(gw.selection("posts", "tag").unwrap().search_tactics, vec!["biex-zmf"]);

    gw.insert("posts", &Document::new("x").with("tag", Value::from("rust")).with("lang", Value::from("en"))).unwrap();
    gw.insert("posts", &Document::new("x").with("tag", Value::from("rust")).with("lang", Value::from("nl"))).unwrap();
    gw.insert("posts", &Document::new("x").with("tag", Value::from("java")).with("lang", Value::from("en"))).unwrap();

    let dnf = vec![vec![("tag".to_string(), Value::from("rust")), ("lang".to_string(), Value::from("en"))]];
    assert_eq!(gw.find_boolean("posts", &dnf).unwrap().len(), 1);
}

#[test]
fn index_key_rotation_rebuilds_searchable_index() {
    let cloud = CloudEngine::new();
    let kv = cloud.kv().clone();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0x1D0);
    let gw = GatewayEngine::new("rotidx", Kms::generate(&mut rng), channel, 9);
    let schema = Schema::new("notes").sensitive_field(
        "owner",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
    );
    gw.register_schema(schema).unwrap();
    for owner in ["ann", "ann", "bob"] {
        gw.insert("notes", &Document::new("x").with("owner", Value::from(owner))).unwrap();
    }
    let entries_before: Vec<Vec<u8>> = kv.keys_with_prefix(b"t/mitra/notes:owner/");
    assert!(!entries_before.is_empty());
    assert_eq!(gw.find_equal("notes", "owner", &Value::from("ann")).unwrap().len(), 2);

    let version = gw.rotate_index_key("notes", "owner").unwrap();
    assert_eq!(version, 1);

    // The index was rebuilt: same cardinality, all-new addresses.
    let entries_after: Vec<Vec<u8>> = kv.keys_with_prefix(b"t/mitra/notes:owner/");
    assert_eq!(entries_after.len(), entries_before.len());
    for e in &entries_after {
        assert!(!entries_before.contains(e), "index entry not re-keyed");
    }
    // Searches under the new key see everything...
    assert_eq!(gw.find_equal("notes", "owner", &Value::from("ann")).unwrap().len(), 2);
    assert_eq!(gw.find_equal("notes", "owner", &Value::from("bob")).unwrap().len(), 1);
    // ...and new inserts chain onto the rotated index.
    gw.insert("notes", &Document::new("x").with("owner", Value::from("ann"))).unwrap();
    assert_eq!(gw.find_equal("notes", "owner", &Value::from("ann")).unwrap().len(), 3);
}

#[test]
fn index_rotation_rejects_non_index_tactics() {
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0x1D1);
    let gw = GatewayEngine::new("rotidx2", Kms::generate(&mut rng), channel, 10);
    let schema = Schema::new("cards").sensitive_field(
        "kind",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C4, vec![FieldOp::Insert, FieldOp::Equality]),
    );
    gw.register_schema(schema).unwrap();
    // DET is a payload tactic: rotate_payload_key is the right flow.
    assert!(gw.rotate_index_key("cards", "kind").is_err());
}
