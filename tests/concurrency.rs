//! Model-based concurrency suite: M threads hammer ONE shared
//! [`GatewayEngine`] with a seeded mix of inserts, batch inserts, updates,
//! deletes, equality/range searches and Paillier sums; every committed
//! write is logged, then replayed against a fresh single-threaded oracle
//! engine and a plain `HashMap` model. The shared engine's final state
//! must match both.
//!
//! Threads own disjoint document-id sets (each mutates only documents it
//! inserted), so the committed logs commute: the final state is a
//! deterministic function of the seeds, whatever the interleaving. That
//! is what makes the differential check exact rather than heuristic —
//! and it mirrors the deployment the `&self` routes exist for: one
//! middleware instance shared by an application server's thread pool.
//!
//! During the run every thread also checks read-your-writes through
//! `get` (its ids are private to it, so its own last write must be
//! visible), and every concurrent query must complete without error.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::{AggFn, FieldAnnotation, FieldOp, FieldType, ProtectionClass, Schema};
use datablinder::core::pool::WorkerPool;
use datablinder::docstore::{Document, Value};
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, LatencyModel};
use datablinder::sse::DocId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SCHEMA: &str = "records";
const OWNERS: [&str; 6] = ["o0", "o1", "o2", "o3", "o4", "o5"];

fn schema() -> Schema {
    use FieldOp::*;
    Schema::new(SCHEMA)
        .sensitive_field(
            "owner",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![Insert, Equality]),
        )
        .sensitive_field(
            "score",
            FieldType::Integer,
            true,
            FieldAnnotation::new(ProtectionClass::C5, vec![Insert, Range]).with_aggs(vec![AggFn::Sum]),
        )
}

fn engine(seed: u64, pool_threads: usize) -> GatewayEngine {
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gw = GatewayEngine::new("conc", Kms::generate(&mut rng), channel, seed);
    if pool_threads > 0 {
        gw.set_worker_pool(Arc::new(WorkerPool::new(pool_threads)));
    }
    gw.register_schema(schema()).unwrap();
    gw
}

fn doc_of(owner: &str, score: i64) -> Document {
    Document::new("x").with("owner", Value::from(owner)).with("score", Value::from(score))
}

/// A committed write, logged by the thread that performed it.
#[derive(Clone)]
enum WriteOp {
    Insert { id: DocId, owner: String, score: i64 },
    Update { id: DocId, owner: String, score: i64 },
    Delete { id: DocId },
}

/// One worker's seeded session against the shared engine. Returns the
/// log of committed writes, in program order.
fn drive(gw: &GatewayEngine, seed: u64, ops: usize) -> Vec<WriteOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log: Vec<WriteOp> = Vec::new();
    // (id, owner, score) of documents this thread owns, as last written.
    let mut mine: Vec<(DocId, String, i64)> = Vec::new();
    // Prime with one insert (as the workload runner does): queries against
    // a scope no insert has set up yet fail identically on a
    // single-threaded engine, so they are out of contract here too.
    {
        let owner = OWNERS[rng.gen_range(0..OWNERS.len())].to_string();
        let score: i64 = rng.gen_range(-1_000..1_000);
        let id = gw.insert(SCHEMA, &doc_of(&owner, score)).unwrap();
        log.push(WriteOp::Insert { id, owner: owner.clone(), score });
        mine.push((id, owner, score));
    }
    for op in 0..ops {
        match rng.gen_range(0..10u32) {
            // Inserts dominate so the other ops have material to work on.
            0..=3 => {
                let owner = OWNERS[rng.gen_range(0..OWNERS.len())].to_string();
                let score: i64 = rng.gen_range(-1_000..1_000);
                let id = gw.insert(SCHEMA, &doc_of(&owner, score)).unwrap();
                log.push(WriteOp::Insert { id, owner: owner.clone(), score });
                mine.push((id, owner, score));
            }
            // Batch insert through the worker-pool path.
            4 => {
                let batch: Vec<(String, i64)> = (0..3)
                    .map(|_| (OWNERS[rng.gen_range(0..OWNERS.len())].to_string(), rng.gen_range(-1_000..1_000)))
                    .collect();
                let docs: Vec<Document> = batch.iter().map(|(o, s)| doc_of(o, *s)).collect();
                let ids = gw.insert_many(SCHEMA, &docs).unwrap();
                assert_eq!(ids.len(), docs.len());
                for (id, (owner, score)) in ids.into_iter().zip(batch) {
                    log.push(WriteOp::Insert { id, owner: owner.clone(), score });
                    mine.push((id, owner, score));
                }
            }
            5 => {
                if mine.is_empty() {
                    continue;
                }
                let k = rng.gen_range(0..mine.len());
                let owner = OWNERS[rng.gen_range(0..OWNERS.len())].to_string();
                let score: i64 = rng.gen_range(-1_000..1_000);
                let id = mine[k].0;
                gw.update(SCHEMA, id, &doc_of(&owner, score)).unwrap();
                log.push(WriteOp::Update { id, owner: owner.clone(), score });
                mine[k] = (id, owner, score);
            }
            6 => {
                if mine.is_empty() {
                    continue;
                }
                let k = rng.gen_range(0..mine.len());
                let (id, _, _) = mine.swap_remove(k);
                gw.delete(SCHEMA, id).unwrap();
                log.push(WriteOp::Delete { id });
                assert!(gw.get(SCHEMA, id).is_err(), "deleted doc must be gone for its owner thread");
            }
            7 => {
                let owner = OWNERS[rng.gen_range(0..OWNERS.len())];
                gw.find_equal(SCHEMA, "owner", &Value::from(owner)).unwrap();
            }
            8 => {
                let lo: i64 = rng.gen_range(-1_000..0);
                let hi: i64 = rng.gen_range(0..1_000);
                gw.find_range(SCHEMA, "score", &Value::from(lo), &Value::from(hi)).unwrap();
            }
            _ => {
                gw.aggregate(SCHEMA, "score", AggFn::Sum, None).unwrap();
            }
        }
        // Read-your-writes on a private id: no other thread touches it.
        if op % 7 == 0 && !mine.is_empty() {
            let (id, owner, score) = &mine[mine.len() - 1];
            let got = gw.get(SCHEMA, *id).unwrap();
            assert_eq!(got.get("owner"), Some(&Value::from(owner.as_str())), "read-your-writes owner");
            assert_eq!(got.get("score"), Some(&Value::from(*score)), "read-your-writes score");
        }
    }
    log
}

/// The final expected state, derived by replaying committed logs.
fn replay(logs: &[Vec<WriteOp>]) -> (GatewayEngine, HashMap<String, (String, i64)>) {
    let oracle = engine(0x0A_C1E, 0);
    // Model keyed by the SHARED run's id (hex): exact id-level expectations
    // for the shared engine. The oracle mints its own ids, so it is
    // compared by content multisets instead.
    let mut model: HashMap<String, (String, i64)> = HashMap::new();
    // shared-run id -> oracle id, so updates/deletes replay correctly.
    let mut remap: HashMap<String, DocId> = HashMap::new();
    for log in logs {
        for op in log {
            match op {
                WriteOp::Insert { id, owner, score } => {
                    let oid = oracle.insert(SCHEMA, &doc_of(owner, *score)).unwrap();
                    remap.insert(id.to_hex(), oid);
                    model.insert(id.to_hex(), (owner.clone(), *score));
                }
                WriteOp::Update { id, owner, score } => {
                    oracle.update(SCHEMA, remap[&id.to_hex()], &doc_of(owner, *score)).unwrap();
                    model.insert(id.to_hex(), (owner.clone(), *score));
                }
                WriteOp::Delete { id } => {
                    oracle.delete(SCHEMA, remap[&id.to_hex()]).unwrap();
                    remap.remove(&id.to_hex());
                    model.remove(&id.to_hex());
                }
            }
        }
    }
    (oracle, model)
}

/// Sorted (owner, score) multiset of a result set — the id-free view both
/// engines must agree on.
fn contents(docs: &[Document]) -> Vec<(String, i64)> {
    let mut v: Vec<(String, i64)> = docs
        .iter()
        .map(|d| (d.get("owner").unwrap().as_str().unwrap().to_string(), d.get("score").unwrap().as_i64().unwrap()))
        .collect();
    v.sort();
    v
}

fn sorted_ids(docs: &[Document]) -> Vec<String> {
    let mut v: Vec<String> = docs.iter().map(|d| d.id().to_string()).collect();
    v.sort();
    v
}

fn run_model(threads: usize, seed: u64, ops_per_thread: usize) {
    let shared = Arc::new(engine(seed, 2));
    let logs: Vec<Vec<WriteOp>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let gw = Arc::clone(&shared);
                s.spawn(move || drive(&gw, seed ^ (t as u64).wrapping_mul(0x9E37_79B9), ops_per_thread))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread must not panic")).collect()
    });

    let (oracle, model) = replay(&logs);

    // Cardinality: shared engine, oracle engine and model all agree.
    assert_eq!(shared.count(SCHEMA).unwrap(), model.len() as u64, "shared count vs model");
    assert_eq!(oracle.count(SCHEMA).unwrap(), model.len() as u64, "oracle count vs model");

    // Equality searches: the shared engine must return exactly the model's
    // ids (and decrypt to the model's contents); the oracle must return
    // the same contents under its own ids.
    for owner in OWNERS {
        let hits = shared.find_equal(SCHEMA, "owner", &Value::from(owner)).unwrap();
        let mut expect_ids: Vec<String> =
            model.iter().filter(|(_, (o, _))| o == owner).map(|(id, _)| id.clone()).collect();
        expect_ids.sort();
        assert_eq!(sorted_ids(&hits), expect_ids, "shared eq({owner}) ids");
        let mut expect_contents: Vec<(String, i64)> = model.values().filter(|(o, _)| o == owner).cloned().collect();
        expect_contents.sort();
        assert_eq!(contents(&hits), expect_contents, "shared eq({owner}) contents");
        let oracle_hits = oracle.find_equal(SCHEMA, "owner", &Value::from(owner)).unwrap();
        assert_eq!(contents(&oracle_hits), expect_contents, "oracle eq({owner}) contents");
    }

    // Range searches at fixed windows.
    for (lo, hi) in [(-1_000i64, 1_000i64), (-500, -1), (0, 250), (400, 999)] {
        let hits = shared.find_range(SCHEMA, "score", &Value::from(lo), &Value::from(hi)).unwrap();
        let mut expect_ids: Vec<String> =
            model.iter().filter(|(_, (_, s))| (lo..=hi).contains(s)).map(|(id, _)| id.clone()).collect();
        expect_ids.sort();
        assert_eq!(sorted_ids(&hits), expect_ids, "shared range[{lo},{hi}] ids");
        let oracle_hits = oracle.find_range(SCHEMA, "score", &Value::from(lo), &Value::from(hi)).unwrap();
        assert_eq!(contents(&oracle_hits), contents(&hits), "oracle range[{lo},{hi}]");
    }

    // Paillier sum over everything.
    let expect_sum: i64 = model.values().map(|(_, s)| *s).sum();
    let shared_sum = shared.aggregate(SCHEMA, "score", AggFn::Sum, None).unwrap();
    let oracle_sum = oracle.aggregate(SCHEMA, "score", AggFn::Sum, None).unwrap();
    assert!((shared_sum - expect_sum as f64).abs() < 1e-6, "shared sum {shared_sum} vs model {expect_sum}");
    assert!((oracle_sum - expect_sum as f64).abs() < 1e-6, "oracle sum {oracle_sum} vs model {expect_sum}");

    // Index/payload cross-consistency survived the storm.
    assert!(shared.fsck(SCHEMA).unwrap().is_clean(), "shared engine fsck");
    assert!(oracle.fsck(SCHEMA).unwrap().is_clean(), "oracle fsck");
}

/// An engine wired to a cloud we keep a handle on, so the test can
/// compare raw stored state (ciphertext bytes, index records) across runs.
fn engine_with_cloud(seed: u64, pool_threads: usize) -> (Arc<CloudEngine>, GatewayEngine) {
    let cloud = Arc::new(CloudEngine::new());
    let channel = Channel::from_arc(cloud.clone(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gw = GatewayEngine::new("conc", Kms::generate(&mut rng), channel, seed);
    if pool_threads > 0 {
        gw.set_worker_pool(Arc::new(WorkerPool::new(pool_threads)));
    }
    gw.register_schema(schema()).unwrap();
    (cloud, gw)
}

/// Seeded insert_many workload: mixed batch sizes (1..=5) so both the
/// pooled batch path (len > 1) and the sequential fallback (len == 1)
/// are exercised in one run.
fn drive_batches(gw: &GatewayEngine, seed: u64) -> Vec<DocId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = Vec::new();
    for round in 0..8usize {
        let n = 1 + round % 5;
        let docs: Vec<Document> =
            (0..n).map(|_| doc_of(OWNERS[rng.gen_range(0..OWNERS.len())], rng.gen_range(-1_000..1_000))).collect();
        ids.extend(gw.insert_many(SCHEMA, &docs).unwrap());
    }
    ids
}

/// The cloud's full observable state: every stored document (ids plus
/// shadow-field ciphertexts) per collection, and every key-value index
/// record, both canonically ordered.
fn cloud_state(cloud: &CloudEngine) -> (Vec<(String, Vec<Document>)>, Vec<String>) {
    let mut collections = cloud.docs().collection_names();
    collections.sort();
    let docs = collections
        .into_iter()
        .map(|name| {
            let coll = cloud.docs().collection(&name);
            let mut ids = coll.ids();
            ids.sort();
            let docs = ids.iter().map(|id| coll.get(id).unwrap()).collect();
            (name, docs)
        })
        .collect();
    let mut kv: Vec<String> = cloud.kv().export_records().iter().map(|r| format!("{r:?}")).collect();
    kv.sort();
    (docs, kv)
}

/// Satellite of the batch-encryption PR: `insert_many` through the
/// worker-pool batch path (which protects each tactic partition with one
/// `protect_many` / `seal_many` call) must leave the cloud **byte-identical**
/// to the sequential no-pool path — same document ids, same shadow-field
/// ciphertexts, same index records — at 1, 2 and 4 worker threads. Abort
/// atomicity is also unchanged: a batch with an invalid document ships
/// nothing on either path.
#[test]
fn batched_insert_many_is_byte_identical_to_sequential() {
    const SEED: u64 = 0xBA7C4;
    let (seq_cloud, seq_gw) = engine_with_cloud(SEED, 0);
    let seq_ids = drive_batches(&seq_gw, SEED);
    let baseline = cloud_state(&seq_cloud);

    for threads in [1usize, 2, 4] {
        let (cloud, gw) = engine_with_cloud(SEED, threads);
        let ids = drive_batches(&gw, SEED);
        assert_eq!(ids, seq_ids, "doc ids with {threads}-thread pool");
        let state = cloud_state(&cloud);
        assert_eq!(state.0, baseline.0, "stored documents with {threads}-thread pool");
        assert_eq!(state.1, baseline.1, "kv index records with {threads}-thread pool");

        // Abort atomicity: one invalid document poisons the whole batch.
        let before = gw.count(SCHEMA).unwrap();
        let bad = vec![
            doc_of("o0", 1),
            Document::new("x").with("owner", Value::from("o1")).with("score", Value::from("not-a-number")),
        ];
        assert!(gw.insert_many(SCHEMA, &bad).is_err(), "invalid doc must abort the batch");
        assert_eq!(gw.count(SCHEMA).unwrap(), before, "aborted batch must ship nothing");
    }
}

#[test]
fn two_threads_match_oracle() {
    run_model(2, 0xC0_01, 30);
}

#[test]
fn four_threads_match_oracle() {
    run_model(4, 0xC0_02, 18);
}

#[test]
fn eight_threads_match_oracle() {
    run_model(8, 0xC0_03, 10);
}
