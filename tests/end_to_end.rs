//! End-to-end integration: the full healthcare flow through gateway,
//! channel and cloud, verified against a plaintext oracle.

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::AggFn;
use datablinder::core::spi::DnfLiterals;
use datablinder::docstore::{Document, Value};
use datablinder::fhir::{example_observation, observation_schema, ObservationGenerator};
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, LatencyModel};
use datablinder::sse::DocId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (GatewayEngine, Vec<Document>) {
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::lan());
    let mut rng = StdRng::seed_from_u64(0xE2E);
    let gateway = GatewayEngine::new("e2e", Kms::generate(&mut rng), channel, 5);
    gateway.register_schema(observation_schema()).unwrap();

    let mut corpus = vec![example_observation()];
    let mut generator = ObservationGenerator::new(10);
    for _ in 0..80 {
        corpus.push(generator.generate(&mut rng));
    }
    for doc in &corpus {
        gateway.insert("observation", doc).unwrap();
    }
    (gateway, corpus)
}

fn subject_of(d: &Document) -> &str {
    d.get("subject").unwrap().as_str().unwrap()
}

#[test]
fn equality_search_matches_oracle() {
    let (gw, corpus) = setup();
    for needle in ["John Doe", "Patient 00003", "Patient 00007", "Nobody"] {
        let hits = gw.find_equal("observation", "subject", &Value::from(needle)).unwrap();
        let expect = corpus.iter().filter(|d| subject_of(d) == needle).count();
        assert_eq!(hits.len(), expect, "subject {needle}");
        for h in &hits {
            assert_eq!(h.get("subject"), Some(&Value::from(needle)), "decrypted subject");
        }
    }
}

#[test]
fn boolean_search_matches_oracle() {
    let (gw, corpus) = setup();
    let dnf: DnfLiterals = vec![
        vec![("status".into(), Value::from("final")), ("code".into(), Value::from("glucose"))],
        vec![("status".into(), Value::from("amended"))],
    ];
    let hits = gw.find_boolean("observation", &dnf).unwrap();
    let expect = corpus
        .iter()
        .filter(|d| {
            (d.get("status") == Some(&Value::from("final")) && d.get("code") == Some(&Value::from("glucose")))
                || d.get("status") == Some(&Value::from("amended"))
        })
        .count();
    assert_eq!(hits.len(), expect);
}

#[test]
fn range_search_matches_oracle() {
    let (gw, corpus) = setup();
    let (lo, hi) = (1_400_000_000i64, 1_500_000_000i64);
    let hits = gw.find_range("observation", "effective", &Value::from(lo), &Value::from(hi)).unwrap();
    let expect = corpus
        .iter()
        .filter(|d| {
            let v = d.get("effective").unwrap().as_i64().unwrap();
            v >= lo && v <= hi
        })
        .count();
    assert_eq!(hits.len(), expect);
    for h in &hits {
        let v = h.get("effective").unwrap().as_i64().unwrap();
        assert!((lo..=hi).contains(&v), "hit {v} outside range");
    }
}

#[test]
fn homomorphic_average_matches_oracle() {
    let (gw, corpus) = setup();
    let avg = gw.aggregate("observation", "value", AggFn::Avg, None).unwrap();
    let oracle: f64 =
        corpus.iter().map(|d| d.get("value").unwrap().as_f64().unwrap()).sum::<f64>() / corpus.len() as f64;
    assert!((avg - oracle).abs() < 0.01, "avg {avg} vs oracle {oracle}");

    // Filtered aggregate: average of glucose values only.
    let filter: DnfLiterals = vec![vec![("code".into(), Value::from("glucose"))]];
    let glucose: Vec<f64> = corpus
        .iter()
        .filter(|d| d.get("code") == Some(&Value::from("glucose")))
        .map(|d| d.get("value").unwrap().as_f64().unwrap())
        .collect();
    let avg_glucose = gw.aggregate("observation", "value", AggFn::Avg, Some(&filter)).unwrap();
    let oracle_glucose = glucose.iter().sum::<f64>() / glucose.len() as f64;
    assert!((avg_glucose - oracle_glucose).abs() < 0.01, "{avg_glucose} vs {oracle_glucose}");

    let sum = gw.aggregate("observation", "value", AggFn::Sum, Some(&filter)).unwrap();
    assert!((sum - glucose.iter().sum::<f64>()).abs() < 0.01);
    let count = gw.aggregate("observation", "value", AggFn::Count, Some(&filter)).unwrap();
    assert_eq!(count as usize, glucose.len());
}

#[test]
fn get_roundtrips_every_field() {
    let (gw, _) = setup();
    let doc = example_observation();
    let id = gw.insert("observation", &doc).unwrap();
    let got = gw.get("observation", id).unwrap();
    for (field, value) in doc.iter() {
        assert_eq!(got.get(field), Some(value), "field {field}");
    }
}

#[test]
fn delete_removes_document_and_index_entries() {
    let (gw, _) = setup();
    let doc = Document::new("x")
        .with("identifier", Value::from(999_999i64))
        .with("status", Value::from("final"))
        .with("code", Value::from("glucose"))
        .with("subject", Value::from("Deletion Target"))
        .with("effective", Value::from(1_400_000_123i64))
        .with("issued", Value::from(1_400_100_123i64))
        .with("performer", Value::from("Dr. X"))
        .with("value", Value::from(5.0f64));
    let id = gw.insert("observation", &doc).unwrap();
    assert_eq!(gw.find_equal("observation", "subject", &Value::from("Deletion Target")).unwrap().len(), 1);

    gw.delete("observation", id).unwrap();
    assert!(gw.get("observation", id).is_err());
    assert_eq!(gw.find_equal("observation", "subject", &Value::from("Deletion Target")).unwrap().len(), 0);
    // Boolean index revoked too.
    let dnf: DnfLiterals = vec![vec![("status".into(), Value::from("final")), ("code".into(), Value::from("glucose"))]];
    let hits = gw.find_boolean("observation", &dnf).unwrap();
    assert!(hits.iter().all(|d| DocId::from_hex(d.id()) != Some(id)));
}

#[test]
fn update_replaces_values_and_indexes() {
    let (gw, _) = setup();
    let doc = example_observation();
    let id = gw.insert("observation", &doc).unwrap();

    let mut updated = doc.clone();
    updated.set("status", Value::from("amended"));
    updated.set("value", Value::from(9.9f64));
    gw.update("observation", id, &updated).unwrap();

    let got = gw.get("observation", id).unwrap();
    assert_eq!(got.get("status"), Some(&Value::from("amended")));
    assert_eq!(got.get("value"), Some(&Value::from(9.9f64)));
    // The old index entry must be gone; John Doe appears exactly once for
    // the updated doc (the example doc inserted by setup() counts too).
    let hits = gw.find_equal("observation", "subject", &Value::from("John Doe")).unwrap();
    assert_eq!(hits.len(), 2, "setup's copy + updated copy");
}

#[test]
fn count_tracks_inserts() {
    let (gw, corpus) = setup();
    assert_eq!(gw.count("observation").unwrap(), corpus.len() as u64);
    gw.insert("observation", &example_observation()).unwrap();
    assert_eq!(gw.count("observation").unwrap(), corpus.len() as u64 + 1);
}

#[test]
fn tactic_state_survives_gateway_restart() {
    // Export state from one gateway, import into a fresh one over the same
    // cloud, and verify searches still work (the gateway-statefulness
    // challenge of Table 2).
    let cloud = CloudEngine::new();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(404);
    let kms = Kms::generate(&mut rng);

    let gw1 = GatewayEngine::new("restart", kms.clone(), channel.clone(), 1);
    gw1.register_schema(observation_schema()).unwrap();
    gw1.insert("observation", &example_observation()).unwrap();
    let state = gw1.export_tactic_state();
    assert!(!state.is_empty(), "mitra/biex state expected");
    drop(gw1);

    let gw2 = GatewayEngine::new("restart", kms, channel, 2);
    gw2.register_schema(observation_schema()).unwrap();
    gw2.import_tactic_state(&state).unwrap();
    let hits = gw2.find_equal("observation", "subject", &Value::from("John Doe")).unwrap();
    assert_eq!(hits.len(), 1);
    // And new inserts continue the chains without clobbering old entries.
    gw2.insert("observation", &example_observation()).unwrap();
    let hits = gw2.find_equal("observation", "subject", &Value::from("John Doe")).unwrap();
    assert_eq!(hits.len(), 2);
}

#[test]
fn min_max_over_encrypted_timestamps() {
    let (gw, corpus) = setup();
    let max_doc = gw.find_extreme("observation", "effective", true).unwrap().unwrap();
    let min_doc = gw.find_extreme("observation", "effective", false).unwrap().unwrap();
    let oracle_max = corpus.iter().map(|d| d.get("effective").unwrap().as_i64().unwrap()).max().unwrap();
    let oracle_min = corpus.iter().map(|d| d.get("effective").unwrap().as_i64().unwrap()).min().unwrap();
    assert_eq!(max_doc.get("effective").unwrap().as_i64(), Some(oracle_max));
    assert_eq!(min_doc.get("effective").unwrap().as_i64(), Some(oracle_min));

    // Fields without an order-preserving tactic refuse min/max.
    assert!(gw.find_extreme("observation", "subject", true).is_err());
}

#[test]
fn batched_insert_is_equivalent_and_cheaper_on_round_trips() {
    let channel_single = Channel::connect(CloudEngine::new(), LatencyModel::lan());
    let channel_batch = Channel::connect(CloudEngine::new(), LatencyModel::lan());
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let kms = Kms::generate(&mut rng);

    let gw_single = GatewayEngine::new("batch", kms.clone(), channel_single, 1);
    gw_single.register_schema(observation_schema()).unwrap();
    let gw_batch = GatewayEngine::new("batch", kms, channel_batch, 1);
    gw_batch.register_schema(observation_schema()).unwrap();

    let mut generator = ObservationGenerator::new(5);
    let docs: Vec<Document> = (0..20).map(|_| generator.generate(&mut rng)).collect();

    let before_single = gw_single.channel().metrics().round_trips();
    for d in &docs {
        gw_single.insert("observation", d).unwrap();
    }
    let single_trips = gw_single.channel().metrics().round_trips() - before_single;

    let before_batch = gw_batch.channel().metrics().round_trips();
    let ids = gw_batch.insert_many("observation", &docs).unwrap();
    let batch_trips = gw_batch.channel().metrics().round_trips() - before_batch;

    assert_eq!(ids.len(), docs.len());
    assert!(batch_trips < single_trips / 5, "batching must amortize: {batch_trips} vs {single_trips}");

    // Equivalence: both gateways answer queries identically.
    for subject in ["Patient 00000", "Patient 00003"] {
        let a = gw_single.find_equal("observation", "subject", &Value::from(subject)).unwrap().len();
        let b = gw_batch.find_equal("observation", "subject", &Value::from(subject)).unwrap().len();
        assert_eq!(a, b, "subject {subject}");
    }
    let avg_a = gw_single.aggregate("observation", "value", AggFn::Avg, None).unwrap();
    let avg_b = gw_batch.aggregate("observation", "value", AggFn::Avg, None).unwrap();
    assert!((avg_a - avg_b).abs() < 1e-9);

    // Batch validation is all-or-nothing: one bad doc rejects the batch.
    let mut bad = docs.clone();
    bad.push(Document::new("x").with("status", Value::from(42i64)));
    let count_before = gw_batch.count("observation").unwrap();
    assert!(gw_batch.insert_many("observation", &bad).is_err());
    assert_eq!(gw_batch.count("observation").unwrap(), count_before, "nothing sent");
}

#[test]
fn migration_builds_static_boolean_base_then_overlays() {
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::lan());
    let mut rng = StdRng::seed_from_u64(0x316);
    let gw = GatewayEngine::new("migrate", Kms::generate(&mut rng), channel, 6);
    gw.register_schema(observation_schema()).unwrap();

    // Initial migration: a corpus bulk-loaded with the static BIEX base.
    let mut generator = ObservationGenerator::new(6);
    let corpus: Vec<Document> = (0..40).map(|_| generator.generate(&mut rng)).collect();
    let before = gw.channel().metrics().round_trips();
    let ids = gw.migrate("observation", &corpus).unwrap();
    let migration_trips = gw.channel().metrics().round_trips() - before;
    assert_eq!(ids.len(), 40);
    assert!(migration_trips <= 3, "migration must be batched, took {migration_trips} trips");

    // Boolean queries answered from the static base.
    let dnf: DnfLiterals = vec![vec![("status".into(), Value::from("final")), ("code".into(), Value::from("glucose"))]];
    let expect = corpus
        .iter()
        .filter(|d| d.get("status") == Some(&Value::from("final")) && d.get("code") == Some(&Value::from("glucose")))
        .count();
    assert_eq!(gw.find_boolean("observation", &dnf).unwrap().len(), expect);

    // Post-migration inserts land in the dynamic overlay; queries merge.
    let extra = Document::new("x")
        .with("identifier", Value::from(777i64))
        .with("status", Value::from("final"))
        .with("code", Value::from("glucose"))
        .with("subject", Value::from("Overlay Pat"))
        .with("effective", Value::from(1_400_000_000i64))
        .with("issued", Value::from(1_400_100_000i64))
        .with("performer", Value::from("Dr. O"))
        .with("value", Value::from(6.0f64));
    let extra_id = gw.insert("observation", &extra).unwrap();
    assert_eq!(gw.find_boolean("observation", &dnf).unwrap().len(), expect + 1);

    // Deleting a *migrated* (base) document masks it through tombstones.
    if let Some(victim) = corpus
        .iter()
        .zip(ids.iter())
        .find(|(d, _)| d.get("status") == Some(&Value::from("final")) && d.get("code") == Some(&Value::from("glucose")))
    {
        gw.delete("observation", *victim.1).unwrap();
        assert_eq!(gw.find_boolean("observation", &dnf).unwrap().len(), expect);
    }
    // Deleting the overlay document too.
    gw.delete("observation", extra_id).unwrap();
    let remaining = gw.find_boolean("observation", &dnf).unwrap();
    assert!(remaining.iter().all(|d| DocId::from_hex(d.id()) != Some(extra_id)));
}
