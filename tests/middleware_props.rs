//! Property-based integration tests: for random corpora, the middleware's
//! query answers must equal a plaintext oracle's.

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::*;
use datablinder::docstore::{Document, Value};
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, LatencyModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
struct Record {
    owner: String,
    tag: String,
    score: i64,
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        prop::sample::select(vec!["ann", "bob", "cid", "dee"]),
        prop::sample::select(vec!["red", "green", "blue"]),
        -1000i64..1000,
    )
        .prop_map(|(owner, tag, score)| Record { owner: owner.into(), tag: tag.into(), score })
}

fn schema() -> Schema {
    use FieldOp::*;
    Schema::new("records")
        .sensitive_field(
            "owner",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![Insert, Equality]),
        )
        .sensitive_field(
            "tag",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C3, vec![Insert, Equality, Boolean]),
        )
        .sensitive_field(
            "score",
            FieldType::Integer,
            true,
            FieldAnnotation::new(ProtectionClass::C5, vec![Insert, Range]).with_aggs(vec![AggFn::Sum]),
        )
}

fn doc_of(r: &Record) -> Document {
    Document::new("x")
        .with("owner", Value::from(r.owner.as_str()))
        .with("tag", Value::from(r.tag.as_str()))
        .with("score", Value::from(r.score))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn middleware_equals_plaintext_oracle(records in prop::collection::vec(arb_record(), 1..25)) {
        let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
        let mut rng = StdRng::seed_from_u64(0xAB);
        let gw = GatewayEngine::new("prop", Kms::generate(&mut rng), channel, 3);
        gw.register_schema(schema()).unwrap();
        for r in &records {
            gw.insert("records", &doc_of(r)).unwrap();
        }

        // Equality on owner.
        for owner in ["ann", "bob", "cid", "dee", "eve"] {
            let hits = gw.find_equal("records", "owner", &Value::from(owner)).unwrap();
            let expect = records.iter().filter(|r| r.owner == owner).count();
            prop_assert_eq!(hits.len(), expect, "owner {}", owner);
        }

        // Boolean on tag (disjunction).
        let dnf = vec![
            vec![("tag".to_string(), Value::from("red"))],
            vec![("tag".to_string(), Value::from("blue"))],
        ];
        let hits = gw.find_boolean("records", &dnf).unwrap();
        let expect = records.iter().filter(|r| r.tag == "red" || r.tag == "blue").count();
        prop_assert_eq!(hits.len(), expect);

        // Range on score.
        let hits = gw.find_range("records", "score", &Value::from(-100i64), &Value::from(100i64)).unwrap();
        let expect = records.iter().filter(|r| (-100..=100).contains(&r.score)).count();
        prop_assert_eq!(hits.len(), expect);

        // Homomorphic sum (signed values included).
        let sum = gw.aggregate("records", "score", AggFn::Sum, None).unwrap();
        let expect: i64 = records.iter().map(|r| r.score).sum();
        prop_assert!((sum - expect as f64).abs() < 1e-6, "sum {} vs {}", sum, expect);
    }

    #[test]
    fn roundtrip_arbitrary_text_values(texts in prop::collection::vec("[a-zA-Z0-9 ]{0,40}", 1..8)) {
        let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
        let mut rng = StdRng::seed_from_u64(0xCD);
        let gw = GatewayEngine::new("prop2", Kms::generate(&mut rng), channel, 4);
        let schema = Schema::new("blobs").sensitive_field(
            "data",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C1, vec![FieldOp::Insert]),
        );
        gw.register_schema(schema).unwrap();
        for t in &texts {
            let id = gw.insert("blobs", &Document::new("x").with("data", Value::from(t.as_str()))).unwrap();
            let got = gw.get("blobs", id).unwrap();
            prop_assert_eq!(got.get("data"), Some(&Value::from(t.as_str())));
        }
    }
}
