//! End-to-end observability: gateway/channel/cloud route metrics, the
//! leakage audit ledger and measurement-driven tactic selection, all
//! exercised through the public facade.

use std::sync::Arc;
use std::time::Duration;

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::{AggFn, FieldAnnotation, FieldOp, FieldType, LeakageLevel, ProtectionClass, Schema};
use datablinder::core::registry::{MeasuredPerfMetrics, TacticRegistry};
use datablinder::core::spi::DnfLiterals;
use datablinder::docstore::{Document, Value};
use datablinder::fhir::{example_observation, observation_schema, ObservationGenerator};
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, LatencyModel};
use datablinder::obs::{Json, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A gateway over a volatile cloud with an *enabled* recorder installed.
fn observed_gateway(seed: u64) -> GatewayEngine {
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gw = GatewayEngine::new("obs-test", Kms::generate(&mut rng), channel, seed);
    gw.set_recorder(Recorder::new());
    gw.register_schema(observation_schema()).unwrap();
    gw
}

fn corpus(seed: u64, n: usize) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut generator = ObservationGenerator::new(8);
    let mut docs = vec![example_observation()];
    for _ in 1..n {
        docs.push(generator.generate(&mut rng));
    }
    docs
}

#[test]
fn gateway_routes_record_counts_latencies_and_spans() {
    let gw = observed_gateway(0x0B51);
    let docs = corpus(0x0B51, 12);
    let ids: Vec<_> = docs.iter().map(|d| gw.insert("observation", d).unwrap()).collect();

    gw.find_equal("observation", "subject", &Value::from("John Doe")).unwrap();
    gw.find_equal("observation", "subject", &Value::from("Nobody")).unwrap();
    gw.find_range("observation", "issued", &Value::from(0i64), &Value::from(i64::MAX)).unwrap();
    let dnf: DnfLiterals = vec![vec![("status".into(), Value::from("final"))]];
    gw.find_boolean("observation", &dnf).unwrap();
    gw.aggregate("observation", "value", AggFn::Avg, None).unwrap();
    gw.get("observation", ids[0]).unwrap();
    gw.count("observation").unwrap();
    gw.delete("observation", ids[1]).unwrap();
    // An op that fails must land in the errors counter.
    assert!(gw.find_equal("observation", "interpretation", &Value::from("High")).is_err());

    let snap = gw.recorder().snapshot();
    assert_eq!(snap.counter("gateway.insert.count"), docs.len() as u64);
    assert_eq!(snap.counter("gateway.insert.errors"), 0);
    assert_eq!(snap.counter("gateway.find_equal.count"), 3);
    assert_eq!(snap.counter("gateway.find_equal.errors"), 1);
    assert_eq!(snap.counter("gateway.find_range.count"), 1);
    assert_eq!(snap.counter("gateway.find_boolean.count"), 1);
    assert_eq!(snap.counter("gateway.aggregate.count"), 1);
    assert_eq!(snap.counter("gateway.count.count"), 1);
    assert_eq!(snap.counter("gateway.delete.count"), 1);
    // `get` also runs nested inside `delete`'s value recovery.
    assert_eq!(snap.counter("gateway.get.count"), 2);

    let h = snap.histogram("gateway.insert.latency").expect("insert latency histogram");
    assert_eq!(h.count, docs.len() as u64);
    assert!(h.max_nanos >= h.p50_nanos);

    // The recorder was forwarded into the resilient channel: every
    // gateway op above crossed the wire at least once.
    assert!(snap.counter("channel.call.count") > docs.len() as u64);
    assert_eq!(snap.counter("channel.call.errors"), 0);
    assert!(snap.spans_recorded > 0);

    // Per-tactic EWMAs fed the measurement loop.
    assert!(
        snap.ewmas.iter().any(|e| e.name.starts_with("tactic.") && e.name.ends_with(".eq_query")),
        "equality EWMA recorded: {:?}",
        snap.ewmas
    );
    assert!(
        snap.ewmas.iter().any(|e| e.name.starts_with("tactic.") && e.name.ends_with(".range_query")),
        "range EWMA recorded: {:?}",
        snap.ewmas
    );
}

#[test]
fn default_gateway_records_nothing() {
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(7);
    let gw = GatewayEngine::new("obs-test", Kms::generate(&mut rng), channel, 7);
    gw.register_schema(observation_schema()).unwrap();
    gw.insert("observation", &example_observation()).unwrap();
    gw.find_equal("observation", "subject", &Value::from("John Doe")).unwrap();

    let snap = gw.recorder().snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
    assert!(snap.ledger.is_empty());
    assert_eq!(snap.spans_recorded, 0);
}

#[test]
fn leakage_audit_stays_within_declared_bounds() {
    let gw = observed_gateway(0x0B52);
    for doc in corpus(0x0B52, 20) {
        gw.insert("observation", &doc).unwrap();
    }
    gw.find_equal("observation", "subject", &Value::from("John Doe")).unwrap();
    gw.find_equal("observation", "status", &Value::from("final")).unwrap();
    gw.find_range("observation", "issued", &Value::from(0i64), &Value::from(i64::MAX)).unwrap();
    let dnf: DnfLiterals = vec![vec![("status".into(), Value::from("final")), ("code".into(), Value::from("glucose"))]];
    gw.find_boolean("observation", &dnf).unwrap();
    gw.aggregate("observation", "value", AggFn::Avg, None).unwrap();

    let snap = gw.recorder().snapshot();
    assert!(!snap.ledger.is_empty(), "audited operations populate the ledger");

    // Every op the middleware actually ran leaked at or below the field's
    // declared protection-class ceiling.
    for entry in &snap.ledger {
        assert!(
            !entry.violates(),
            "{}/{} via {} observed level {} above declared {}",
            entry.field,
            entry.op,
            entry.tactic,
            entry.observed,
            entry.declared
        );
    }

    // The audit covered the full op surface.
    let ops: Vec<&str> = snap.ledger.iter().map(|e| e.op.as_str()).collect();
    for op in ["insert", "equality", "range", "boolean", "aggregate"] {
        assert!(ops.contains(&op), "ledger covers {op}");
    }
    // Spot-check one cell: equality on the C2 subject field runs on an
    // Identifiers-level tactic, exactly at the ceiling.
    let subject_eq =
        snap.ledger.iter().find(|e| e.field == "subject" && e.op == "equality").expect("subject equality audited");
    assert_eq!(subject_eq.declared, LeakageLevel::Identifiers as u8);
    assert!(subject_eq.observed <= subject_eq.declared);
}

#[test]
fn over_leaking_extension_is_flagged_by_the_ledger() {
    // A third-party tactic that (honestly) reports leaking order-level
    // information while serving a field whose class only admits
    // Identifiers: the ledger records the mismatch and flags it.
    let recorder = Recorder::new();
    recorder.ledger().record(
        "ssn",
        "equality",
        "leaky-ope",
        LeakageLevel::Order as u8,
        LeakageLevel::Identifiers as u8,
    );
    let snap = recorder.snapshot();
    let entry = &snap.ledger[0];
    assert!(entry.violates(), "observed Order above declared Identifiers must flag");

    // And the violation is visible in both renderings.
    let json = Json::parse(&snap.to_json()).unwrap();
    let ledger = json.get("ledger").and_then(Json::as_array).unwrap();
    assert_eq!(ledger.len(), 1);
    assert_eq!(ledger[0].get("violation"), Some(&Json::Bool(true)));
    assert!(snap.to_text().contains("VIOLATION"));
}

#[test]
fn measured_latencies_redirect_selection_end_to_end() {
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0x0B53);
    let recorder = Recorder::new();
    let mut gw = GatewayEngine::new("obs-test", Kms::generate(&mut rng), channel, 0x0B53);
    gw.set_recorder(recorder.clone());

    let annotation = FieldAnnotation::new(ProtectionClass::C4, vec![FieldOp::Insert, FieldOp::Equality]);

    // Statically, DET wins C4 equality (cheapest admissible cover).
    let static_choice = gw.registry().select("ssn", &annotation).unwrap();
    assert_eq!(static_choice.search_tactics, vec!["det".to_string()]);

    // Observed latencies invert the ranking: DET slow, Mitra fast.
    for _ in 0..8 {
        recorder.ewma_observe("tactic.det.eq_query", Duration::from_micros(500));
        recorder.ewma_observe("tactic.mitra.eq_query", Duration::from_micros(5));
    }
    gw.adopt_measurements();
    let measured_choice = gw.registry().select("ssn", &annotation).unwrap();
    assert_eq!(measured_choice.search_tactics, vec!["mitra".to_string()]);
    assert!(measured_choice.reason.contains("measured"), "reason records the override: {}", measured_choice.reason);

    // A schema registered *after* adoption routes through the measured
    // winner for real.
    let schema = Schema::new("persons").sensitive_field("ssn", FieldType::Text, true, annotation);
    gw.register_schema(schema).unwrap();
    let id = gw.insert("persons", &Document::new("p").with("ssn", Value::from("123-45-6789"))).unwrap();
    let hits = gw.find_equal("persons", "ssn", &Value::from("123-45-6789")).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].get("ssn"), Some(&Value::from("123-45-6789")));
    let _ = id;

    let snap = recorder.snapshot();
    assert!(snap.ewma("tactic.mitra.eq_query").is_some());
    assert!(snap.counter("cloud.tactic.mitra.ops") > 0 || snap.counter("channel.call.count") > 0);
}

#[test]
fn measurements_can_be_cleared() {
    let mut registry = TacticRegistry::with_builtins();
    let annotation = FieldAnnotation::new(ProtectionClass::C4, vec![FieldOp::Insert, FieldOp::Equality]);
    let mut m = MeasuredPerfMetrics::new();
    m.set("det", 500_000.0);
    m.set("mitra", 1_000.0);
    registry.set_measurements(m);
    assert_eq!(registry.select("f", &annotation).unwrap().search_tactics, vec!["mitra".to_string()]);
    registry.set_measurements(MeasuredPerfMetrics::new());
    assert_eq!(registry.select("f", &annotation).unwrap().search_tactics, vec!["det".to_string()]);
}

#[test]
fn snapshot_json_parses_with_nonzero_route_counters() {
    let gw = observed_gateway(0x0B54);
    for doc in corpus(0x0B54, 5) {
        gw.insert("observation", &doc).unwrap();
    }
    gw.find_equal("observation", "subject", &Value::from("John Doe")).unwrap();

    let json_text = gw.recorder().snapshot().to_json();
    let json = Json::parse(&json_text).expect("snapshot JSON parses");
    let counter = |name: &str| -> Option<u64> {
        json.get("counters")?
            .as_array()?
            .iter()
            .find(|c| c.get("name").and_then(Json::as_str) == Some(name))?
            .get("value")?
            .as_u64()
    };
    assert_eq!(counter("gateway.insert.count"), Some(5));
    assert!(counter("channel.call.count").unwrap() > 0);
    let spans = json.get("spans").and_then(|s| s.get("recorded")).and_then(Json::as_u64).unwrap();
    assert!(spans > 0);

    // The aligned-text rendering carries the same counters.
    let text = gw.recorder().snapshot().to_text();
    assert!(text.contains("gateway.insert.count"));
}

#[test]
fn cloud_engine_counts_tactic_ops_and_dedup_hits() {
    let cloud = CloudEngine::new();
    let recorder = Recorder::new();
    let mut cloud = cloud;
    cloud.set_recorder(recorder.clone());
    let channel = Channel::from_arc(Arc::new(cloud), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0x0B55);
    let gw = GatewayEngine::new("obs-test", Kms::generate(&mut rng), channel, 0x0B55);
    gw.register_schema(observation_schema()).unwrap();
    for doc in corpus(0x0B55, 6) {
        gw.insert("observation", &doc).unwrap();
    }
    gw.find_equal("observation", "subject", &Value::from("John Doe")).unwrap();

    let snap = recorder.snapshot();
    let tactic_ops: u64 = snap.counters_with_prefix("cloud.tactic.").iter().map(|(_, v)| *v).sum();
    assert!(tactic_ops > 0, "cloud-side tactic index ops counted: {:?}", snap.counters);
}
