//! Policy-enforcement integration tests: the data access model's
//! guarantees hold end to end.

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::*;
use datablinder::core::CoreError;
use datablinder::docstore::{Document, Value};
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, LatencyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gateway() -> GatewayEngine {
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0xF0);
    GatewayEngine::new("policy", Kms::generate(&mut rng), channel, 9)
}

#[test]
fn unsatisfiable_schema_rejected_at_registration() {
    use FieldOp::*;
    let gw = gateway();
    // Range queries demand order leakage; class 3 forbids it.
    let schema = Schema::new("bad").sensitive_field(
        "when",
        FieldType::Integer,
        true,
        FieldAnnotation::new(ProtectionClass::C3, vec![Insert, Range]),
    );
    let err = gw.register_schema(schema).unwrap_err();
    assert!(matches!(err, CoreError::PolicyUnsatisfiable { op: FieldOp::Range, .. }), "{err}");
}

#[test]
fn schema_violations_rejected_at_insert() {
    use FieldOp::*;
    let gw = gateway();
    let schema = Schema::new("notes").plain_field("n", FieldType::Integer, true).sensitive_field(
        "owner",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C2, vec![Insert, Equality]),
    );
    gw.register_schema(schema).unwrap();

    // Missing required field.
    let err = gw.insert("notes", &Document::new("d").with("owner", Value::from("a"))).unwrap_err();
    assert!(matches!(err, CoreError::SchemaViolation(_)), "{err}");
    // Wrong type.
    let err = gw
        .insert("notes", &Document::new("d").with("n", Value::from(1i64)).with("owner", Value::from(42i64)))
        .unwrap_err();
    assert!(matches!(err, CoreError::SchemaViolation(_)));
    // Unknown field.
    let err = gw
        .insert(
            "notes",
            &Document::new("d").with("n", Value::from(1i64)).with("owner", Value::from("a")).with("extra", Value::Null),
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::SchemaViolation(_)));
    // Nothing reached the cloud.
    assert_eq!(gw.count("notes").unwrap(), 0);
}

#[test]
fn operations_not_in_annotation_rejected() {
    use FieldOp::*;
    let gw = gateway();
    let schema = Schema::new("notes")
        .sensitive_field(
            "owner",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![Insert, Equality]),
        )
        .sensitive_field("secret", FieldType::Text, true, FieldAnnotation::new(ProtectionClass::C1, vec![Insert]));
    gw.register_schema(schema).unwrap();
    gw.insert("notes", &Document::new("d").with("owner", Value::from("a")).with("secret", Value::from("s"))).unwrap();

    // `secret` is class 1, insert-only: no search of any kind.
    assert!(matches!(gw.find_equal("notes", "secret", &Value::from("s")), Err(CoreError::UnsupportedOperation(_))));
    assert!(matches!(
        gw.find_range("notes", "owner", &Value::from(0i64), &Value::from(1i64)),
        Err(CoreError::UnsupportedOperation(_))
    ));
    assert!(matches!(gw.aggregate("notes", "owner", AggFn::Avg, None), Err(CoreError::UnsupportedOperation(_))));
    // Unknown schema.
    assert!(matches!(gw.count("nope"), Err(CoreError::UnknownSchema(_))));
}

#[test]
fn weakest_link_rule_bounds_selection() {
    // For every registered field, every selected tactic's worst-case
    // leakage must be admissible under the field's class — the §3.2
    // "chain is only as strong as its weakest link" rule, checked through
    // the live registry.
    use FieldOp::*;
    let gw = gateway();
    let schema = Schema::new("mixed")
        .sensitive_field("a", FieldType::Text, true, FieldAnnotation::new(ProtectionClass::C2, vec![Insert, Equality]))
        .sensitive_field(
            "b",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C3, vec![Insert, Equality, Boolean]),
        )
        .sensitive_field("c", FieldType::Integer, true, FieldAnnotation::new(ProtectionClass::C5, vec![Insert, Range]))
        .sensitive_field("d", FieldType::Text, true, FieldAnnotation::new(ProtectionClass::C1, vec![Insert]));
    gw.register_schema(schema.clone()).unwrap();

    for (field, annotation) in schema.sensitive_fields() {
        let selection = gw.selection("mixed", field).unwrap();
        for tactic in selection.all_tactics() {
            let registry = gw.registry();
            let descriptor = registry.descriptor(&tactic).unwrap();
            assert!(
                annotation.class.admits(descriptor.worst_leakage()),
                "field {field} ({}) got tactic {tactic} with leakage {}",
                annotation.class,
                descriptor.worst_leakage()
            );
        }
    }
}

#[test]
fn mixed_boolean_across_incompatible_tactics_rejected() {
    use FieldOp::*;
    let gw = gateway();
    let schema = Schema::new("mixed")
        // BIEX field and Mitra-only field cannot be boolean-combined.
        .sensitive_field(
            "a",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C3, vec![Insert, Equality, Boolean]),
        )
        .sensitive_field("b", FieldType::Text, true, FieldAnnotation::new(ProtectionClass::C2, vec![Insert, Equality]));
    gw.register_schema(schema).unwrap();
    gw.insert("mixed", &Document::new("d").with("a", Value::from("x")).with("b", Value::from("y"))).unwrap();
    let dnf = vec![vec![("a".to_string(), Value::from("x")), ("b".to_string(), Value::from("y"))]];
    assert!(matches!(gw.find_boolean("mixed", &dnf), Err(CoreError::UnsupportedOperation(_))));
}
