//! Failure-injection integration tests: deterministic fault storms through
//! the resilient channel, circuit breaking, byzantine cloud responses,
//! batch partial-failure semantics and crash-safe gateway state.

use std::sync::Arc;
use std::time::Duration;

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::*;
use datablinder::core::CoreError;
use datablinder::docstore::{Document, Value};
use datablinder::kms::Kms;
use datablinder::kvstore::KvStore;
use datablinder::netsim::{
    BreakerConfig, BreakerState, Channel, FaultPlan, FaultStatsSnapshot, FaultyService, LatencyModel, MetricsSnapshot,
    NetError, ResilienceConfig, ResilientChannel, RetryPolicy, RouteFaults,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn simple_schema() -> Schema {
    Schema::new("notes")
        .sensitive_field(
            "owner",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
        )
        .plain_field("note", FieldType::Text, false)
}

// ---------------------------------------------------------------- fault storm

const STORM_DOCS: usize = 220;
const STORM_OWNERS: usize = 10;

/// Pushes a workload through a gateway whose channel suffers drops, duplicate
/// deliveries, detected corruption and latency spikes, all seeded — then
/// verifies every search is exact. Returns everything observable so the
/// determinism test can compare two runs bit for bit.
fn storm_run(seed: u64) -> (MetricsSnapshot, FaultStatsSnapshot, u64, Vec<Vec<String>>) {
    let faults = RouteFaults::none()
        .with_drop(0.05)
        .with_duplicate(0.04)
        .with_corrupt(0.02)
        .with_delay(0.10, Duration::from_millis(25));
    let svc = Arc::new(FaultyService::new(CloudEngine::new(), FaultPlan::uniform(faults), seed));
    let channel = Channel::from_arc(svc.clone(), LatencyModel::instant());
    let config = ResilienceConfig {
        retry: RetryPolicy { max_attempts: 12, ..RetryPolicy::default() },
        deadline: Some(Duration::from_millis(10)),
        seed,
        ..ResilienceConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gw =
        GatewayEngine::with_resilience("storm", Kms::generate(&mut rng), ResilientChannel::new(channel, config), seed);
    gw.register_schema(simple_schema()).unwrap();

    let mut expected: Vec<Vec<String>> = vec![Vec::new(); STORM_OWNERS];
    for i in 0..STORM_DOCS {
        let owner = format!("o{}", i % STORM_OWNERS);
        let doc = Document::new("x").with("owner", Value::from(owner.as_str()));
        // The acceptance bar: with ≥5% drops/timeouts/duplicates on every
        // message, the application never sees a channel error.
        let id = gw.insert("notes", &doc).expect("faults must be absorbed by retries");
        expected[i % STORM_OWNERS].push(id.to_hex());
    }

    let mut results: Vec<Vec<String>> = Vec::with_capacity(STORM_OWNERS);
    for (o, expect) in expected.iter_mut().enumerate() {
        let owner = format!("o{o}");
        let hits = gw.find_equal("notes", "owner", &Value::from(owner.as_str())).expect("search survives faults");
        let mut got: Vec<String> = hits.iter().map(|d| d.id().to_string()).collect();
        got.sort();
        expect.sort();
        assert_eq!(&got, expect, "owner {owner}: every stored doc found, no duplicates, no ghosts");
        results.push(got);
    }

    (gw.channel().metrics().snapshot(), svc.stats().snapshot(), svc.inner().dedup_hits(), results)
}

#[test]
fn storm_of_faults_is_absorbed_with_exact_results() {
    let (metrics, faults, dedup_hits, _) = storm_run(0x57_0131);

    // The storm actually stormed.
    assert!(faults.drops > 0, "drops: {faults:?}");
    assert!(faults.duplicates > 0, "duplicates: {faults:?}");
    assert!(faults.corruptions > 0, "corruptions: {faults:?}");
    assert!(faults.delays > 0, "delays: {faults:?}");

    // The resilient channel worked for a living.
    assert!(
        metrics.attempts > metrics.round_trips,
        "attempts {} > round trips {}",
        metrics.attempts,
        metrics.round_trips
    );
    assert!(metrics.retries > 0, "retries recorded");
    assert!(metrics.timeouts > 0, "timeouts recorded");

    // Some retried writes found their first delivery already applied: the
    // idempotency cache answered instead of re-executing.
    assert!(dedup_hits > 0, "dedup hits: {dedup_hits}");
}

#[test]
fn fault_storm_is_deterministic_per_seed() {
    let a = storm_run(0xD1CE);
    let b = storm_run(0xD1CE);
    assert_eq!(a.0, b.0, "same seed, same traffic metrics");
    assert_eq!(a.1, b.1, "same seed, same injected faults");
    assert_eq!(a.2, b.2, "same seed, same dedup hits");
    assert_eq!(a.3, b.3, "same seed, same results");

    let c = storm_run(0xD1CF);
    assert_ne!((a.0, a.1), (c.0, c.1), "different seed, different faults");
}

// ------------------------------------------------------------ circuit breaker

#[test]
fn breaker_fast_fails_after_consecutive_transport_failures() {
    // Every message is lost: each insert times out until the breaker opens,
    // then the gateway fails fast without touching the wire.
    let svc =
        Arc::new(FaultyService::new(CloudEngine::new(), FaultPlan::uniform(RouteFaults::none().with_drop(1.0)), 9));
    let channel = Channel::from_arc(svc, LatencyModel::instant());
    let config = ResilienceConfig {
        retry: RetryPolicy::none(),
        breaker: BreakerConfig { failure_threshold: 3, cooldown: Duration::from_millis(50) },
        deadline: Some(Duration::from_millis(5)),
        seed: 9,
    };
    let mut rng = StdRng::seed_from_u64(9);
    let mut gw =
        GatewayEngine::with_resilience("breaker", Kms::generate(&mut rng), ResilientChannel::new(channel, config), 9);
    gw.register_schema(simple_schema()).unwrap();

    let insert = |gw: &mut GatewayEngine, i: usize| {
        gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{i}")))).unwrap_err()
    };

    for i in 0..3 {
        let err = insert(&mut gw, i);
        assert!(matches!(err, CoreError::Net(NetError::Timeout)), "{err}");
        assert!(err.is_transient());
    }
    assert_eq!(gw.resilient_channel().breaker_state(), BreakerState::Open);

    let sent_before = gw.channel().metrics().bytes_sent();
    let err = insert(&mut gw, 3);
    assert!(matches!(err, CoreError::Net(NetError::CircuitOpen)), "{err}");
    assert!(err.is_transient(), "fast-fails are worth retrying later");
    assert_eq!(gw.channel().metrics().bytes_sent(), sent_before, "fast-fail sent nothing");

    // After the cooldown a half-open probe is admitted; it times out too, so
    // the breaker re-opens — all observable through the metrics.
    gw.resilient_channel().advance(Duration::from_millis(50));
    let err = insert(&mut gw, 4);
    assert!(matches!(err, CoreError::Net(NetError::Timeout)), "{err}");
    assert_eq!(gw.resilient_channel().breaker_state(), BreakerState::Open);
    let m = gw.channel().metrics().snapshot();
    assert_eq!(m.breaker_opens, 2);
    assert_eq!(m.breaker_half_opens, 1);
}

// ----------------------------------------------------- legacy fault scenarios

#[test]
fn channel_failures_surface_as_errors_not_corruption() {
    // Injected *remote* failures are application-level and not retried: they
    // must surface as clean `CoreError::Net` errors, never corrupt state.
    let svc = FaultyService::new(CloudEngine::new(), FaultPlan::uniform(RouteFaults::none().with_fail(0.2)), 21);
    let channel = Channel::connect(svc, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(1);
    let mut gw = GatewayEngine::new("flaky", Kms::generate(&mut rng), channel, 1);
    gw.register_schema(simple_schema()).unwrap();

    let mut ok = 0usize;
    let mut failed = 0usize;
    for i in 0..40 {
        match gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{}", i % 4)))) {
            Ok(_) => ok += 1,
            Err(CoreError::Net(_)) => failed += 1,
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    assert!(ok > 0 && failed > 0, "ok={ok} failed={failed}");

    // Reads after the storm: every search either succeeds with consistent
    // results or fails cleanly — never panics or returns wrong plaintext.
    for i in 0..4 {
        let owner = format!("o{i}");
        if let Ok(hits) = gw.find_equal("notes", "owner", &Value::from(owner.as_str())) {
            for h in &hits {
                assert_eq!(h.get("owner"), Some(&Value::from(owner.as_str())));
            }
        }
    }
}

#[test]
fn byzantine_cloud_responses_are_rejected() {
    // A byzantine cloud garbles every tactic response (well-framed junk, so
    // the channel cannot catch it): the SSE layer must reject it cleanly.
    let plan = FaultPlan::none().route("tactic/", RouteFaults::none().with_garble(1.0));
    let svc = FaultyService::new(CloudEngine::new(), plan, 2);
    let channel = Channel::connect(svc, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(2);
    let mut gw = GatewayEngine::new("byz", Kms::generate(&mut rng), channel, 2);
    gw.register_schema(simple_schema()).unwrap();
    // Inserts survive: writes travel inside the idempotency envelope (route
    // "idem"), which the tactic-only override leaves untouched.
    gw.insert("notes", &Document::new("x").with("owner", Value::from("a"))).unwrap();

    let err = gw.find_equal("notes", "owner", &Value::from("a")).unwrap_err();
    assert!(matches!(err, CoreError::Sse(_) | CoreError::Wire(_)), "{err}");
}

// ------------------------------------------------------- batch partial failure

#[test]
fn mid_batch_failure_leaves_no_half_indexed_documents() {
    // Two gateways with the same id seed share one cloud: the second mints
    // an id the first already used, so its `insert_many` batch fails on the
    // second document's `doc/insert`. The guarantee under test: documents
    // before the failure are fully applied and queryable, the failing and
    // following documents are invisible — never a half-indexed ghost.
    let cloud = Arc::new(CloudEngine::new());
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let kms = Kms::generate(&mut rng);
    const SEED: u64 = 42;

    let mut gw_a =
        GatewayEngine::new("app", kms.clone(), Channel::from_arc(cloud.clone(), LatencyModel::instant()), SEED);
    gw_a.register_schema(simple_schema()).unwrap();
    let id1 = gw_a
        .insert("notes", &Document::new("x").with("owner", Value::from("tmp")).with("note", Value::from("d1")))
        .unwrap();
    let id2 = gw_a
        .insert("notes", &Document::new("x").with("owner", Value::from("bob")).with("note", Value::from("original")))
        .unwrap();
    gw_a.delete("notes", id1).unwrap(); // free the first id slot

    // Same id-generator seed, fresh gateway: mints id1, id2, id3 again.
    let mut gw_b = GatewayEngine::new("app", kms, Channel::from_arc(cloud, LatencyModel::instant()), SEED);
    gw_b.register_schema(simple_schema()).unwrap();
    let batch = [
        Document::new("x").with("owner", Value::from("alice")).with("note", Value::from("e1")),
        Document::new("x").with("owner", Value::from("bob")).with("note", Value::from("e2")),
        Document::new("x").with("owner", Value::from("carol")).with("note", Value::from("e3")),
    ];
    let err = gw_b.insert_many("notes", &batch).unwrap_err();
    assert!(matches!(err, CoreError::Net(_)), "duplicate id aborts the batch: {err}");

    // The document before the failure is fully applied and searchable.
    let hits = gw_b.find_equal("notes", "owner", &Value::from("alice")).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].get("note"), Some(&Value::from("e1")));

    // The failing document was never stored: its id slot still holds the
    // original, and searches stay consistent.
    assert_eq!(gw_b.get("notes", id2).unwrap().get("note"), Some(&Value::from("original")));
    let hits = gw_b.find_equal("notes", "owner", &Value::from("bob")).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].get("note"), Some(&Value::from("original")));

    // The document after the failure was not applied at all — its index
    // chain advanced locally but the gap resolves to "no results", not an
    // error and not a ghost.
    assert!(gw_b.find_equal("notes", "owner", &Value::from("carol")).unwrap().is_empty());

    // Store-level census: the original survivor plus the one applied doc.
    assert_eq!(gw_b.count("notes").unwrap(), 2);
}

// ---------------------------------------------------------- state persistence

#[test]
fn gateway_state_survives_crash_via_semi_durable_store() {
    let path = std::env::temp_dir().join(format!("datablinder-gwstate-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let cloud = CloudEngine::new();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(3);
    let kms = Kms::generate(&mut rng);

    {
        let state_store = KvStore::open_semi_durable(&path).unwrap();
        let mut gw = GatewayEngine::new("crashy", kms.clone(), channel.clone(), 3);
        gw.register_schema(simple_schema()).unwrap();
        for i in 0..5 {
            gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{}", i % 2)))).unwrap();
        }
        gw.save_state(&state_store);
        // "crash": gw and the store handle drop; the log is on disk.
    }

    let state_store = KvStore::open_semi_durable(&path).unwrap();
    let mut gw = GatewayEngine::new("crashy", kms, channel, 4);
    gw.register_schema(simple_schema()).unwrap();
    gw.load_state(&state_store).unwrap();

    // Searches see the pre-crash data...
    let hits = gw.find_equal("notes", "owner", &Value::from("o0")).unwrap();
    assert_eq!(hits.len(), 3);
    // ...and new inserts continue the chains without collisions.
    gw.insert("notes", &Document::new("x").with("owner", Value::from("o0"))).unwrap();
    let hits = gw.find_equal("notes", "owner", &Value::from("o0")).unwrap();
    assert_eq!(hits.len(), 4);

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn stale_state_is_detected_by_overwritten_chains() {
    // Restoring *without* saved state after data was indexed loses the
    // counters: the engine must fail searches cleanly or return the subset
    // written after restore — never mix plaintexts up.
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(4);
    let kms = Kms::generate(&mut rng);

    let mut gw1 = GatewayEngine::new("stale", kms.clone(), channel.clone(), 5);
    gw1.register_schema(simple_schema()).unwrap();
    gw1.insert("notes", &Document::new("x").with("owner", Value::from("a"))).unwrap();
    drop(gw1);

    // Fresh gateway, same keys, no state: its first update for "a"
    // re-uses chain position 1 and overwrites the cloud entry.
    let mut gw2 = GatewayEngine::new("stale", kms, channel, 6);
    gw2.register_schema(simple_schema()).unwrap();
    gw2.insert("notes", &Document::new("x").with("owner", Value::from("a"))).unwrap();
    let hits = gw2.find_equal("notes", "owner", &Value::from("a")).unwrap();
    // Exactly the post-restart document is visible through the index.
    assert_eq!(hits.len(), 1);
}
