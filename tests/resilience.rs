//! Failure-injection integration tests: flaky channels, malformed cloud
//! responses, and crash-safe gateway state persistence.

use std::sync::atomic::{AtomicU64, Ordering};

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::*;
use datablinder::core::CoreError;
use datablinder::docstore::{Document, Value};
use datablinder::kms::Kms;
use datablinder::kvstore::KvStore;
use datablinder::netsim::{Channel, CloudService, LatencyModel, NetError};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn simple_schema() -> Schema {
    Schema::new("notes").sensitive_field(
        "owner",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
    )
}

/// A cloud wrapper that fails every Nth request with a remote error.
struct Flaky {
    inner: CloudEngine,
    counter: AtomicU64,
    fail_every: u64,
}

impl CloudService for Flaky {
    fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let n = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        if n.is_multiple_of(self.fail_every) {
            return Err(NetError::Remote("injected transient failure".into()));
        }
        self.inner.handle(route, payload)
    }
}

#[test]
fn channel_failures_surface_as_errors_not_corruption() {
    let flaky = Flaky { inner: CloudEngine::new(), counter: AtomicU64::new(0), fail_every: 5 };
    let channel = Channel::connect(flaky, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(1);
    let mut gw = GatewayEngine::new("flaky", Kms::generate(&mut rng), channel, 1);
    gw.register_schema(simple_schema()).unwrap();

    let mut ok = 0usize;
    let mut failed = 0usize;
    for i in 0..40 {
        match gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{}", i % 4)))) {
            Ok(_) => ok += 1,
            Err(CoreError::Net(_)) => failed += 1,
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    assert!(ok > 0 && failed > 0, "ok={ok} failed={failed}");

    // Reads after the storm: every search either succeeds with consistent
    // results or fails cleanly — never panics or returns wrong plaintext.
    for i in 0..4 {
        let owner = format!("o{i}");
        if let Ok(hits) = gw.find_equal("notes", "owner", &Value::from(owner.as_str())) {
            for h in &hits {
                assert_eq!(h.get("owner"), Some(&Value::from(owner.as_str())));
            }
        }
    }
}

#[test]
fn byzantine_cloud_responses_are_rejected() {
    /// Returns garbage for search routes, passes everything else through.
    struct Garbage {
        inner: CloudEngine,
    }
    impl CloudService for Garbage {
        fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
            if route.ends_with("/search") {
                return Ok(vec![0xFF; 37]); // malformed response body
            }
            self.inner.handle(route, payload)
        }
    }
    let channel = Channel::connect(Garbage { inner: CloudEngine::new() }, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(2);
    let mut gw = GatewayEngine::new("byz", Kms::generate(&mut rng), channel, 2);
    gw.register_schema(simple_schema()).unwrap();
    gw.insert("notes", &Document::new("x").with("owner", Value::from("a"))).unwrap();

    let err = gw.find_equal("notes", "owner", &Value::from("a")).unwrap_err();
    assert!(matches!(err, CoreError::Sse(_) | CoreError::Wire(_)), "{err}");
}

#[test]
fn gateway_state_survives_crash_via_semi_durable_store() {
    let path = std::env::temp_dir().join(format!("datablinder-gwstate-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let cloud = CloudEngine::new();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(3);
    let kms = Kms::generate(&mut rng);

    {
        let state_store = KvStore::open_semi_durable(&path).unwrap();
        let mut gw = GatewayEngine::new("crashy", kms.clone(), channel.clone(), 3);
        gw.register_schema(simple_schema()).unwrap();
        for i in 0..5 {
            gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{}", i % 2)))).unwrap();
        }
        gw.save_state(&state_store);
        // "crash": gw and the store handle drop; the log is on disk.
    }

    let state_store = KvStore::open_semi_durable(&path).unwrap();
    let mut gw = GatewayEngine::new("crashy", kms, channel, 4);
    gw.register_schema(simple_schema()).unwrap();
    gw.load_state(&state_store).unwrap();

    // Searches see the pre-crash data...
    let hits = gw.find_equal("notes", "owner", &Value::from("o0")).unwrap();
    assert_eq!(hits.len(), 3);
    // ...and new inserts continue the chains without collisions.
    gw.insert("notes", &Document::new("x").with("owner", Value::from("o0"))).unwrap();
    let hits = gw.find_equal("notes", "owner", &Value::from("o0")).unwrap();
    assert_eq!(hits.len(), 4);

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn stale_state_is_detected_by_overwritten_chains() {
    // Restoring *without* saved state after data was indexed loses the
    // counters: the engine must fail searches cleanly or return the subset
    // written after restore — never mix plaintexts up.
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(4);
    let kms = Kms::generate(&mut rng);

    let mut gw1 = GatewayEngine::new("stale", kms.clone(), channel.clone(), 5);
    gw1.register_schema(simple_schema()).unwrap();
    gw1.insert("notes", &Document::new("x").with("owner", Value::from("a"))).unwrap();
    drop(gw1);

    // Fresh gateway, same keys, no state: its first update for "a"
    // re-uses chain position 1 and overwrites the cloud entry.
    let mut gw2 = GatewayEngine::new("stale", kms, channel, 6);
    gw2.register_schema(simple_schema()).unwrap();
    gw2.insert("notes", &Document::new("x").with("owner", Value::from("a"))).unwrap();
    let hits = gw2.find_equal("notes", "owner", &Value::from("a")).unwrap();
    // Exactly the post-restart document is visible through the index.
    assert_eq!(hits.len(), 1);
}
