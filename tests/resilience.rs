//! Failure-injection integration tests: deterministic fault storms through
//! the resilient channel, circuit breaking, byzantine cloud responses,
//! batch partial-failure semantics, crash-safe gateway state, and cloud
//! crash storms recovered through the WAL + snapshot layer.

use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use datablinder::core::cloud::CloudEngine;
use datablinder::core::durability::{DurabilityOptions, RestartableCloud};
use datablinder::core::gateway::{GatewayEngine, PendingWriteReport};
use datablinder::core::model::*;
use datablinder::core::CoreError;
use datablinder::docstore::{Document, Value};
use datablinder::kms::Kms;
use datablinder::kvstore::KvStore;
use datablinder::netsim::{
    BreakerConfig, BreakerState, Channel, CloudService, CrashInjector, CrashPlan, CrashPoint, FaultPlan,
    FaultStatsSnapshot, FaultyService, LatencyModel, MetricsSnapshot, NetError, ResilienceConfig, ResilientChannel,
    RetryPolicy, RouteFaults,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn simple_schema() -> Schema {
    Schema::new("notes")
        .sensitive_field(
            "owner",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
        )
        .plain_field("note", FieldType::Text, false)
}

// ---------------------------------------------------------------- fault storm

const STORM_DOCS: usize = 220;
const STORM_OWNERS: usize = 10;

/// Pushes a workload through a gateway whose channel suffers drops, duplicate
/// deliveries, detected corruption and latency spikes, all seeded — then
/// verifies every search is exact. Returns everything observable so the
/// determinism test can compare two runs bit for bit.
fn storm_run(seed: u64) -> (MetricsSnapshot, FaultStatsSnapshot, u64, Vec<Vec<String>>) {
    let faults = RouteFaults::none()
        .with_drop(0.05)
        .with_duplicate(0.04)
        .with_corrupt(0.02)
        .with_delay(0.10, Duration::from_millis(25));
    let svc = Arc::new(FaultyService::new(CloudEngine::new(), FaultPlan::uniform(faults), seed));
    let channel = Channel::from_arc(svc.clone(), LatencyModel::instant());
    let config = ResilienceConfig {
        retry: RetryPolicy { max_attempts: 12, ..RetryPolicy::default() },
        deadline: Some(Duration::from_millis(10)),
        seed,
        ..ResilienceConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let gw =
        GatewayEngine::with_resilience("storm", Kms::generate(&mut rng), ResilientChannel::new(channel, config), seed);
    gw.register_schema(simple_schema()).unwrap();

    let mut expected: Vec<Vec<String>> = vec![Vec::new(); STORM_OWNERS];
    for i in 0..STORM_DOCS {
        let owner = format!("o{}", i % STORM_OWNERS);
        let doc = Document::new("x").with("owner", Value::from(owner.as_str()));
        // The acceptance bar: with ≥5% drops/timeouts/duplicates on every
        // message, the application never sees a channel error.
        let id = gw.insert("notes", &doc).expect("faults must be absorbed by retries");
        expected[i % STORM_OWNERS].push(id.to_hex());
    }

    let mut results: Vec<Vec<String>> = Vec::with_capacity(STORM_OWNERS);
    for (o, expect) in expected.iter_mut().enumerate() {
        let owner = format!("o{o}");
        let hits = gw.find_equal("notes", "owner", &Value::from(owner.as_str())).expect("search survives faults");
        let mut got: Vec<String> = hits.iter().map(|d| d.id().to_string()).collect();
        got.sort();
        expect.sort();
        assert_eq!(&got, expect, "owner {owner}: every stored doc found, no duplicates, no ghosts");
        results.push(got);
    }

    (gw.channel().metrics().snapshot(), svc.stats().snapshot(), svc.inner().dedup_hits(), results)
}

#[test]
fn storm_of_faults_is_absorbed_with_exact_results() {
    let (metrics, faults, dedup_hits, _) = storm_run(0x57_0131);

    // The storm actually stormed.
    assert!(faults.drops > 0, "drops: {faults:?}");
    assert!(faults.duplicates > 0, "duplicates: {faults:?}");
    assert!(faults.corruptions > 0, "corruptions: {faults:?}");
    assert!(faults.delays > 0, "delays: {faults:?}");

    // The resilient channel worked for a living.
    assert!(
        metrics.attempts > metrics.round_trips,
        "attempts {} > round trips {}",
        metrics.attempts,
        metrics.round_trips
    );
    assert!(metrics.retries > 0, "retries recorded");
    assert!(metrics.timeouts > 0, "timeouts recorded");

    // Some retried writes found their first delivery already applied: the
    // idempotency cache answered instead of re-executing.
    assert!(dedup_hits > 0, "dedup hits: {dedup_hits}");
}

#[test]
fn fault_storm_is_deterministic_per_seed() {
    let a = storm_run(0xD1CE);
    let b = storm_run(0xD1CE);
    assert_eq!(a.0, b.0, "same seed, same traffic metrics");
    assert_eq!(a.1, b.1, "same seed, same injected faults");
    assert_eq!(a.2, b.2, "same seed, same dedup hits");
    assert_eq!(a.3, b.3, "same seed, same results");

    let c = storm_run(0xD1CF);
    assert_ne!((a.0, a.1), (c.0, c.1), "different seed, different faults");
}

// ------------------------------------------------------------ circuit breaker

#[test]
fn breaker_fast_fails_after_consecutive_transport_failures() {
    // Every message is lost: each insert times out until the breaker opens,
    // then the gateway fails fast without touching the wire.
    let svc =
        Arc::new(FaultyService::new(CloudEngine::new(), FaultPlan::uniform(RouteFaults::none().with_drop(1.0)), 9));
    let channel = Channel::from_arc(svc, LatencyModel::instant());
    let config = ResilienceConfig {
        retry: RetryPolicy::none(),
        breaker: BreakerConfig { failure_threshold: 3, cooldown: Duration::from_millis(50) },
        deadline: Some(Duration::from_millis(5)),
        seed: 9,
    };
    let mut rng = StdRng::seed_from_u64(9);
    let mut gw =
        GatewayEngine::with_resilience("breaker", Kms::generate(&mut rng), ResilientChannel::new(channel, config), 9);
    gw.register_schema(simple_schema()).unwrap();

    let insert = |gw: &mut GatewayEngine, i: usize| {
        gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{i}")))).unwrap_err()
    };

    for i in 0..3 {
        let err = insert(&mut gw, i);
        assert!(matches!(err, CoreError::Net(NetError::Timeout)), "{err}");
        assert!(err.is_transient());
    }
    assert_eq!(gw.resilient_channel().breaker_state(), BreakerState::Open);

    let sent_before = gw.channel().metrics().bytes_sent();
    let err = insert(&mut gw, 3);
    assert!(matches!(err, CoreError::Net(NetError::CircuitOpen)), "{err}");
    assert!(err.is_transient(), "fast-fails are worth retrying later");
    assert_eq!(gw.channel().metrics().bytes_sent(), sent_before, "fast-fail sent nothing");

    // After the cooldown a half-open probe is admitted; it times out too, so
    // the breaker re-opens — all observable through the metrics.
    gw.resilient_channel().advance(Duration::from_millis(50));
    let err = insert(&mut gw, 4);
    assert!(matches!(err, CoreError::Net(NetError::Timeout)), "{err}");
    assert_eq!(gw.resilient_channel().breaker_state(), BreakerState::Open);
    let m = gw.channel().metrics().snapshot();
    assert_eq!(m.breaker_opens, 2);
    assert_eq!(m.breaker_half_opens, 1);
}

// ----------------------------------------------------- legacy fault scenarios

#[test]
fn channel_failures_surface_as_errors_not_corruption() {
    // Injected *remote* failures are application-level and not retried: they
    // must surface as clean `CoreError::Net` errors, never corrupt state.
    let svc = FaultyService::new(CloudEngine::new(), FaultPlan::uniform(RouteFaults::none().with_fail(0.2)), 21);
    let channel = Channel::connect(svc, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(1);
    let gw = GatewayEngine::new("flaky", Kms::generate(&mut rng), channel, 1);
    gw.register_schema(simple_schema()).unwrap();

    let mut ok = 0usize;
    let mut failed = 0usize;
    for i in 0..40 {
        match gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{}", i % 4)))) {
            Ok(_) => ok += 1,
            Err(CoreError::Net(_)) => failed += 1,
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    assert!(ok > 0 && failed > 0, "ok={ok} failed={failed}");

    // Reads after the storm: every search either succeeds with consistent
    // results or fails cleanly — never panics or returns wrong plaintext.
    for i in 0..4 {
        let owner = format!("o{i}");
        if let Ok(hits) = gw.find_equal("notes", "owner", &Value::from(owner.as_str())) {
            for h in &hits {
                assert_eq!(h.get("owner"), Some(&Value::from(owner.as_str())));
            }
        }
    }
}

#[test]
fn byzantine_cloud_responses_are_rejected() {
    // A byzantine cloud garbles every tactic response (well-framed junk, so
    // the channel cannot catch it): the SSE layer must reject it cleanly.
    let plan = FaultPlan::none().route("tactic/", RouteFaults::none().with_garble(1.0));
    let svc = FaultyService::new(CloudEngine::new(), plan, 2);
    let channel = Channel::connect(svc, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(2);
    let gw = GatewayEngine::new("byz", Kms::generate(&mut rng), channel, 2);
    gw.register_schema(simple_schema()).unwrap();
    // Inserts survive: writes travel inside the idempotency envelope (route
    // "idem"), which the tactic-only override leaves untouched.
    gw.insert("notes", &Document::new("x").with("owner", Value::from("a"))).unwrap();

    let err = gw.find_equal("notes", "owner", &Value::from("a")).unwrap_err();
    assert!(matches!(err, CoreError::Sse(_) | CoreError::Wire(_)), "{err}");
}

// ------------------------------------------------------- batch partial failure

#[test]
fn mid_batch_failure_leaves_no_half_indexed_documents() {
    // Two gateways with the same id seed share one cloud: the second mints
    // an id the first already used, so its `insert_many` batch fails on the
    // second document's `doc/insert`. The guarantee under test: documents
    // before the failure are fully applied and queryable, the failing and
    // following documents are invisible — never a half-indexed ghost.
    let cloud = Arc::new(CloudEngine::new());
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let kms = Kms::generate(&mut rng);
    const SEED: u64 = 42;

    let gw_a = GatewayEngine::new("app", kms.clone(), Channel::from_arc(cloud.clone(), LatencyModel::instant()), SEED);
    gw_a.register_schema(simple_schema()).unwrap();
    let id1 = gw_a
        .insert("notes", &Document::new("x").with("owner", Value::from("tmp")).with("note", Value::from("d1")))
        .unwrap();
    let id2 = gw_a
        .insert("notes", &Document::new("x").with("owner", Value::from("bob")).with("note", Value::from("original")))
        .unwrap();
    gw_a.delete("notes", id1).unwrap(); // free the first id slot

    // Same id-generator seed, fresh gateway: mints id1, id2, id3 again.
    let gw_b = GatewayEngine::new("app", kms, Channel::from_arc(cloud, LatencyModel::instant()), SEED);
    gw_b.register_schema(simple_schema()).unwrap();
    let batch = [
        Document::new("x").with("owner", Value::from("alice")).with("note", Value::from("e1")),
        Document::new("x").with("owner", Value::from("bob")).with("note", Value::from("e2")),
        Document::new("x").with("owner", Value::from("carol")).with("note", Value::from("e3")),
    ];
    let err = gw_b.insert_many("notes", &batch).unwrap_err();
    assert!(matches!(err, CoreError::Net(_)), "duplicate id aborts the batch: {err}");

    // The document before the failure is fully applied and searchable.
    let hits = gw_b.find_equal("notes", "owner", &Value::from("alice")).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].get("note"), Some(&Value::from("e1")));

    // The failing document was never stored: its id slot still holds the
    // original, and searches stay consistent.
    assert_eq!(gw_b.get("notes", id2).unwrap().get("note"), Some(&Value::from("original")));
    let hits = gw_b.find_equal("notes", "owner", &Value::from("bob")).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].get("note"), Some(&Value::from("original")));

    // The document after the failure was not applied at all — its index
    // chain advanced locally but the gap resolves to "no results", not an
    // error and not a ghost.
    assert!(gw_b.find_equal("notes", "owner", &Value::from("carol")).unwrap().is_empty());

    // Store-level census: the original survivor plus the one applied doc.
    assert_eq!(gw_b.count("notes").unwrap(), 2);
}

// ---------------------------------------------------------- state persistence

#[test]
fn gateway_state_survives_crash_via_semi_durable_store() {
    let path = std::env::temp_dir().join(format!("datablinder-gwstate-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let cloud = CloudEngine::new();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(3);
    let kms = Kms::generate(&mut rng);

    {
        let state_store = KvStore::open_semi_durable(&path).unwrap();
        let gw = GatewayEngine::new("crashy", kms.clone(), channel.clone(), 3);
        gw.register_schema(simple_schema()).unwrap();
        for i in 0..5 {
            gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{}", i % 2)))).unwrap();
        }
        gw.save_state(&state_store);
        // "crash": gw and the store handle drop; the log is on disk.
    }

    let state_store = KvStore::open_semi_durable(&path).unwrap();
    let gw = GatewayEngine::new("crashy", kms, channel, 4);
    gw.register_schema(simple_schema()).unwrap();
    gw.load_state(&state_store).unwrap();

    // Searches see the pre-crash data...
    let hits = gw.find_equal("notes", "owner", &Value::from("o0")).unwrap();
    assert_eq!(hits.len(), 3);
    // ...and new inserts continue the chains without collisions.
    gw.insert("notes", &Document::new("x").with("owner", Value::from("o0"))).unwrap();
    let hits = gw.find_equal("notes", "owner", &Value::from("o0")).unwrap();
    assert_eq!(hits.len(), 4);

    std::fs::remove_file(&path).unwrap();
}

// ----------------------------------------------------------- crash storms

/// Equality + range + boolean in one schema: `status` rides the shared
/// boolean tactic (BIEX), `owner` a per-field SSE chain (Mitra), `when` an
/// order-preserving shadow (OPE) — so a crash mid-insert can strand any of
/// three differently-shaped index structures.
fn rich_schema() -> Schema {
    Schema::new("vault")
        .sensitive_field(
            "status",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C3, vec![FieldOp::Insert, FieldOp::Equality, FieldOp::Boolean]),
        )
        .sensitive_field(
            "owner",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
        )
        .sensitive_field(
            "when",
            FieldType::Integer,
            true,
            FieldAnnotation::new(ProtectionClass::C5, vec![FieldOp::Insert, FieldOp::Range]),
        )
}

const CRASH_DOCS: usize = 200;
const CRASH_SEED: u64 = 0xC4A5;
const STATUSES: [&str; 4] = ["draft", "active", "final", "void"];

/// Everything a run observes, for oracle comparison.
#[derive(Debug, PartialEq, Eq)]
struct RunOutput {
    eq_status: Vec<Vec<String>>,
    eq_owner: Vec<Vec<String>>,
    ranges: Vec<Vec<String>>,
    bools: Vec<Vec<String>>,
    live_docs: u64,
}

fn sorted_ids(docs: &[Document]) -> Vec<String> {
    let mut ids: Vec<String> = docs.iter().map(|d| d.id().to_string()).collect();
    ids.sort();
    ids
}

/// Drives the reference workload (≥200 inserts + periodic deletes, then
/// every search shape + fsck) through `channel`. The gateway never
/// crashes here — the cloud behind the channel might — so any injected
/// outage must be absorbed by retries, never surfacing to the caller.
fn run_crash_workload(channel: Channel, seed: u64) -> RunOutput {
    let config = ResilienceConfig {
        retry: RetryPolicy { max_attempts: 8, ..RetryPolicy::default() },
        seed,
        ..ResilienceConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gw =
        GatewayEngine::with_resilience("vault", Kms::generate(&mut rng), ResilientChannel::new(channel, config), seed);
    gw.enable_write_journal(KvStore::new());
    gw.register_schema(rich_schema()).unwrap();

    let mut ids = Vec::with_capacity(CRASH_DOCS);
    for i in 0..CRASH_DOCS {
        let doc = Document::new("x")
            .with("status", Value::from(STATUSES[i % STATUSES.len()]))
            .with("owner", Value::from(format!("o{}", i % 10)))
            .with("when", Value::from((i % 20) as i64));
        ids.push(gw.insert("vault", &doc).expect("cloud crash must be absorbed by retries"));
    }
    for i in (0..CRASH_DOCS).step_by(11) {
        gw.delete("vault", ids[i]).expect("delete survives the crash window");
    }
    assert_eq!(gw.pending_writes(), 0, "every journaled write group was acknowledged");

    let eq_status = STATUSES
        .iter()
        .map(|s| sorted_ids(&gw.find_equal("vault", "status", &Value::from(*s)).expect("equality after recovery")))
        .collect();
    let eq_owner = (0..10)
        .map(|o| {
            let owner = format!("o{o}");
            sorted_ids(&gw.find_equal("vault", "owner", &Value::from(owner.as_str())).expect("equality (mitra)"))
        })
        .collect();
    let ranges = [0i64, 5, 13]
        .iter()
        .map(|lo| {
            sorted_ids(&gw.find_range("vault", "when", &Value::from(*lo), &Value::from(lo + 4)).expect("range (ope)"))
        })
        .collect();
    let single = vec![vec![("status".to_string(), Value::from("final"))]];
    let disjunction =
        vec![vec![("status".to_string(), Value::from("draft"))], vec![("status".to_string(), Value::from("void"))]];
    let bools = [single, disjunction]
        .iter()
        .map(|dnf| sorted_ids(&gw.find_boolean("vault", dnf).expect("boolean (biex)")))
        .collect();
    let live_docs = gw.count("vault").unwrap();

    // The ISSUE's acceptance bar: after recovery the index↔store invariants
    // hold — every document reachable, no orphan index entries.
    let fsck = gw.fsck("vault").expect("fsck runs");
    assert!(fsck.is_clean(), "fsck after recovery: {fsck:?}");
    assert_eq!(fsck.docs_checked as u64, live_docs);
    assert!(fsck.searches_run > 0);

    RunOutput { eq_status, eq_owner, ranges, bools, live_docs }
}

fn crash_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datablinder-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn crash_storm_recovers_to_oracle_at_every_kth_mutation() {
    // Oracle: the same workload against a cloud that never crashes.
    let oracle = run_crash_workload(Channel::connect(CloudEngine::new(), LatencyModel::instant()), CRASH_SEED);
    let expected_live = (CRASH_DOCS - (0..CRASH_DOCS).step_by(11).count()) as u64;
    assert_eq!(oracle.live_docs, expected_live);

    // Durable but uncrashed run: measures the journaled-write horizon and
    // proves the WAL+snapshot layer is invisible when nothing goes wrong.
    let base = crash_dir("base");
    let opts = DurabilityOptions { snapshot_every: Some(64), dedup_capacity: Some(4096), crash: None };
    let svc = Arc::new(RestartableCloud::open(&base, opts).unwrap());
    let durable = run_crash_workload(Channel::from_arc(svc.clone(), LatencyModel::instant()), CRASH_SEED);
    assert_eq!(durable, oracle, "durability layer must not change results");
    assert_eq!(svc.restarts(), 0);
    let horizon = svc.with_engine(|e| e.wal_seq()).unwrap();
    assert!(horizon > CRASH_DOCS as u64, "every mutation journaled: {horizon}");

    // Cold restart from disk alone: snapshot + WAL tail rebuild the state.
    drop(svc);
    let reopened = CloudEngine::open_durable(&base).unwrap();
    assert!(reopened.recovery_report().snapshot_restored, "snapshot compaction happened");
    assert_eq!(reopened.docs().collection("vault").len() as u64, expected_live);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&base);

    // The storm: crash at every k-th journaled mutation, rotating through
    // all three crash modes (refuse / torn frame / journaled-not-applied),
    // restart mid-workload, and demand oracle-exact results + clean fsck.
    let k = (horizon / 6).max(1);
    let mut storms = 0u32;
    for (i, at) in (0..horizon).step_by(k as usize).enumerate() {
        let point = match i % 3 {
            0 => CrashPoint::BeforeAppend(at),
            1 => CrashPoint::MidAppend { record: at, byte: 9 },
            _ => CrashPoint::AfterAppend(at),
        };
        let dir = crash_dir(&format!("p{i}"));
        let opts = DurabilityOptions {
            snapshot_every: Some(64),
            dedup_capacity: Some(4096),
            crash: Some(Arc::new(CrashInjector::new(CrashPlan::at(point)))),
        };
        let svc = Arc::new(RestartableCloud::open(&dir, opts).unwrap());
        let out = run_crash_workload(Channel::from_arc(svc.clone(), LatencyModel::instant()), CRASH_SEED);
        assert_eq!(out, oracle, "crash at write {at} ({point:?}) must recover to oracle results");
        assert_eq!(svc.restarts(), 1, "the planned crash fired exactly once ({point:?})");
        if matches!(point, CrashPoint::MidAppend { .. }) {
            let torn = svc.with_engine(|e| e.recovery_report().torn_tail).unwrap();
            assert!(torn, "a mid-append crash leaves a torn tail for recovery to truncate");
        }
        storms += 1;
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(storms >= 6, "covered the workload: {storms} crash points");
}

// ---------------------------- concurrent batch inserts under cloud crashes

/// Concurrency × fault injection: several threads drive `insert_many`
/// through ONE shared gateway (worker pool attached, so per-field
/// encryption fans out) while the cloud crash-restarts mid-storm at a
/// planned WAL record — once per crash mode. The retrying channel must
/// absorb the outage, and after recovery no document may be partially
/// indexed: every batch is exactly and fully visible, and fsck is clean.
#[test]
fn concurrent_insert_many_crash_storm_leaves_no_partial_documents() {
    use std::thread;

    const THREADS: usize = 4;
    const BATCHES: usize = 4;
    const BATCH: usize = 3;
    let total = (THREADS * BATCHES * BATCH) as u64;

    // Each `insert_many` envelope journals as one WAL record, so the
    // whole storm writes THREADS×BATCHES records — crash points must sit
    // inside that window.
    for (i, point) in
        [CrashPoint::AfterAppend(5), CrashPoint::MidAppend { record: 9, byte: 9 }, CrashPoint::BeforeAppend(13)]
            .into_iter()
            .enumerate()
    {
        let dir = crash_dir(&format!("conc{i}"));
        let opts = DurabilityOptions {
            snapshot_every: Some(64),
            dedup_capacity: Some(4096),
            crash: Some(Arc::new(CrashInjector::new(CrashPlan::at(point)))),
        };
        let svc = Arc::new(RestartableCloud::open(&dir, opts).unwrap());
        let config = ResilienceConfig {
            retry: RetryPolicy { max_attempts: 16, ..RetryPolicy::default() },
            seed: 0xC0CC,
            ..ResilienceConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(0xC0CC);
        let mut gw = GatewayEngine::with_resilience(
            "conc",
            Kms::generate(&mut rng),
            ResilientChannel::new(Channel::from_arc(svc.clone(), LatencyModel::instant()), config),
            0xC0CC,
        );
        gw.enable_write_journal(KvStore::new());
        gw.set_worker_pool(Arc::new(datablinder::core::pool::WorkerPool::new(2)));
        gw.register_schema(simple_schema()).unwrap();
        let gw = Arc::new(gw);

        // Each batch gets a unique owner so full-batch visibility is
        // checkable per batch afterwards.
        let committed: Vec<(String, Vec<String>)> = thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let gw = Arc::clone(&gw);
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        for b in 0..BATCHES {
                            let owner = format!("t{t}b{b}");
                            let docs: Vec<Document> = (0..BATCH)
                                .map(|k| {
                                    Document::new("x")
                                        .with("owner", Value::from(owner.as_str()))
                                        .with("note", Value::from(format!("n{k}")))
                                })
                                .collect();
                            let ids = gw.insert_many("notes", &docs).expect("cloud crash must be absorbed by retries");
                            assert_eq!(ids.len(), BATCH);
                            mine.push((owner, ids.into_iter().map(|id| id.to_hex()).collect::<Vec<_>>()));
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("no worker panics")).collect()
        });

        assert_eq!(svc.restarts(), 1, "the planned crash fired exactly once ({point:?})");
        assert_eq!(gw.pending_writes(), 0, "every journaled write group was acknowledged");
        assert_eq!(gw.count("notes").unwrap(), total, "crash at {point:?}: nothing lost, nothing duplicated");
        for (owner, mut ids) in committed {
            let hits = gw.find_equal("notes", "owner", &Value::from(owner.as_str())).unwrap();
            let mut got: Vec<String> = hits.iter().map(|d| d.id().to_string()).collect();
            got.sort();
            ids.sort();
            assert_eq!(got, ids, "batch {owner}: fully indexed, no ghosts, no partial documents");
        }
        let fsck = gw.fsck("notes").unwrap();
        assert!(fsck.is_clean(), "fsck after crash recovery: {fsck:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------- gateway write journal

/// A cloud whose *write* intake can be cut off after a budget of calls:
/// reads keep flowing, writes time out — the shape of a mid-fan-out outage
/// that strands an insert across its tactic indexes.
struct MeteredCloud {
    inner: CloudEngine,
    write_budget: AtomicI64,
}

impl MeteredCloud {
    fn healthy() -> Self {
        MeteredCloud { inner: CloudEngine::new(), write_budget: AtomicI64::new(i64::MAX) }
    }
}

impl CloudService for MeteredCloud {
    fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        // The gateway seals every write into an idempotency envelope, so
        // gating on the envelope route meters exactly the write groups.
        if route == "idem" && self.write_budget.fetch_sub(1, Ordering::SeqCst) <= 0 {
            return Err(NetError::Timeout);
        }
        self.inner.handle(route, payload)
    }
}

#[test]
fn interrupted_insert_rolls_forward_via_write_journal() {
    let svc = Arc::new(MeteredCloud::healthy());
    let journal = KvStore::new();
    let state = KvStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let kms = Kms::generate(&mut rng);
    let config = ResilienceConfig { retry: RetryPolicy::none(), ..ResilienceConfig::default() };
    let mut gw = GatewayEngine::with_resilience(
        "journal",
        kms.clone(),
        ResilientChannel::new(Channel::from_arc(svc.clone(), LatencyModel::instant()), config),
        7,
    );
    gw.register_schema(simple_schema()).unwrap();
    gw.enable_write_journal(journal.clone());
    gw.insert("notes", &Document::new("x").with("owner", Value::from("alice"))).unwrap();
    assert_eq!(gw.pending_writes(), 0);

    // Pull the plug after one more write: bob's index update lands, the
    // doc/insert does not — the classic half-indexed insert.
    svc.write_budget.store(1, Ordering::SeqCst);
    let err = gw.insert("notes", &Document::new("x").with("owner", Value::from("bob"))).unwrap_err();
    assert!(matches!(err, CoreError::Net(NetError::Timeout)), "{err}");
    assert_eq!(gw.pending_writes(), 1, "the interrupted group stays journaled");
    // The half-applied insert is invisible to queries (index entry resolves
    // to a missing document, which search drops).
    assert!(gw.find_equal("notes", "owner", &Value::from("bob")).unwrap().is_empty());

    // "Restart": plug restored, fresh gateway over the same journal and
    // saved tactic state rolls the group forward.
    svc.write_budget.store(i64::MAX, Ordering::SeqCst);
    gw.save_state(&state);
    drop(gw);
    let mut gw2 = GatewayEngine::new("journal", kms, Channel::from_arc(svc.clone(), LatencyModel::instant()), 8);
    gw2.register_schema(simple_schema()).unwrap();
    gw2.load_state(&state).unwrap();
    gw2.enable_write_journal(journal);
    assert_eq!(gw2.pending_writes(), 1, "the entry survived the restart");
    let report = gw2.recover_pending().unwrap();
    assert_eq!(report, PendingWriteReport { entries: 1, rolled_forward: 1, failed: 0, failures: Vec::new() });
    assert_eq!(gw2.pending_writes(), 0);

    // Bob is now fully indexed AND stored; the store is consistent again.
    let hits = gw2.find_equal("notes", "owner", &Value::from("bob")).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].get("owner"), Some(&Value::from("bob")));
    let fsck = gw2.fsck("notes").unwrap();
    assert!(fsck.is_clean(), "{fsck:?}");
}

#[test]
fn unapplyable_journal_entry_is_reported_failed() {
    // A pending group whose doc/insert collides with an already-stored id
    // cannot complete: recovery must report it failed and clear it — not
    // leave it pending forever, not half-apply it silently.
    let svc = Arc::new(MeteredCloud::healthy());
    let mut rng = StdRng::seed_from_u64(0xFA11);
    let kms = Kms::generate(&mut rng);
    const ID_SEED: u64 = 42;

    let gw_a =
        GatewayEngine::new("journal", kms.clone(), Channel::from_arc(svc.clone(), LatencyModel::instant()), ID_SEED);
    gw_a.register_schema(simple_schema()).unwrap();
    gw_a.insert("notes", &Document::new("x").with("owner", Value::from("first"))).unwrap();

    // Same id seed → gw_b mints the same DocId; its insert is interrupted
    // after the index update, leaving a pending group that can never apply.
    let journal = KvStore::new();
    let config = ResilienceConfig { retry: RetryPolicy::none(), ..ResilienceConfig::default() };
    let mut gw_b = GatewayEngine::with_resilience(
        "journal",
        kms,
        ResilientChannel::new(Channel::from_arc(svc.clone(), LatencyModel::instant()), config),
        ID_SEED,
    );
    gw_b.register_schema(simple_schema()).unwrap();
    gw_b.enable_write_journal(journal);
    svc.write_budget.store(1, Ordering::SeqCst);
    gw_b.insert("notes", &Document::new("x").with("owner", Value::from("second"))).unwrap_err();
    assert_eq!(gw_b.pending_writes(), 1);

    svc.write_budget.store(i64::MAX, Ordering::SeqCst);
    let report = gw_b.recover_pending().unwrap();
    assert_eq!(report.entries, 1);
    assert_eq!(report.failed, 1);
    assert_eq!(report.rolled_forward, 0);
    assert_eq!(report.failures.len(), 1, "the reason is reported: {:?}", report.failures);
    assert_eq!(gw_b.pending_writes(), 0, "failed entries are cleared, not retried forever");
    // The collided slot still holds the original document (gw_a owns the
    // chain state for "first", so it does the lookup), and no phantom
    // second document appeared.
    let hits = gw_a.find_equal("notes", "owner", &Value::from("first")).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].get("owner"), Some(&Value::from("first")));
    assert_eq!(gw_a.count("notes").unwrap(), 1);
}

// ------------------------------------------------------------------- fsck

#[test]
fn fsck_detects_orphans_and_missing_index_entries() {
    let cloud = Arc::new(CloudEngine::new());
    let mut rng = StdRng::seed_from_u64(0xF5C4);
    let gw = GatewayEngine::new(
        "fsck",
        Kms::generate(&mut rng),
        Channel::from_arc(cloud.clone(), LatencyModel::instant()),
        5,
    );
    gw.register_schema(simple_schema()).unwrap();
    let mut ids = Vec::new();
    for i in 0..5 {
        ids.push(gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{}", i % 2)))).unwrap());
    }
    let clean = gw.fsck("notes").unwrap();
    assert!(clean.is_clean(), "{clean:?}");
    assert_eq!(clean.docs_checked, 5);

    // Byzantine cloud-side deletion: the document vanishes, its index
    // entries do not. fsck must flag the orphan.
    cloud.docs().collection("notes").delete(&ids[0].to_hex()).unwrap();
    let report = gw.fsck("notes").unwrap();
    assert!(!report.is_clean());
    assert!(report.orphan_results.iter().any(|o| o.contains("orphan index entry")), "orphans flagged: {report:?}");

    // Now wipe the whole mitra index scope: every surviving document
    // becomes unreachable through equality search.
    cloud.kv().del_prefix(b"t/mitra/notes:owner/");
    let report = gw.fsck("notes").unwrap();
    assert!(!report.is_clean());
    assert!(!report.missing_index_entries.is_empty(), "missing entries flagged: {report:?}");
}

#[test]
fn stale_state_is_detected_by_overwritten_chains() {
    // Restoring *without* saved state after data was indexed loses the
    // counters: the engine must fail searches cleanly or return the subset
    // written after restore — never mix plaintexts up.
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(4);
    let kms = Kms::generate(&mut rng);

    let gw1 = GatewayEngine::new("stale", kms.clone(), channel.clone(), 5);
    gw1.register_schema(simple_schema()).unwrap();
    gw1.insert("notes", &Document::new("x").with("owner", Value::from("a"))).unwrap();
    drop(gw1);

    // Fresh gateway, same keys, no state: its first update for "a"
    // re-uses chain position 1 and overwrites the cloud entry.
    let gw2 = GatewayEngine::new("stale", kms, channel, 6);
    gw2.register_schema(simple_schema()).unwrap();
    gw2.insert("notes", &Document::new("x").with("owner", Value::from("a"))).unwrap();
    let hits = gw2.find_equal("notes", "owner", &Value::from("a")).unwrap();
    // Exactly the post-restart document is visible through the index.
    assert_eq!(hits.len(), 1);
}

// ------------------------------------------------- observability integration

/// The fault-storm metrics also land in an installed obs recorder: channel
/// attempts/retries/backoff counters agree with the channel's own metering,
/// gateway route counters see every op, and the breaker trip under a total
/// outage is visible as a state gauge plus a transition counter.
#[test]
fn fault_storm_metrics_land_in_recorder() {
    use datablinder::obs::Recorder;

    let seed = 0x0B5F;
    let faults = RouteFaults::none().with_drop(0.06).with_duplicate(0.04).with_corrupt(0.02);
    let svc = Arc::new(FaultyService::new(CloudEngine::new(), FaultPlan::uniform(faults), seed));
    let channel = Channel::from_arc(svc, LatencyModel::instant());
    let config = ResilienceConfig {
        retry: RetryPolicy { max_attempts: 12, ..RetryPolicy::default() },
        deadline: Some(Duration::from_millis(10)),
        seed,
        ..ResilienceConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gw =
        GatewayEngine::with_resilience("storm", Kms::generate(&mut rng), ResilientChannel::new(channel, config), seed);
    gw.set_recorder(Recorder::new());
    gw.register_schema(simple_schema()).unwrap();

    let docs = 80usize;
    for i in 0..docs {
        gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{}", i % 8)))).unwrap();
    }
    for o in 0..8 {
        gw.find_equal("notes", "owner", &Value::from(format!("o{o}"))).unwrap();
    }

    let snap = gw.recorder().snapshot();
    let m = gw.channel().metrics().snapshot();
    assert_eq!(snap.counter("channel.call.attempts"), m.attempts, "recorder agrees with channel metering");
    assert_eq!(snap.counter("channel.call.retries"), m.retries);
    assert!(snap.counter("channel.call.retries") > 0, "the storm forced retries");
    assert_eq!(snap.counter("channel.backoff.sleeps"), m.retries, "every retry backed off");
    assert!(snap.counter("channel.backoff.nanos") > 0);
    assert_eq!(snap.counter("gateway.insert.count"), docs as u64);
    assert_eq!(snap.counter("gateway.find_equal.count"), 8);
    assert_eq!(snap.counter("gateway.insert.errors"), 0, "faults absorbed, not surfaced");

    // Now a total outage: the breaker trips, and the recorder sees the
    // transition and the Open state gauge.
    let dead =
        Arc::new(FaultyService::new(CloudEngine::new(), FaultPlan::uniform(RouteFaults::none().with_drop(1.0)), 7));
    let config = ResilienceConfig {
        retry: RetryPolicy::none(),
        breaker: BreakerConfig { failure_threshold: 3, cooldown: Duration::from_millis(50) },
        deadline: Some(Duration::from_millis(5)),
        seed: 7,
    };
    let mut gw2 = GatewayEngine::with_resilience(
        "breaker",
        Kms::generate(&mut rng),
        ResilientChannel::new(Channel::from_arc(dead, LatencyModel::instant()), config),
        7,
    );
    let recorder = Recorder::new();
    gw2.set_recorder(recorder.clone());
    let _ = gw2.register_schema(simple_schema()); // schema prep may already time out
    for i in 0..4 {
        let _ = gw2.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{i}"))));
    }
    assert_eq!(gw2.resilient_channel().breaker_state(), BreakerState::Open);
    let snap = recorder.snapshot();
    assert!(snap.counter("channel.breaker.transitions") >= 1, "breaker trip counted");
    assert_eq!(snap.gauge("channel.breaker.state"), Some(1), "gauge shows Open");
    assert!(snap.counter("channel.call.errors") > 0);
}

/// WAL appends, snapshot compactions and crash recovery land in the cloud
/// engine's recorder: a durable engine journals every write, and a reopen
/// after a simulated power cut reports how many records rolled forward and
/// how long the engine took to become query-ready.
#[test]
fn wal_and_recovery_counters_reach_the_recorder() {
    use datablinder::obs::Recorder;

    let dir = crash_dir("obs");
    let opts = DurabilityOptions { snapshot_every: Some(1000), dedup_capacity: Some(1024), crash: None };

    // Live run: count WAL appends while the workload writes.
    let live = Recorder::new();
    let mut engine = CloudEngine::open_durable_observed(&dir, opts.clone(), live.clone()).unwrap();
    engine.set_recorder(live.clone());
    let svc = Arc::new(engine);
    let channel = Channel::from_arc(svc.clone(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(11);
    let gw = GatewayEngine::new("durable", Kms::generate(&mut rng), channel, 11);
    gw.register_schema(simple_schema()).unwrap();
    let docs = 20usize;
    for i in 0..docs {
        gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{}", i % 4)))).unwrap();
    }
    svc.snapshot_now().unwrap();
    for i in docs..docs + 5 {
        gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{}", i % 4)))).unwrap();
    }

    let snap = live.snapshot();
    assert!(snap.counter("cloud.wal.appends") >= (docs + 5) as u64, "every write journaled: {:?}", snap.counters);
    assert!(snap.counter("cloud.wal.bytes") > snap.counter("cloud.wal.appends"), "journal bytes metered");
    assert_eq!(snap.counter("cloud.snapshot.compactions"), 1);
    assert_eq!(snap.counter("cloud.recovery.replayed"), 0, "first open had nothing to replay");

    // Power cut + reopen: the WAL tail written after the snapshot replays,
    // and the recovery counters + time-to-first-query land in the recorder.
    let wal_tail = svc.wal_since_snapshot();
    assert!(wal_tail > 0, "writes landed after the snapshot");
    drop(gw);
    drop(svc);
    let reopened_obs = Recorder::new();
    let reopened = CloudEngine::open_durable_observed(&dir, opts, reopened_obs.clone()).unwrap();
    let snap = reopened_obs.snapshot();
    assert_eq!(snap.counter("cloud.recovery.replayed"), reopened.recovery_report().replayed);
    assert!(snap.counter("cloud.recovery.replayed") > 0, "the WAL tail rolled forward");
    assert_eq!(snap.counter("cloud.recovery.snapshots_restored"), 1);
    let recovery = snap.histogram("cloud.recovery.latency").expect("time-to-first-query measured");
    assert_eq!(recovery.count, 1);

    // And the recovered store serves queries.
    let channel = Channel::from_arc(Arc::new(reopened), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(11);
    let gw = GatewayEngine::new("durable", Kms::generate(&mut rng), channel, 11);
    gw.register_schema(simple_schema()).unwrap();
    assert_eq!(gw.count("notes").unwrap(), (docs + 5) as u64);
    let _ = std::fs::remove_dir_all(&dir);
}
