//! Figure-5 shape regression: a quick run of the three §5.2 scenarios
//! asserting the paper's qualitative result stays true —
//! `S_A` fastest, `S_B ≈ S_C`, zero failures.

use datablinder::core::cloud::CloudEngine;
use datablinder::netsim::{Channel, LatencyModel};
use datablinder::workload::clients::{HardcodedClient, MiddlewareClient, PlainClient};
use datablinder::workload::runner::{run_scenario, OpKind, ScenarioSpec};

fn spec() -> ScenarioSpec {
    ScenarioSpec { workers: 4, requests: 400, patient_pool: 16, ..ScenarioSpec::default() }
}

#[test]
fn figure5_shape_holds() {
    let cloud_a = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let sa = run_scenario("S_A", spec(), |w| Box::new(PlainClient::new(cloud_a.clone(), w as u64)));
    let cloud_b = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let sb = run_scenario("S_B", spec(), |w| Box::new(HardcodedClient::new(cloud_b.clone(), w as u64, 512)));
    let cloud_c = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let sc = run_scenario("S_C", spec(), |w| Box::new(MiddlewareClient::new(cloud_c.clone(), w as u64)));

    for r in [&sa, &sb, &sc] {
        assert_eq!(r.failed, 0, "{}: no request may fail", r.label);
        assert_eq!(r.completed, 400, "{}", r.label);
    }

    // The paper's ordering: plaintext beats both protected scenarios.
    assert!(
        sa.throughput() > sb.throughput() && sa.throughput() > sc.throughput(),
        "S_A must be fastest: {:.0} vs {:.0} vs {:.0}",
        sa.throughput(),
        sb.throughput(),
        sc.throughput()
    );
    // Middleware overhead is small relative to tactic cost. Generous bound
    // (paper: 1.4%) to keep the test robust on noisy machines and in
    // unoptimized debug builds.
    assert!(
        sc.throughput() > sb.throughput() * 0.5,
        "middleware must not collapse throughput: S_B {:.0} vs S_C {:.0}",
        sb.throughput(),
        sc.throughput()
    );

    // Every operation class was exercised in every scenario.
    for r in [&sa, &sb, &sc] {
        for op in [OpKind::Insert, OpKind::Search, OpKind::Aggregate] {
            assert!(r.op_throughput(op) > 0.0, "{}: {op:?} missing", r.label);
        }
    }
}
