//! Adversarial integration tests: what the untrusted zone sees, and how
//! the system fails when the cloud misbehaves.

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::docstore::{Filter, Value};
use datablinder::fhir::{example_observation, observation_schema};
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, CloudService, LatencyModel, NetError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sensitive plaintext strings from the example document.
const SECRETS: [&str; 4] = ["John Doe", "John Smith", "final", "glucose"];

fn contains_secret(bytes: &[u8]) -> Option<&'static str> {
    SECRETS.iter().copied().find(|s| bytes.windows(s.len()).any(|w| w == s.as_bytes()))
}

#[test]
fn cloud_stores_see_no_plaintext() {
    let cloud = CloudEngine::new();
    let docs = cloud.docs().clone();
    let kv = cloud.kv().clone();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(1);
    let mut gw = GatewayEngine::new("sec", Kms::generate(&mut rng), channel, 1);
    gw.register_schema(observation_schema()).unwrap();
    gw.insert("observation", &example_observation()).unwrap();

    // Document store: every stored field value must be free of secrets.
    for doc in docs.collection("observation").find(&Filter::All) {
        for (field, value) in doc.iter() {
            let rendered = match value {
                Value::Str(s) => s.clone().into_bytes(),
                Value::Bytes(b) => b.clone(),
                other => format!("{other:?}").into_bytes(),
            };
            if field == "identifier" || field == "interpretation" {
                continue; // plaintext by annotation
            }
            assert_eq!(contains_secret(&rendered), None, "secret leaked into docstore field {field}");
        }
    }

    // KV store (secure indexes): neither keys nor values may contain secrets.
    for key in kv.keys_with_prefix(b"") {
        assert_eq!(contains_secret(&key), None, "secret leaked into kv key");
        if let Some(v) = kv.get(&key) {
            assert_eq!(contains_secret(&v), None, "secret leaked into kv value");
        }
    }
}

#[test]
fn wire_traffic_carries_no_plaintext_for_protected_fields() {
    // A recording wrapper around the cloud engine inspects every frame.
    struct Recorder {
        inner: CloudEngine,
    }
    impl CloudService for Recorder {
        fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
            // `subject` is protected by Mitra + RND: its plaintext must
            // never cross the channel. (status/code travel as DET/BIEX
            // tokens; identifier/interpretation are plaintext by policy.)
            assert_eq!(
                contains_secret(payload).filter(|s| *s == "John Doe" || *s == "John Smith"),
                None,
                "protected plaintext on the wire at route {route}"
            );
            self.inner.handle(route, payload)
        }
    }
    let channel = Channel::connect(Recorder { inner: CloudEngine::new() }, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(2);
    let mut gw = GatewayEngine::new("sec", Kms::generate(&mut rng), channel, 2);
    gw.register_schema(observation_schema()).unwrap();
    let id = gw.insert("observation", &example_observation()).unwrap();
    gw.find_equal("observation", "subject", &Value::from("John Doe")).unwrap();
    gw.get("observation", id).unwrap();
}

#[test]
fn tampered_ciphertexts_fail_closed() {
    let cloud = CloudEngine::new();
    let docs = cloud.docs().clone();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(3);
    let mut gw = GatewayEngine::new("sec", Kms::generate(&mut rng), channel, 3);
    gw.register_schema(observation_schema()).unwrap();
    let id = gw.insert("observation", &example_observation()).unwrap();

    // The cloud flips a bit in a stored payload ciphertext.
    let coll = docs.collection("observation");
    let mut stored = coll.find(&Filter::All).pop().unwrap();
    let Some(Value::Bytes(ct)) = stored.get("subject__rnd").cloned() else {
        panic!("expected subject__rnd ciphertext");
    };
    let mut tampered = ct.clone();
    tampered[ct.len() / 2] ^= 1;
    stored.set("subject__rnd", Value::Bytes(tampered));
    coll.update(stored).unwrap();

    // Decryption must fail loudly, not return corrupted data.
    assert!(gw.get("observation", id).is_err());
}

#[test]
fn foreign_gateway_cannot_read_anothers_data() {
    // Two gateways with different KMS master keys over the same cloud:
    // gateway B must not be able to decrypt or find gateway A's data.
    let cloud = CloudEngine::new();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(4);

    let mut gw_a = GatewayEngine::new("tenant-a", Kms::generate(&mut rng), channel.clone(), 4);
    gw_a.register_schema(observation_schema()).unwrap();
    let id = gw_a.insert("observation", &example_observation()).unwrap();

    let mut gw_b = GatewayEngine::new("tenant-b", Kms::generate(&mut rng), channel, 5);
    gw_b.register_schema(observation_schema()).unwrap();
    // B's search tokens are keyed differently: no hits.
    let hits = gw_b.find_equal("observation", "subject", &Value::from("John Doe")).unwrap();
    assert!(hits.is_empty());
    // B fetching A's document by id cannot decrypt the payload.
    assert!(gw_b.get("observation", id).is_err());
}

#[test]
fn rnd_hides_equality_det_reveals_it() {
    // The leakage difference between class 1 and class 4, observable in
    // the cloud store: equal performer values (RND) have distinct
    // ciphertexts; equal status values (DET) have equal ciphertexts.
    let cloud = CloudEngine::new();
    let docs = cloud.docs().clone();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(5);
    let mut gw = GatewayEngine::new("leak", Kms::generate(&mut rng), channel, 6);
    gw.register_schema(datablinder::workload::clients::bench_schema()).unwrap();

    let base = example_observation();
    gw.insert("observation", &base).unwrap();
    gw.insert("observation", &base).unwrap();

    let stored = docs.collection("observation").find(&Filter::All);
    assert_eq!(stored.len(), 2);
    let det_a = stored[0].get("status__det").unwrap();
    let det_b = stored[1].get("status__det").unwrap();
    assert_eq!(det_a, det_b, "DET must reveal equality (that is its function)");
    let rnd_a = stored[0].get("performer__rnd").unwrap();
    let rnd_b = stored[1].get("performer__rnd").unwrap();
    assert_ne!(rnd_a, rnd_b, "RND must hide equality");
}
