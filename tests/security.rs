//! Adversarial integration tests: what the untrusted zone sees, and how
//! the system fails when the cloud misbehaves.

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::docstore::{Filter, Value};
use datablinder::fhir::{example_observation, observation_schema};
use datablinder::kms::Kms;
use datablinder::netsim::{Channel, CloudService, LatencyModel, NetError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sensitive plaintext strings from the example document.
const SECRETS: [&str; 4] = ["John Doe", "John Smith", "final", "glucose"];

fn contains_secret(bytes: &[u8]) -> Option<&'static str> {
    SECRETS.iter().copied().find(|s| bytes.windows(s.len()).any(|w| w == s.as_bytes()))
}

#[test]
fn cloud_stores_see_no_plaintext() {
    let cloud = CloudEngine::new();
    let docs = cloud.docs().clone();
    let kv = cloud.kv().clone();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(1);
    let gw = GatewayEngine::new("sec", Kms::generate(&mut rng), channel, 1);
    gw.register_schema(observation_schema()).unwrap();
    gw.insert("observation", &example_observation()).unwrap();

    // Document store: every stored field value must be free of secrets.
    for doc in docs.collection("observation").find(&Filter::All) {
        for (field, value) in doc.iter() {
            let rendered = match value {
                Value::Str(s) => s.clone().into_bytes(),
                Value::Bytes(b) => b.clone(),
                other => format!("{other:?}").into_bytes(),
            };
            if field == "identifier" || field == "interpretation" {
                continue; // plaintext by annotation
            }
            assert_eq!(contains_secret(&rendered), None, "secret leaked into docstore field {field}");
        }
    }

    // KV store (secure indexes): neither keys nor values may contain secrets.
    for key in kv.keys_with_prefix(b"") {
        assert_eq!(contains_secret(&key), None, "secret leaked into kv key");
        if let Some(v) = kv.get(&key) {
            assert_eq!(contains_secret(&v), None, "secret leaked into kv value");
        }
    }
}

#[test]
fn wire_traffic_carries_no_plaintext_for_protected_fields() {
    // A recording wrapper around the cloud engine inspects every frame.
    struct Recorder {
        inner: CloudEngine,
    }
    impl CloudService for Recorder {
        fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
            // `subject` is protected by Mitra + RND: its plaintext must
            // never cross the channel. (status/code travel as DET/BIEX
            // tokens; identifier/interpretation are plaintext by policy.)
            assert_eq!(
                contains_secret(payload).filter(|s| *s == "John Doe" || *s == "John Smith"),
                None,
                "protected plaintext on the wire at route {route}"
            );
            self.inner.handle(route, payload)
        }
    }
    let channel = Channel::connect(Recorder { inner: CloudEngine::new() }, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(2);
    let gw = GatewayEngine::new("sec", Kms::generate(&mut rng), channel, 2);
    gw.register_schema(observation_schema()).unwrap();
    let id = gw.insert("observation", &example_observation()).unwrap();
    gw.find_equal("observation", "subject", &Value::from("John Doe")).unwrap();
    gw.get("observation", id).unwrap();
}

#[test]
fn tampered_ciphertexts_fail_closed() {
    let cloud = CloudEngine::new();
    let docs = cloud.docs().clone();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(3);
    let gw = GatewayEngine::new("sec", Kms::generate(&mut rng), channel, 3);
    gw.register_schema(observation_schema()).unwrap();
    let id = gw.insert("observation", &example_observation()).unwrap();

    // The cloud flips a bit in a stored payload ciphertext.
    let coll = docs.collection("observation");
    let mut stored = coll.find(&Filter::All).pop().unwrap();
    let Some(Value::Bytes(ct)) = stored.get("subject__rnd").cloned() else {
        panic!("expected subject__rnd ciphertext");
    };
    let mut tampered = ct.clone();
    tampered[ct.len() / 2] ^= 1;
    stored.set("subject__rnd", Value::Bytes(tampered));
    coll.update(stored).unwrap();

    // Decryption must fail loudly, not return corrupted data.
    assert!(gw.get("observation", id).is_err());
}

#[test]
fn foreign_gateway_cannot_read_anothers_data() {
    // Two gateways with different KMS master keys over the same cloud:
    // gateway B must not be able to decrypt or find gateway A's data.
    let cloud = CloudEngine::new();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(4);

    let gw_a = GatewayEngine::new("tenant-a", Kms::generate(&mut rng), channel.clone(), 4);
    gw_a.register_schema(observation_schema()).unwrap();
    let id = gw_a.insert("observation", &example_observation()).unwrap();

    let gw_b = GatewayEngine::new("tenant-b", Kms::generate(&mut rng), channel, 5);
    gw_b.register_schema(observation_schema()).unwrap();
    // B's search tokens are keyed differently: no hits.
    let hits = gw_b.find_equal("observation", "subject", &Value::from("John Doe")).unwrap();
    assert!(hits.is_empty());
    // B fetching A's document by id cannot decrypt the payload.
    assert!(gw_b.get("observation", id).is_err());
}

#[test]
fn rnd_hides_equality_det_reveals_it() {
    // The leakage difference between class 1 and class 4, observable in
    // the cloud store: equal performer values (RND) have distinct
    // ciphertexts; equal status values (DET) have equal ciphertexts.
    let cloud = CloudEngine::new();
    let docs = cloud.docs().clone();
    let channel = Channel::connect(cloud, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(5);
    let gw = GatewayEngine::new("leak", Kms::generate(&mut rng), channel, 6);
    gw.register_schema(datablinder::workload::clients::bench_schema()).unwrap();

    let base = example_observation();
    gw.insert("observation", &base).unwrap();
    gw.insert("observation", &base).unwrap();

    let stored = docs.collection("observation").find(&Filter::All);
    assert_eq!(stored.len(), 2);
    let det_a = stored[0].get("status__det").unwrap();
    let det_b = stored[1].get("status__det").unwrap();
    assert_eq!(det_a, det_b, "DET must reveal equality (that is its function)");
    let rnd_a = stored[0].get("performer__rnd").unwrap();
    let rnd_b = stored[1].get("performer__rnd").unwrap();
    assert_ne!(rnd_a, rnd_b, "RND must hide equality");
}

// ------------------------------------------- boundary & property round-trips
//
// Plain seeded loops (no property-testing framework in the build): the
// tactic stack must preserve order and additive structure at the i64
// boundaries, with negatives and duplicates, and the sharded index
// substrate must be observationally identical to an unsharded one.

/// Engine-level order preservation: OPE's sign-flip mapping must keep
/// i64::MIN/MAX, negatives, zero and duplicates in plaintext order for
/// range search and min/max.
#[test]
fn range_search_is_exact_at_i64_boundaries() {
    use datablinder::core::model::{AggFn, FieldAnnotation, FieldOp, FieldType, ProtectionClass, Schema};
    use datablinder::docstore::Document;

    let schema = Schema::new("edges").sensitive_field(
        "score",
        FieldType::Integer,
        true,
        FieldAnnotation::new(ProtectionClass::C5, vec![FieldOp::Insert, FieldOp::Range]).with_aggs(vec![AggFn::Sum]),
    );
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0xB0B0);
    let gw = GatewayEngine::new("edges", Kms::generate(&mut rng), channel, 0xB0B0);
    gw.register_schema(schema).unwrap();

    // Duplicates on both extremes and at zero.
    let values = [i64::MIN, i64::MIN, i64::MIN + 1, -2, -1, 0, 0, 1, 2, i64::MAX - 1, i64::MAX, i64::MAX];
    let mut by_value: Vec<(i64, String)> = Vec::new();
    for v in values {
        let id = gw.insert("edges", &Document::new("x").with("score", Value::from(v))).unwrap();
        by_value.push((v, id.to_hex()));
    }

    let sorted = |docs: Vec<datablinder::docstore::Document>| {
        let mut ids: Vec<String> = docs.iter().map(|d| d.id().to_string()).collect();
        ids.sort();
        ids
    };
    for (lo, hi) in [
        (i64::MIN, i64::MAX),         // everything
        (i64::MIN, i64::MIN),         // point query at the bottom
        (i64::MAX, i64::MAX),         // point query at the top
        (i64::MIN, -1),               // strictly negative
        (0, i64::MAX),                // non-negative
        (i64::MIN + 1, i64::MAX - 1), // excluding the extremes
        (-1, 1),                      // straddling the sign boundary
    ] {
        let got = sorted(gw.find_range("edges", "score", &Value::from(lo), &Value::from(hi)).unwrap());
        let mut expect: Vec<String> =
            by_value.iter().filter(|(v, _)| (lo..=hi).contains(v)).map(|(_, id)| id.clone()).collect();
        expect.sort();
        assert_eq!(got, expect, "range [{lo}, {hi}]");
    }

    // Cloud-side min/max agree with the plaintext extremes.
    let min = gw.find_extreme("edges", "score", false).unwrap().unwrap();
    assert_eq!(min.get("score"), Some(&Value::from(i64::MIN)));
    let max = gw.find_extreme("edges", "score", true).unwrap().unwrap();
    assert_eq!(max.get("score"), Some(&Value::from(i64::MAX)));
}

/// Primitive-level order preservation for both OPE and the two ORE
/// schemes, over a seeded sample salted with the u64 boundaries and
/// duplicated points.
#[test]
fn ope_and_ore_preserve_order_on_seeded_boundary_sample() {
    use datablinder::ope::{Ope, OpeParams};
    use datablinder::ore::{ClwwOre, Comparison, LewiWuOre};
    use datablinder::primitives::keys::SymmetricKey;
    use rand::Rng;

    let mut rng = StdRng::seed_from_u64(0x0DE0);
    let mut sample: Vec<u64> = vec![0, 1, 2, u64::MAX - 1, u64::MAX, 1 << 63, (1 << 63) - 1];
    sample.extend((0..12).map(|_| rng.gen::<u64>()));
    sample.push(sample[5]); // a seeded duplicate

    let ope = Ope::new(SymmetricKey::from_bytes(&[7u8; 32]), OpeParams::default());
    let clww = ClwwOre::new(SymmetricKey::from_bytes(&[8u8; 32]));
    let lewi = LewiWuOre::new(SymmetricKey::from_bytes(&[9u8; 32]));

    for (i, &a) in sample.iter().enumerate() {
        for &b in &sample[i..] {
            let expect = Comparison::from(a.cmp(&b));
            assert_eq!(Comparison::from(ope.encrypt(a).cmp(&ope.encrypt(b))), expect, "ope order for ({a}, {b})");
            assert_eq!(ClwwOre::compare(&clww.encrypt(a), &clww.encrypt(b)), expect, "clww order for ({a}, {b})");
            assert_eq!(
                LewiWuOre::compare_left_right(&lewi.encrypt_left(a), &lewi.encrypt_right(b)),
                expect,
                "lewi-wu order for ({a}, {b})"
            );
        }
    }
}

/// Additive homomorphism through the whole stack, at the aggregable
/// boundary: the engine fixed-point-scales by 1000 before Paillier
/// encryption, so the aggregable domain is ±(i64::MAX / 1000); its two
/// extremes must cancel exactly, with negatives and duplicates riding
/// along. (The sums are small, so the f64 comparisons are strict.)
#[test]
fn paillier_sum_is_exact_across_sign_boundaries() {
    use datablinder::bigint::BigUint;
    use datablinder::core::model::{AggFn, FieldAnnotation, FieldOp, FieldType, ProtectionClass, Schema};
    use datablinder::docstore::Document;
    use datablinder::paillier::Keypair;

    let schema = Schema::new("ledger").sensitive_field(
        "amount",
        FieldType::Integer,
        true,
        FieldAnnotation::new(ProtectionClass::C5, vec![FieldOp::Insert]).with_aggs(vec![AggFn::Sum]),
    );
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0x5A5A);
    let gw = GatewayEngine::new("ledger", Kms::generate(&mut rng), channel, 0x5A5A);
    gw.register_schema(schema).unwrap();

    // The aggregable extremes cancel to 0; negatives and duplicates ride
    // along for a total of exactly -1.
    let agg_max = i64::MAX / 1000;
    let values = [-agg_max, agg_max, 5, -3, 7, 7, -17, 0];
    for v in values {
        gw.insert("ledger", &Document::new("x").with("amount", Value::from(v))).unwrap();
    }
    let expect: i64 = values.iter().sum::<i64>();
    let sum = gw.aggregate("ledger", "amount", AggFn::Sum, None).unwrap();
    assert_eq!(sum, expect as f64, "homomorphic sum across the sign boundary at the aggregable extremes");

    // Primitive level: Enc(a)·Enc(b) decrypts to a+b exactly at the u64
    // extremes, via BigUint so nothing rounds.
    let mut rng = StdRng::seed_from_u64(0x5A5B);
    let kp = Keypair::generate(&mut rng, 512);
    let a = BigUint::from(u64::MAX);
    let b = BigUint::from(u64::MAX);
    let ca = kp.public().encrypt(&mut rng, &a).unwrap();
    let cb = kp.public().encrypt(&mut rng, &b).unwrap();
    let sum = kp.decrypt(&kp.public().add(&ca, &cb)).unwrap();
    let expect = &a + &b;
    assert_eq!(sum, expect, "Dec(Enc(u64::MAX) + Enc(u64::MAX)) == 2^65 - 2");
}

/// The sharded key-value store is observationally identical to a
/// single-shard one under the same seeded op sequence — sharding is a
/// concurrency tactic, never a semantics change.
#[test]
fn sharded_kvstore_matches_unsharded_replay() {
    use datablinder::kvstore::KvStore;
    use rand::Rng;

    let sharded = KvStore::new(); // 16 shards by default
    let single = KvStore::with_shards(1);
    assert!(sharded.shard_count() > 1);
    assert_eq!(single.shard_count(), 1);

    let mut rng = StdRng::seed_from_u64(0x5EED);
    for op in 0..2_000 {
        let key = format!("k/{}/{}", rng.gen_range(0..7u32), rng.gen_range(0..40u32)).into_bytes();
        match rng.gen_range(0..6u32) {
            0 | 1 => {
                let val = format!("v{op}").into_bytes();
                sharded.set(&key, &val);
                single.set(&key, &val);
            }
            2 => {
                assert_eq!(sharded.get(&key), single.get(&key), "get {}", String::from_utf8_lossy(&key));
            }
            3 => {
                assert_eq!(sharded.del(&key), single.del(&key));
            }
            4 => {
                // Hashes live in their own keyspace: the store enforces
                // per-key type discipline, identically on both layouts.
                let hkey = [b"h/".as_slice(), key.as_slice()].concat();
                let field = format!("f{}", rng.gen_range(0..5u32)).into_bytes();
                let val = format!("h{op}").into_bytes();
                assert_eq!(sharded.hset(&hkey, &field, &val).unwrap(), single.hset(&hkey, &field, &val).unwrap());
                // hgetall order is map-iteration order; compare as multisets.
                let mut a = sharded.hgetall(&hkey);
                let mut b = single.hgetall(&hkey);
                a.sort();
                b.sort();
                assert_eq!(a, b);
            }
            _ => {
                let prefix = format!("k/{}/", rng.gen_range(0..7u32)).into_bytes();
                let mut a = sharded.keys_with_prefix(&prefix);
                let mut b = single.keys_with_prefix(&prefix);
                a.sort();
                b.sort();
                assert_eq!(a, b, "prefix scan {}", String::from_utf8_lossy(&prefix));
            }
        }
    }
}
