//! The paper's extensibility claim, exercised for real: a third-party
//! "tactic provider" ships a brand-new tactic through the SPI — gateway
//! half, cloud half, descriptor — registers it at runtime, and the
//! middleware selects and drives it with zero engine changes.
//!
//! The toy scheme ("hmac-index") stores `PRF(keyword) → id` postings in
//! the cloud KV store and encrypts payloads with the RND cipher: not
//! novel cryptography, but a complete, independent SPI implementation.

use std::sync::Arc;

use datablinder::core::cloud::CloudEngine;
use datablinder::core::gateway::GatewayEngine;
use datablinder::core::model::*;
use datablinder::core::registry::TacticRegistry;
use datablinder::core::spi::{CloudCall, CloudTactic, GatewayTactic, ProtectedField};
use datablinder::core::tactics::{decode_ids, encode_ids, shadow_field};
use datablinder::core::wire::{canonical_bytes, decode_value, field_keyword};
use datablinder::core::CoreError;
use datablinder::docstore::{Document, Value};
use datablinder::kms::Kms;
use datablinder::kvstore::KvStore;
use datablinder::netsim::{Channel, LatencyModel};
use datablinder::primitives::prf::{HmacPrf, Prf};
use datablinder::sse::rnd::RndCipher;
use datablinder::sse::DocId;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn descriptor() -> TacticDescriptor {
    TacticDescriptor {
        name: "hmac-index".into(),
        family: "third-party demo".into(),
        operations: vec![
            OpProfile { op: TacticOp::Update, leakage: LeakageLevel::Identifiers, metrics: PerfMetrics::new(1, 1, 1) },
            OpProfile { op: TacticOp::EqQuery, leakage: LeakageLevel::Identifiers, metrics: PerfMetrics::new(1, 1, 1) },
        ],
        serves: vec![FieldOp::Insert, FieldOp::Equality],
        serves_agg: vec![],
        gateway_interfaces: 5,
        cloud_interfaces: 3,
        gateway_state: false,
    }
}

struct HmacIndexGateway {
    prf: HmacPrf,
    payload: RndCipher,
    route_insert: String,
    route_search: String,
}

impl GatewayTactic for HmacIndexGateway {
    fn descriptor(&self) -> TacticDescriptor {
        descriptor()
    }

    fn protect(
        &mut self,
        rng: &mut dyn RngCore,
        field: &str,
        value: &Value,
        id: DocId,
    ) -> Result<ProtectedField, CoreError> {
        let label = self.prf.eval(&field_keyword(field, value));
        let mut payload = label.to_vec();
        payload.extend_from_slice(&id.0);
        Ok(ProtectedField {
            stored: vec![(
                shadow_field(field, "hmacidx"),
                Value::Bytes(self.payload.encrypt(rng, &canonical_bytes(value))),
            )],
            index_calls: vec![CloudCall::new(self.route_insert.clone(), payload)],
        })
    }

    fn recover(&self, field: &str, stored: &Document) -> Result<Option<Value>, CoreError> {
        let Some(Value::Bytes(ct)) = stored.get(&shadow_field(field, "hmacidx")) else {
            return Ok(None);
        };
        let plain = self.payload.decrypt(ct).map_err(|e| CoreError::Sse(e.to_string()))?;
        let mut slice = plain.as_slice();
        Ok(Some(decode_value(&mut slice)?))
    }

    fn eq_query(&mut self, field: &str, value: &Value) -> Result<Vec<CloudCall>, CoreError> {
        let label = self.prf.eval(&field_keyword(field, value));
        Ok(vec![CloudCall::new(self.route_search.clone(), label.to_vec())])
    }

    fn eq_resolve(&self, _field: &str, _value: &Value, responses: &[Vec<u8>]) -> Result<Vec<DocId>, CoreError> {
        let [response] = responses else {
            return Err(CoreError::Wire("hmac-index response arity"));
        };
        decode_ids(response)
    }
}

struct HmacIndexCloud {
    kv: KvStore,
}

impl CloudTactic for HmacIndexCloud {
    fn name(&self) -> &'static str {
        "hmac-index"
    }

    fn handle(&self, scope: &str, op: &str, payload: &[u8]) -> Result<Vec<u8>, CoreError> {
        let mut key = format!("t/hmac-index/{scope}/").into_bytes();
        match op {
            "insert" => {
                if payload.len() != 48 {
                    return Err(CoreError::Wire("hmac-index insert payload"));
                }
                key.extend_from_slice(&payload[..32]);
                self.kv.sadd(&key, &payload[32..])?;
                Ok(Vec::new())
            }
            "search" => {
                if payload.len() != 32 {
                    return Err(CoreError::Wire("hmac-index search payload"));
                }
                key.extend_from_slice(payload);
                let mut ids: Vec<DocId> =
                    self.kv.smembers(&key).into_iter().filter_map(|m| m.try_into().ok().map(DocId)).collect();
                ids.sort();
                Ok(encode_ids(&ids))
            }
            other => Err(CoreError::UnsupportedOperation(format!("hmac-index op {other}"))),
        }
    }
}

#[test]
fn third_party_tactic_plugs_in_end_to_end() {
    // Cloud side: register the provider's cloud half.
    let mut cloud = CloudEngine::new();
    cloud.register(Arc::new(HmacIndexCloud { kv: cloud.kv().clone() }));
    let channel = Channel::connect(cloud, LatencyModel::instant());

    // Gateway side: register descriptor + factory.
    let mut registry = TacticRegistry::with_builtins();
    registry.register(
        descriptor(),
        Box::new(|ctx, _rng| {
            let key = ctx.kms.key_for(&ctx.key_scope("hmac-index"));
            Ok(Box::new(HmacIndexGateway {
                prf: HmacPrf::new(key.derive(b"idx", 32)),
                payload: RndCipher::new(&key.derive(b"payload", 32)).map_err(|e| CoreError::Sse(e.to_string()))?,
                route_insert: ctx.route("hmac-index", "insert"),
                route_search: ctx.route("hmac-index", "search"),
            }))
        }),
    );

    // Selection picks the newcomer: it serves C2 equality at the lowest
    // cost rank in the registry.
    let selection = registry
        .select("owner", &FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]))
        .unwrap();
    assert_eq!(selection.search_tactics, vec!["hmac-index"]);

    let mut rng = StdRng::seed_from_u64(77);
    let gw = GatewayEngine::with_registry("thirdparty", Kms::generate(&mut rng), channel, 7, registry);
    let schema = Schema::new("records").sensitive_field(
        "owner",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
    );
    gw.register_schema(schema).unwrap();

    let mut ids = Vec::new();
    for owner in ["ann", "bob", "ann"] {
        ids.push(gw.insert("records", &Document::new("x").with("owner", Value::from(owner))).unwrap());
    }
    // Search through the custom tactic.
    let hits = gw.find_equal("records", "owner", &Value::from("ann")).unwrap();
    assert_eq!(hits.len(), 2);
    for h in &hits {
        assert_eq!(h.get("owner"), Some(&Value::from("ann")), "payload recovered by the custom tactic");
    }
    // Reads decrypt through the custom payload path.
    assert_eq!(gw.get("records", ids[1]).unwrap().get("owner"), Some(&Value::from("bob")));
}

#[test]
fn custom_tactic_key_comes_from_the_kms() {
    // Two applications get independent keys for the same custom tactic:
    // tokens must not collide across tenants.
    let mut cloud = CloudEngine::new();
    cloud.register(Arc::new(HmacIndexCloud { kv: cloud.kv().clone() }));
    let channel = Channel::connect(cloud, LatencyModel::instant());

    let build_registry = || {
        let mut r = TacticRegistry::with_builtins();
        r.register(
            descriptor(),
            Box::new(|ctx: &datablinder::core::tactics::TacticContext, _rng: &mut dyn RngCore| {
                let key = ctx.kms.key_for(&ctx.key_scope("hmac-index"));
                Ok(Box::new(HmacIndexGateway {
                    prf: HmacPrf::new(key.derive(b"idx", 32)),
                    payload: RndCipher::new(&key.derive(b"payload", 32)).map_err(|e| CoreError::Sse(e.to_string()))?,
                    route_insert: ctx.route("hmac-index", "insert"),
                    route_search: ctx.route("hmac-index", "search"),
                }) as Box<dyn GatewayTactic>)
            }),
        );
        r
    };
    let schema = || {
        Schema::new("records").sensitive_field(
            "owner",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
        )
    };
    let mut rng = StdRng::seed_from_u64(78);
    let gw_a = GatewayEngine::with_registry("tenant-a", Kms::generate(&mut rng), channel.clone(), 1, build_registry());
    gw_a.register_schema(schema()).unwrap();
    gw_a.insert("records", &Document::new("x").with("owner", Value::from("ann"))).unwrap();

    let gw_b = GatewayEngine::with_registry("tenant-b", Kms::generate(&mut rng), channel, 2, build_registry());
    gw_b.register_schema(schema()).unwrap();
    assert!(gw_b.find_equal("records", "owner", &Value::from("ann")).unwrap().is_empty());
}
